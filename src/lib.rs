//! # xml-update-props
//!
//! An executable reproduction of *Desirable Properties for XML Update
//! Mechanisms* (O'Connor & Roantree, EDBT 2010 workshop "Updates in XML").
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`xmldom`] — the ordered XML tree substrate, parser and serializer;
//! * [`labelcore`] — label algebra primitives and the [`labelcore::LabelingScheme`] trait;
//! * [`schemes`] — the twelve surveyed dynamic labelling schemes plus the
//!   paper's §6 future-work schemes (Prime, DDE) and compact variants;
//! * [`framework`] — the paper's contribution: the ten desirable
//!   properties, the Figure 7 evaluation matrix, and empirical checkers
//!   that measure a scheme's compliance instead of trusting its claims;
//! * [`encoding`] — the XML encoding scheme (Definition 2 / Figure 2) with
//!   an XPath-subset evaluator and full document reconstruction;
//! * [`workloads`] — deterministic document generators and update
//!   workloads (random / uniform / skewed insertions);
//! * [`exec`] — the hermetic scoped thread pool the scheme batteries fan
//!   out on (`XUPD_THREADS=1` reproduces sequential output byte for
//!   byte);
//! * [`store`] — the sharded concurrent document store: per-shard
//!   writer lanes, snapshot-isolated reads, and the deterministic fleet
//!   replay whose final state is byte-identical at any worker count;
//! * [`flux`] — the FLUX-style typed update DSL: statically checked
//!   update programs compiled to certified mutation logs.
//!
//! For day-to-day use, `use xml_update_props::prelude::*;` pulls in the
//! handful of types almost every caller needs. See `README.md` for a
//! tour and `examples/` for runnable entry points.

pub use xupd_encoding as encoding;
pub use xupd_exec as exec;
pub use xupd_flux as flux;
pub use xupd_framework as framework;
pub use xupd_labelcore as labelcore;
pub use xupd_schemes as schemes;
pub use xupd_store as store;
pub use xupd_workloads as workloads;
pub use xupd_xmldom as xmldom;

/// The common surface in one import: document + store facades, the
/// update DSL, the mutation-log machinery, the scheme registry, and the
/// error types those entry points return.
///
/// ```
/// use xml_update_props::prelude::*;
///
/// let tree = xmldom_parse("<r><a>one</a></r>").unwrap();
/// let mut doc = Document::encode(xupd_schemes::prefix::qed::Qed::new(), &tree).unwrap();
/// doc.update("insert <b/> into /r;").unwrap();
/// assert!(doc.verify().unwrap().is_sound());
/// ```
pub mod prelude {
    pub use xupd_encoding::{parse_xpath, XPathExpr};
    pub use xupd_flux::{
        check_source, CompiledUpdate, Diagnostic, DocumentUpdate, FluxError, FluxProgram,
        StoreUpdate,
    };
    pub use xupd_framework::{
        ApplyOptions, Document, DocumentError, Mutation, MutationLog, NodeRef, Place,
    };
    pub use xupd_labelcore::LabelingScheme;
    pub use xupd_schemes::{registry, registry_figure7};
    pub use xupd_store::{Store, StoreConfig, StoreError};
    pub use xupd_workloads::{docs, Script, ScriptKind};
    pub use xupd_xmldom::{parse as xmldom_parse, serialize_compact, TreeError, XmlTree};
}
