//! # xml-update-props
//!
//! An executable reproduction of *Desirable Properties for XML Update
//! Mechanisms* (O'Connor & Roantree, EDBT 2010 workshop "Updates in XML").
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`xmldom`] — the ordered XML tree substrate, parser and serializer;
//! * [`labelcore`] — label algebra primitives and the [`labelcore::LabelingScheme`] trait;
//! * [`schemes`] — the twelve surveyed dynamic labelling schemes plus the
//!   paper's §6 future-work schemes (Prime, DDE) and compact variants;
//! * [`framework`] — the paper's contribution: the ten desirable
//!   properties, the Figure 7 evaluation matrix, and empirical checkers
//!   that measure a scheme's compliance instead of trusting its claims;
//! * [`encoding`] — the XML encoding scheme (Definition 2 / Figure 2) with
//!   an XPath-subset evaluator and full document reconstruction;
//! * [`workloads`] — deterministic document generators and update
//!   workloads (random / uniform / skewed insertions);
//! * [`exec`] — the hermetic scoped thread pool the scheme batteries fan
//!   out on (`XUPD_THREADS=1` reproduces sequential output byte for
//!   byte);
//! * [`store`] — the sharded concurrent document store: per-shard
//!   writer lanes, snapshot-isolated reads, and the deterministic fleet
//!   replay whose final state is byte-identical at any worker count.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use xupd_encoding as encoding;
pub use xupd_exec as exec;
pub use xupd_framework as framework;
pub use xupd_labelcore as labelcore;
pub use xupd_schemes as schemes;
pub use xupd_store as store;
pub use xupd_workloads as workloads;
pub use xupd_xmldom as xmldom;
