//! Full pipeline on a realistic document: generate an XMark-flavoured
//! auction document, encode it under several labelling schemes, run the
//! same XPath queries against each encoding and verify every scheme
//! returns identical answers — the encoding scheme (Definition 2) makes
//! query results independent of the labelling scheme underneath.
//!
//! ```text
//! cargo run --release --example xpath_query
//! ```

use xml_update_props::encoding::{parse_xpath, EncodedDocument};
use xml_update_props::labelcore::{LabelingScheme, SchemeVisitor};
use xml_update_props::workloads::docs;
use xml_update_props::xmldom::XmlTree;

const QUERIES: [&str; 5] = [
    "/site/regions/*/item/name",
    "//person[@id=\"person3\"]/name",
    "//open_auction/bidder/increase",
    "//item[2]",
    "//emailaddress/..",
];

struct QueryRunner<'a> {
    tree: &'a XmlTree,
    /// query → (scheme, string values) collected per scheme
    answers: Vec<(&'static str, Vec<Vec<String>>)>,
}

impl SchemeVisitor for QueryRunner<'_> {
    fn visit<S: LabelingScheme>(&mut self, scheme: S) {
        let name = scheme.name();
        let enc = EncodedDocument::encode(scheme, self.tree).expect("encodable document");
        let per_query: Vec<Vec<String>> = QUERIES
            .iter()
            .map(|q| {
                parse_xpath(q)
                    .expect("query parses")
                    .evaluate(&enc)
                    .into_iter()
                    .map(|i| enc.string_value(i))
                    .collect()
            })
            .collect();
        self.answers.push((name, per_query));
    }
}

fn main() {
    let tree = docs::xmark_like(2024, 120);
    println!(
        "XMark-flavoured document: {} nodes. Querying under every Figure 7 scheme…\n",
        tree.len()
    );
    let mut runner = QueryRunner {
        tree: &tree,
        answers: Vec::new(),
    };
    xml_update_props::schemes::visit_figure7_schemes(&mut runner);

    // All schemes must agree with the first.
    let (ref_name, ref_answers) = &runner.answers[0];
    for (name, answers) in &runner.answers[1..] {
        assert_eq!(
            answers, ref_answers,
            "{name} disagrees with {ref_name} — encoding must be scheme-independent"
        );
    }
    println!(
        "All {} schemes returned identical result sets. Samples (via {ref_name}):\n",
        runner.answers.len()
    );
    for (q, vals) in QUERIES.iter().zip(ref_answers) {
        println!("  {q}");
        println!("    → {} hit(s)", vals.len());
        for v in vals.iter().take(3) {
            let shown: String = v.chars().take(60).collect();
            println!("      \"{shown}\"");
        }
    }
}
