//! Full pipeline on a realistic document: generate an XMark-flavoured
//! auction document, encode it under several labelling schemes, run the
//! same XPath queries against each encoding and verify every scheme
//! returns identical answers — the encoding scheme (Definition 2) makes
//! query results independent of the labelling scheme underneath.
//!
//! One erased encoded document per Figure 7 scheme, each queried on its
//! own `xupd-exec` pool worker, answers collected in roster order.
//!
//! ```text
//! cargo run --release --example xpath_query
//! ```

use xml_update_props::encoding::{document_registry_figure7, parse_xpath};
use xml_update_props::exec::par_map;
use xml_update_props::workloads::docs;

const QUERIES: [&str; 5] = [
    "/site/regions/*/item/name",
    "//person[@id=\"person3\"]/name",
    "//open_auction/bidder/increase",
    "//item[2]",
    "//emailaddress/..",
];

fn main() {
    let tree = docs::xmark_like(2024, 120);
    println!(
        "XMark-flavoured document: {} nodes. Querying under every Figure 7 scheme…\n",
        tree.len()
    );
    let answers: Vec<(&'static str, Vec<Vec<String>>)> =
        par_map(&document_registry_figure7(), |entry| {
            let enc = (entry.encode)(&tree).expect("encodable document");
            let per_query: Vec<Vec<String>> = QUERIES
                .iter()
                .map(|q| {
                    let expr = parse_xpath(q).expect("query parses");
                    enc.evaluate(&expr)
                        .into_iter()
                        .map(|i| enc.string_value(i))
                        .collect()
                })
                .collect();
            (entry.name(), per_query)
        });

    // All schemes must agree with the first.
    let (ref_name, ref_answers) = &answers[0];
    for (name, per_query) in &answers[1..] {
        assert_eq!(
            per_query, ref_answers,
            "{name} disagrees with {ref_name} — encoding must be scheme-independent"
        );
    }
    println!(
        "All {} schemes returned identical result sets. Samples (via {ref_name}):\n",
        answers.len()
    );
    for (q, vals) in QUERIES.iter().zip(ref_answers) {
        println!("  {q}");
        println!("    → {} hit(s)", vals.len());
        for v in vals.iter().take(3) {
            let shown: String = v.chars().take(60).collect();
            println!("      \"{shown}\"");
        }
    }
}
