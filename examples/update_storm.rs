//! Live reproduction of the paper's growth claims (§3.1.2/§4): drive a
//! skewed insertion storm — "frequent insertions at a fixed position" —
//! and watch label sizes across schemes, including the headline
//! comparison that Vector grows much slower than QED.
//!
//! ```text
//! cargo run --release --example update_storm [inserts]
//! ```

use xml_update_props::framework::driver::run_script;
use xml_update_props::labelcore::{LabelingScheme, SchemeVisitor};
use xml_update_props::workloads::{docs, Script, ScriptKind};
use xml_update_props::xmldom::XmlTree;

struct StormRow {
    scheme: &'static str,
    end_max_bits: u64,
    peak_bits: u64,
    relabels: u64,
    overflows: u64,
}

struct Storm<'a> {
    base: &'a XmlTree,
    ops: usize,
    rows: Vec<StormRow>,
}

impl SchemeVisitor for Storm<'_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let mut tree = self.base.clone();
        let mut labeling = scheme.label_tree(&tree).expect("initial labelling");
        let script = Script::generate(ScriptKind::Skewed, self.ops, tree.len(), 99);
        let stats =
            run_script(&mut tree, &mut scheme, &mut labeling, &script).expect("storm drives");
        self.rows.push(StormRow {
            scheme: scheme.name(),
            end_max_bits: stats.end_max_bits,
            peak_bits: stats.peak_label_bits,
            relabels: stats.relabeled,
            overflows: stats.overflow_events,
        });
    }
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let base = docs::wide(30);
    let mut storm = Storm {
        base: &base,
        ops,
        rows: Vec::new(),
    };
    xml_update_props::schemes::visit_all_schemes(&mut storm);

    println!("Skewed insertion storm: {ops} inserts at one fixed position\n");
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "Scheme", "max bits", "peak bits", "relabels", "overflows"
    );
    println!("{}", "-".repeat(68));
    for r in &storm.rows {
        println!(
            "{:<18} {:>12} {:>12} {:>10} {:>10}",
            r.scheme, r.end_max_bits, r.peak_bits, r.relabels, r.overflows
        );
    }

    let find = |name: &str| storm.rows.iter().find(|r| r.scheme == name).unwrap();
    let qed = find("QED");
    let vector = find("Vector");
    println!(
        "\nHeadline (paper §4): Vector's largest label is {} bits vs QED's {} bits\n\
         after {ops} skewed inserts — \"the vector label growth rate is much\n\
         slower than QED under similar conditions\".",
        vector.end_max_bits, qed.end_max_bits
    );
}
