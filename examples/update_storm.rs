//! Live reproduction of the paper's growth claims (§3.1.2/§4): drive a
//! skewed insertion storm — "frequent insertions at a fixed position" —
//! and watch label sizes across schemes, including the headline
//! comparison that Vector grows much slower than QED.
//!
//! The full roster runs one scheme per `xupd-exec` pool worker
//! (`exec::par_map` preserves roster order, so the table is identical
//! at any `XUPD_THREADS`).
//!
//! ```text
//! cargo run --release --example update_storm [inserts]
//! ```

use xml_update_props::exec::par_map;
use xml_update_props::framework::driver::run_script_dyn;
use xml_update_props::schemes::registry;
use xml_update_props::workloads::{docs, Script, ScriptKind};

struct StormRow {
    scheme: &'static str,
    end_max_bits: u64,
    peak_bits: u64,
    relabels: u64,
    overflows: u64,
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let base = docs::wide(30);
    let rows: Vec<StormRow> = par_map(&registry(), |entry| {
        let mut session = entry.session();
        let mut tree = base.clone();
        session.label_tree(&tree).expect("initial labelling");
        let script = Script::generate(ScriptKind::Skewed, ops, tree.len(), 99);
        let stats = run_script_dyn(&mut tree, session.as_mut(), &script).expect("storm drives");
        StormRow {
            scheme: entry.name(),
            end_max_bits: stats.end_max_bits,
            peak_bits: stats.peak_label_bits,
            relabels: stats.relabeled,
            overflows: stats.overflow_events,
        }
    });

    println!("Skewed insertion storm: {ops} inserts at one fixed position\n");
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "Scheme", "max bits", "peak bits", "relabels", "overflows"
    );
    println!("{}", "-".repeat(68));
    for r in &rows {
        println!(
            "{:<18} {:>12} {:>12} {:>10} {:>10}",
            r.scheme, r.end_max_bits, r.peak_bits, r.relabels, r.overflows
        );
    }

    let find = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
    let qed = find("QED");
    let vector = find("Vector");
    println!(
        "\nHeadline (paper §4): Vector's largest label is {} bits vs QED's {} bits\n\
         after {ops} skewed inserts — \"the vector label growth rate is much\n\
         slower than QED under similar conditions\".",
        vector.end_max_bits, qed.end_max_bits
    );
}
