//! Quickstart: parse a document, label it with a dynamic scheme, update
//! it without relabelling, and query it through the encoding.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xml_update_props::encoding::{parse_xpath, EncodedDocument};
use xml_update_props::labelcore::{Label, LabelingScheme};
use xml_update_props::schemes::prefix::qed::Qed;
use xml_update_props::xmldom::{parse, serialize_pretty, NodeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the paper's Figure 1 sample document.
    let mut tree = parse(xml_update_props::xmldom::sample::FIGURE1_XML)?;
    println!("Parsed {} nodes.\n", tree.len());

    // 2. Label it with QED — a scheme that never relabels (§4).
    let mut scheme = Qed::new();
    let mut labeling = scheme.label_tree(&tree)?;
    println!("QED labels (document order):");
    for id in tree.ids_in_doc_order() {
        if let Some(name) = tree.kind(id).name() {
            println!("  {:<12} {}", name, labeling.req(id)?.display());
        }
    }

    // 3. Structural update: a new chapter element squeezed between title
    //    and author. No existing label changes.
    let book = tree.document_element().expect("document element");
    let title = tree.first_child(book).expect("title");
    let chapter = tree.create(NodeKind::element("chapter"));
    tree.insert_after(title, chapter)?;
    let report = scheme.on_insert(&tree, &mut labeling, chapter)?;
    println!(
        "\nInserted <chapter> with label {} — {} existing labels touched.",
        labeling.req(chapter)?.display(),
        report.relabeled.len()
    );
    assert!(report.relabeled.is_empty());

    // 4. Query through the encoding scheme (Definition 2).
    let enc = EncodedDocument::encode(Qed::new(), &tree)?;
    let hits = parse_xpath("/book/publisher/editor/name")?.evaluate(&enc);
    for h in hits {
        println!(
            "XPath /book/publisher/editor/name → \"{}\"",
            enc.string_value(h)
        );
    }

    // 5. The document is still a well-formed XML text.
    println!("\nSerialized:\n{}", serialize_pretty(&tree));
    Ok(())
}
