//! Quickstart: parse a document, label it with a dynamic scheme, update
//! it without relabelling, and query it through the encoding — all via
//! the unified `Document` facade (one handle bundles the live tree, the
//! scheme, its labelling and the lazily-encoded query snapshot).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xml_update_props::framework::Document;
use xml_update_props::labelcore::Label;
use xml_update_props::schemes::prefix::qed::Qed;
use xml_update_props::workloads::{Script, ScriptKind, ScriptOp};
use xml_update_props::xmldom::{parse, serialize_pretty};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the paper's Figure 1 sample document.
    let tree = parse(xml_update_props::xmldom::sample::FIGURE1_XML)?;
    println!("Parsed {} nodes.\n", tree.len());

    // 2. Label it with QED — a scheme that never relabels (§4) — behind
    //    the facade.
    let mut doc = Document::encode(Qed::new(), &tree)?;
    println!("QED labels (document order):");
    for id in doc.tree().ids_in_doc_order() {
        if let Some(name) = doc.tree().kind(id).name() {
            println!("  {:<12} {}", name, doc.labeling().req(id)?.display());
        }
    }

    // 3. Structural update: a new element squeezed in right after the
    //    title (element pool index 1 in document order). QED splices a
    //    fresh label between its neighbours — no existing label changes.
    let script = Script {
        kind: ScriptKind::Skewed,
        ops: vec![ScriptOp::InsertAfter(1)],
    };
    let stats = doc.apply(&script)?;
    println!(
        "\nInserted {} element(s) — {} existing labels touched.",
        stats.inserts, stats.relabeled
    );
    assert_eq!(stats.relabeled, 0);

    // 4. Query through the encoding scheme (Definition 2). The facade
    //    re-encodes the updated tree lazily, once.
    let hits = doc.xpath("/book/publisher/editor/name")?;
    for h in hits {
        println!(
            "XPath /book/publisher/editor/name → \"{}\"",
            doc.encoded()?.string_value(h)
        );
    }

    // 5. The labelling still matches tree ground truth, and the document
    //    is still a well-formed XML text.
    assert!(doc.verify()?.is_sound());
    println!("\nSerialized:\n{}", serialize_pretty(doc.tree()));
    Ok(())
}
