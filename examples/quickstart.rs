//! Quickstart: parse a document, label it with a dynamic scheme, update
//! it without relabelling, and query it through the encoding — all via
//! the prelude's unified `Document` facade (one handle bundles the live
//! tree, the scheme, its labelling and the lazily-encoded query
//! snapshot) and the flux update DSL.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xml_update_props::labelcore::Label;
use xml_update_props::prelude::*;
use xml_update_props::schemes::prefix::qed::Qed;
use xml_update_props::xmldom::serialize_pretty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the paper's Figure 1 sample document.
    let tree = xmldom_parse(xml_update_props::xmldom::sample::FIGURE1_XML)?;
    println!("Parsed {} nodes.\n", tree.len());

    // 2. Label it with QED — a scheme that never relabels (§4) — behind
    //    the facade.
    let mut doc = Document::encode(Qed::new(), &tree)?;
    println!("QED labels (document order):");
    for id in doc.tree().ids_in_doc_order() {
        if let Some(name) = doc.tree().kind(id).name() {
            println!("  {:<12} {}", name, doc.labeling().req(id)?.display());
        }
    }

    // 3. Structural update, written in the flux DSL: the program is
    //    statically checked, compiled to one atomic mutation log against
    //    the current tree, and applied. QED splices fresh labels between
    //    neighbours — no existing label changes.
    let stats = doc.update(r#"insert <appendix/> after /book/title;"#)?;
    println!(
        "\nInserted {} element(s) — {} existing labels touched.",
        stats.inserts, stats.relabeled
    );
    assert_eq!(stats.relabeled, 0);

    // 4. Query through the encoding scheme (Definition 2). The facade
    //    re-encodes the updated tree lazily, once.
    let hits = doc.xpath("/book/publisher/editor/name")?;
    for h in hits {
        println!(
            "XPath /book/publisher/editor/name → \"{}\"",
            doc.encoded()?.string_value(h)
        );
    }

    // 5. An unsound program never reaches the tree: the static checker
    //    rejects it with a span-carrying diagnostic first.
    let err = doc
        .update("delete /book/title; set /book/title/text() to \"x\";")
        .unwrap_err();
    println!("\nRejected before apply: {err}");

    // 6. The labelling still matches tree ground truth, and the document
    //    is still a well-formed XML text.
    assert!(doc.verify()?.is_sound());
    println!("\nSerialized:\n{}", serialize_pretty(doc.tree()));
    Ok(())
}
