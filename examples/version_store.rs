//! The paper's §5.2 selection scenario, made concrete: "a repository that
//! may want to record document history and enable version control would
//! select a labelling scheme supporting persistent labels."
//!
//! A tiny versioned XML store keeps, for every commit, the set of
//! `(label, change)` facts. With a **persistent** scheme (QED) a label
//! recorded at version 1 still denotes the same logical node at version
//! 50; with DeweyID the renumbering caused by later insertions silently
//! re-points old references at different nodes.
//!
//! ```text
//! cargo run --example version_store
//! ```

use xml_update_props::labelcore::{Label, Labeling, LabelingScheme};
use xml_update_props::schemes::prefix::dewey::DeweyId;
use xml_update_props::schemes::prefix::qed::Qed;
use xml_update_props::workloads::docs;
use xml_update_props::xmldom::{NodeId, NodeKind, XmlTree};

/// Run the scenario for one scheme: bookmark a node by its *label* at
/// v1, apply edits, then check whether the bookmark still resolves to
/// the same node. Returns (bookmark survived, relabels seen).
fn scenario<S: LabelingScheme>(mut scheme: S) -> (bool, u64) {
    let mut tree = docs::book();
    let mut labeling = scheme.label_tree(&tree).expect("initial labelling");

    // v1: bookmark the <author> element by its label.
    let author = tree
        .preorder()
        .find(|&n| tree.kind(n).name() == Some("author"))
        .expect("author element");
    let bookmark = labeling.req(author).expect("labelled").clone();
    println!(
        "  v1: bookmarked <author> as {} under {}",
        bookmark.display(),
        scheme.name()
    );

    // v2..v6: the book gains front-matter — inserts before <author>'s
    // sibling positions, the pattern that renumbers naive schemes.
    let book = tree.document_element().expect("book");
    let mut relabels = 0;
    for i in 0..5 {
        let n = tree.create(NodeKind::element(format!("frontmatter{i}")));
        let first = tree.first_child(book).expect("children");
        tree.insert_before(first, n).expect("live");
        relabels += scheme
            .on_insert(&tree, &mut labeling, n)
            .expect("insert")
            .relabeled
            .len() as u64;
    }

    // Resolve the bookmark: which node carries that label now?
    let resolved = resolve(&tree, &labeling, &bookmark);
    let survived = resolved == Some(author);
    let what = resolved
        .map(|n| tree.kind(n).name().unwrap_or("?").to_string())
        .unwrap_or_else(|| "nothing".to_string());
    println!(
        "  v6: bookmark {} now resolves to <{}> — {} ({} relabels along the way)",
        bookmark.display(),
        what,
        if survived { "STABLE" } else { "BROKEN" },
        relabels
    );
    (survived, relabels)
}

fn resolve<L: Label>(tree: &XmlTree, labeling: &Labeling<L>, wanted: &L) -> Option<NodeId> {
    tree.ids_in_doc_order()
        .into_iter()
        .find(|&n| labeling.get(n) == Some(wanted))
}

fn main() {
    println!("Version-control scenario (paper §5.2)\n");
    println!("QED (Persistent Labels = F):");
    let (qed_ok, qed_relabels) = scenario(Qed::new());
    println!("\nDeweyID (Persistent Labels = N):");
    let (dewey_ok, dewey_relabels) = scenario(DeweyId::new());

    println!("\nConclusion:");
    println!(
        "  QED bookmarks survived: {qed_ok} ({qed_relabels} relabels); \
         DeweyID bookmarks survived: {dewey_ok} ({dewey_relabels} relabels)."
    );
    println!(
        "  Exactly the paper's point: version control demands the Persistent\n  \
         Labels property, which Figure 7 grants QED and denies DeweyID."
    );
    assert!(qed_ok && !dewey_ok);
}
