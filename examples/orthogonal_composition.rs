//! The §5.1 *Orthogonal Labelling Scheme* property, live: QED's
//! quaternary order codes plugged into a **containment** host, giving a
//! begin/end interval scheme that — unlike every integer-position
//! containment scheme of §3.1.1 — absorbs unlimited insertions with no
//! gaps and no relabelling.
//!
//! Also demonstrates the storage layer behind the claim: the packed
//! `00`-separated bitstream of §4, round-tripped.
//!
//! ```text
//! cargo run --release --example orthogonal_composition
//! ```

use xml_update_props::framework::orthogonal::CodedContainment;
use xml_update_props::labelcore::qstorage::{pack_separated, unpack_separated};
use xml_update_props::labelcore::QCode;
use xml_update_props::workloads::docs;
use xml_update_props::xmldom::NodeKind;

fn main() {
    // A containment labelling whose positions are QED codes.
    let mut tree = docs::book();
    let mut host: CodedContainment<QCode> = CodedContainment::label(&tree).expect("labelled");

    println!("QED ∘ containment — begin/end codes of the sample document:\n");
    for n in tree.ids_in_doc_order() {
        if let Some(name) = tree.kind(n).name() {
            let (b, e) = host.get(n).expect("labelled");
            println!("  {:<10} [{b}, {e})", name);
        }
    }

    // 1000 insertions at one fixed position — the workload that forces
    // every integer containment scheme of §3.1.1 to relabel — splice in
    // with zero relabelling.
    let book = tree.document_element().expect("book");
    let anchor = tree.first_child(book).expect("title");
    for _ in 0..1000 {
        let n = tree.create(NodeKind::element("x"));
        tree.insert_before(anchor, n).expect("live");
        host.insert(&tree, n).expect("splice");
    }
    // verify order + containment survived
    let order = tree.ids_in_doc_order();
    for w in order.windows(2) {
        assert_eq!(host.cmp_doc(w[0], w[1]), std::cmp::Ordering::Less);
    }
    for &n in order.iter().step_by(97) {
        assert_eq!(host.is_ancestor(book, n), tree.is_ancestor(book, n));
    }
    println!(
        "\n1000 skewed insertions absorbed: document order and containment\n\
         intact, zero existing labels changed — the §5.1 orthogonality\n\
         payoff (compare §3.1.1's Θ(n)-relabelling integer intervals)."
    );

    // The storage layer (§4): codes of wildly different lengths pack
    // into one bitstream delimited only by the reserved 00 symbol.
    let begins: Vec<QCode> = tree
        .ids_in_doc_order()
        .into_iter()
        .map(|n| host.get(n).expect("labelled").0.clone())
        .collect();
    let stream = pack_separated(&begins);
    let back = unpack_separated(&stream).expect("well-formed stream");
    assert_eq!(back, begins);
    println!(
        "\nStorage: {} begin-codes packed into {} bits ({} bytes) with 2-bit\n\
         separators and no length fields — nothing that can overflow (§4).",
        begins.len(),
        stream.len_bits(),
        stream.as_bytes().len()
    );
}
