//! The evaluation framework as a decision aid — §5.2: "The evaluation
//! framework can provide assistance in the selection of a dynamic
//! labelling scheme for an XML repository by enabling the database
//! designer … to select the labelling scheme that is most suitable for
//! their requirements."
//!
//! Express requirements as minimum compliance per property; the advisor
//! filters and ranks the (declared) Figure 7 matrix.
//!
//! ```text
//! cargo run --example scheme_advisor
//! ```

use xml_update_props::framework::declared_figure7;
use xml_update_props::labelcore::{Compliance, Property};

struct Requirement {
    property: Property,
    at_least: Compliance,
    why: &'static str,
}

fn advise(title: &str, reqs: &[Requirement]) {
    println!("{title}");
    for r in reqs {
        println!(
            "  requires {} ≥ {}  ({})",
            r.property.column_header(),
            r.at_least,
            r.why
        );
    }
    let matrix = declared_figure7();
    let mut fits: Vec<(&'static str, u32)> = matrix
        .rows
        .iter()
        .filter(|row| {
            reqs.iter()
                .all(|r| row.descriptor.declared_for(r.property) >= r.at_least)
        })
        .map(|row| (row.descriptor.name, row.score()))
        .collect();
    fits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if fits.is_empty() {
        println!("  → no scheme in Figure 7 satisfies all requirements\n");
    } else {
        println!(
            "  → candidates (best overall score first): {}\n",
            fits.iter()
                .map(|(n, s)| format!("{n} ({s})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

fn main() {
    println!("Scheme advisor over the paper's Figure 7\n");

    // §5.2's first worked example.
    advise(
        "Repository with document history / version control:",
        &[Requirement {
            property: Property::PersistentLabels,
            at_least: Compliance::Full,
            why: "old versions keep referencing nodes by label",
        }],
    );

    // §5.2's second worked example.
    advise(
        "Repository regularly ingesting very large documents:",
        &[Requirement {
            property: Property::OverflowFree,
            at_least: Compliance::Full,
            why: "relabelling a huge document on overflow is unaffordable",
        }],
    );

    // A query-heavy read-mostly store.
    advise(
        "Query-heavy store (XPath evaluation from labels alone):",
        &[
            Requirement {
                property: Property::XPathEvaluations,
                at_least: Compliance::Full,
                why: "ancestor/parent/sibling decided without joins",
            },
            Requirement {
                property: Property::LevelEncoding,
                at_least: Compliance::Full,
                why: "level axes without an extra join (§5.1)",
            },
        ],
    );

    // The paper's "most generic" question: no hard requirements, rank by
    // how many properties each scheme satisfies.
    advise(
        "The generalist (no hard requirements, best overall score):",
        &[],
    );

    let best = declared_figure7()
        .ranking()
        .first()
        .map(|&(name, _)| name)
        .expect("matrix is non-empty");
    println!(
        "The generalist query mirrors §5.2's conclusion: {best} satisfies the\n\
         greatest number of properties and is the most generic choice."
    );
    assert_eq!(best, "CDQS");
}
