//! Fleet workloads: many user sessions over a store of documents.
//!
//! The store benchmark (PR 9) needs a workload one level above a single
//! [`Script`]: *N* concurrent user sessions, each cycling through
//! open-document / query / batch-update / close against a fleet of
//! documents whose popularity is Zipf-skewed — a handful of hot
//! documents absorb most of the traffic, the long tail is cold. This
//! module generates that workload as **pure data**: a single
//! canonical, totally ordered stream of [`FleetOp`]s, deterministic for
//! a given [`FleetConfig`].
//!
//! The canonical stream is the determinism anchor for the concurrent
//! store: executors may run sessions on any number of workers, but the
//! per-document subsequence of this stream fixes each document's
//! mutation order, so the final fleet state is byte-identical at any
//! `XUPD_THREADS`. Interleaving across sessions is itself randomized
//! (seeded), so the stream genuinely mixes sessions rather than
//! concatenating them.

use crate::script::{Script, ScriptKind};
use xupd_testkit::TestRng;

/// Shape of a generated fleet workload. All fields feed the seeded
/// generator; two equal configs produce byte-identical op streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Master seed; forked per session and per script.
    pub seed: u64,
    /// Concurrent user sessions.
    pub sessions: usize,
    /// Documents in the fleet (ids `0..docs`).
    pub docs: usize,
    /// Open → … → close cycles per session.
    pub visits_per_session: usize,
    /// Query/update operations between each open and close.
    pub ops_per_visit: usize,
    /// Probability an inner operation is a batch update (the rest are
    /// queries).
    pub update_fraction: f64,
    /// Operations per update script.
    pub script_len: usize,
    /// Registered query classes per document; [`FleetOpKind::Query`]
    /// carries an index `0..query_classes`.
    pub query_classes: usize,
    /// Zipf exponent for document popularity (0.0 = uniform; ~1.0 =
    /// classic web-like skew). Document 0 is the hottest.
    pub zipf_s: f64,
}

impl FleetConfig {
    /// A small mixed fleet: quick enough for tests, busy enough to
    /// exercise every op class on every shard.
    pub fn small(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            sessions: 8,
            docs: 24,
            visits_per_session: 6,
            ops_per_visit: 5,
            update_fraction: 0.4,
            script_len: 6,
            query_classes: 3,
            zipf_s: 1.0,
        }
    }

    /// The benchmark fleet: enough sessions and documents for stable
    /// throughput and tail-latency numbers.
    pub fn bench(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            sessions: 32,
            docs: 96,
            visits_per_session: 12,
            ops_per_visit: 8,
            update_fraction: 0.35,
            script_len: 8,
            query_classes: 3,
            zipf_s: 1.1,
        }
    }
}

/// What a session does at one step of its visit.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOpKind {
    /// Begin a visit to the document (the store materializes/pins it).
    Open,
    /// Serve the registered query class with this index.
    Query(usize),
    /// Apply this update script as one atomic mutation-log batch.
    Update(Script),
    /// End the visit.
    Close,
}

impl FleetOpKind {
    /// Stable class name for reports and histograms.
    pub fn class(&self) -> &'static str {
        match self {
            FleetOpKind::Open => "open",
            FleetOpKind::Query(_) => "query",
            FleetOpKind::Update(_) => "update",
            FleetOpKind::Close => "close",
        }
    }
}

/// One operation in the canonical fleet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOp {
    /// Originating session (`0..config.sessions`).
    pub session: u32,
    /// Target document (`0..config.docs`).
    pub doc: u32,
    /// The operation.
    pub kind: FleetOpKind,
}

/// A generated fleet workload: the canonical op stream plus the config
/// that produced it.
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    /// The generating configuration.
    pub config: FleetConfig,
    /// The canonical, totally ordered operation stream.
    pub ops: Vec<FleetOp>,
}

/// Cumulative Zipf distribution over `n` ranks with exponent `s`:
/// `cdf[i]` is the probability of drawing a rank `<= i`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the generator.
fn unit(rng: &mut TestRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw a rank from the CDF by binary search.
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// The update-scenario mix sessions draw from. Zigzag and PrependStorm
/// are left to the adversarial batteries; a fleet mixes the paper's
/// §5.1 scenarios plus deletions.
const FLEET_SCRIPT_KINDS: [ScriptKind; 5] = [
    ScriptKind::Random,
    ScriptKind::Uniform,
    ScriptKind::Skewed,
    ScriptKind::AppendOnly,
    ScriptKind::MixedDelete,
];

impl FleetWorkload {
    /// Generate the canonical op stream for `config`. Deterministic:
    /// equal configs yield equal streams, independent of platform and
    /// of however the stream is later executed.
    pub fn generate(config: FleetConfig) -> FleetWorkload {
        let docs = config.docs.max(1);
        let cdf = zipf_cdf(docs, config.zipf_s.max(0.0));
        let mut master = TestRng::seed_from_u64(config.seed ^ 0xf1ee_7000);

        // Per-session op queues, each from its own forked generator so
        // session contents don't depend on interleaving decisions.
        let mut queues: Vec<std::collections::VecDeque<FleetOp>> = (0..config.sessions)
            .map(|s| {
                let mut rng = master.fork();
                let mut q = std::collections::VecDeque::new();
                for _ in 0..config.visits_per_session {
                    let doc = sample_cdf(&cdf, unit(&mut rng)) as u32;
                    let at = |kind| FleetOp {
                        session: s as u32,
                        doc,
                        kind,
                    };
                    q.push_back(at(FleetOpKind::Open));
                    for _ in 0..config.ops_per_visit {
                        if unit(&mut rng) < config.update_fraction {
                            let kind = *rng.choose(&FLEET_SCRIPT_KINDS).unwrap();
                            let script =
                                Script::generate(kind, config.script_len, 64, rng.next_u64());
                            q.push_back(at(FleetOpKind::Update(script)));
                        } else {
                            let class = if config.query_classes > 1 {
                                rng.gen_range(0..config.query_classes)
                            } else {
                                0
                            };
                            q.push_back(at(FleetOpKind::Query(class)));
                        }
                    }
                    q.push_back(at(FleetOpKind::Close));
                }
                q
            })
            .collect();

        // Canonical interleave: repeatedly pick a random non-empty
        // session and emit its next op. The master generator makes the
        // mix deterministic; per-session order is preserved.
        let total: usize = queues.iter().map(|q| q.len()).sum();
        let mut ops = Vec::with_capacity(total);
        let mut live: Vec<usize> = (0..queues.len()).filter(|&s| !queues[s].is_empty()).collect();
        while !live.is_empty() {
            let slot = master.gen_range(0..live.len());
            let s = live[slot];
            ops.push(queues[s].pop_front().unwrap());
            if queues[s].is_empty() {
                live.swap_remove(slot);
            }
        }
        FleetWorkload { config, ops }
    }

    /// Ops whose target is `doc`, in canonical order — the sequence a
    /// writer lane must preserve.
    pub fn ops_for_doc(&self, doc: u32) -> impl Iterator<Item = &FleetOp> {
        self.ops.iter().filter(move |op| op.doc == doc)
    }

    /// Count of ops per class name, for reports.
    pub fn class_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for op in &self.ops {
            *counts.entry(op.kind.class()).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FleetWorkload::generate(FleetConfig::small(7));
        let b = FleetWorkload::generate(FleetConfig::small(7));
        assert_eq!(a.ops, b.ops);
        let c = FleetWorkload::generate(FleetConfig::small(8));
        assert_ne!(a.ops, c.ops, "seed changes the stream");
    }

    #[test]
    fn sessions_are_well_formed_open_close_cycles() {
        let w = FleetWorkload::generate(FleetConfig::small(3));
        let cfg = w.config;
        for s in 0..cfg.sessions as u32 {
            let mine: Vec<&FleetOp> = w.ops.iter().filter(|op| op.session == s).collect();
            assert_eq!(
                mine.len(),
                cfg.visits_per_session * (cfg.ops_per_visit + 2),
                "session {s} emits every op"
            );
            let mut open: Option<u32> = None;
            for op in mine {
                match &op.kind {
                    FleetOpKind::Open => {
                        assert!(open.is_none(), "no nested opens");
                        open = Some(op.doc);
                    }
                    FleetOpKind::Close => {
                        assert_eq!(open.take(), Some(op.doc), "close matches open");
                    }
                    FleetOpKind::Query(class) => {
                        assert_eq!(open, Some(op.doc), "query inside a visit");
                        assert!(*class < cfg.query_classes);
                    }
                    FleetOpKind::Update(script) => {
                        assert_eq!(open, Some(op.doc), "update inside a visit");
                        assert_eq!(script.ops.len(), cfg.script_len);
                    }
                }
            }
            assert!(open.is_none(), "session ends closed");
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let mut cfg = FleetConfig::small(11);
        cfg.sessions = 64;
        cfg.visits_per_session = 16;
        let w = FleetWorkload::generate(cfg);
        let mut visits = vec![0usize; cfg.docs];
        for op in &w.ops {
            if op.kind == FleetOpKind::Open {
                visits[op.doc as usize] += 1;
            }
        }
        let head: usize = visits[..cfg.docs / 4].iter().sum();
        let tail: usize = visits[cfg.docs - cfg.docs / 4..].iter().sum();
        assert!(
            head > 3 * tail.max(1),
            "hot quartile ({head}) dominates cold quartile ({tail})"
        );
        // every doc id stays in range
        assert!(w.ops.iter().all(|op| (op.doc as usize) < cfg.docs));
    }

    #[test]
    fn stream_mixes_sessions_rather_than_concatenating() {
        let w = FleetWorkload::generate(FleetConfig::small(5));
        let switches = w
            .ops
            .windows(2)
            .filter(|p| p[0].session != p[1].session)
            .count();
        assert!(
            switches > w.config.sessions * 4,
            "interleave switches sessions often ({switches})"
        );
    }

    #[test]
    fn per_doc_projection_preserves_canonical_order() {
        let w = FleetWorkload::generate(FleetConfig::small(9));
        for doc in 0..w.config.docs as u32 {
            let projected: Vec<&FleetOp> = w.ops_for_doc(doc).collect();
            let manual: Vec<&FleetOp> = w.ops.iter().filter(|op| op.doc == doc).collect();
            assert_eq!(projected, manual);
        }
        let counts = w.class_counts();
        assert_eq!(
            counts["open"], counts["close"],
            "every open has a matching close"
        );
        assert!(counts["query"] > 0 && counts["update"] > 0);
    }

    #[test]
    fn zipf_cdf_shape() {
        let cdf = zipf_cdf(10, 1.0);
        assert_eq!(cdf.len(), 10);
        assert!((cdf[9] - 1.0).abs() < 1e-12, "normalized");
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]), "monotone");
        // rank 0 mass is the largest single step
        let mass0 = cdf[0];
        assert!(mass0 > cdf[9] - cdf[8]);
        // uniform when s = 0
        let flat = zipf_cdf(4, 0.0);
        assert!((flat[0] - 0.25).abs() < 1e-12);
        // degenerate inputs stay in range
        assert_eq!(sample_cdf(&cdf, 0.999_999_999), 9);
        assert_eq!(sample_cdf(&cdf, 0.0), 0);
    }
}
