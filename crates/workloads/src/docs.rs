//! Deterministic document generators.

use xupd_testkit::TestRng;
use xupd_xmldom::{NodeId, NodeKind, TreeBuilder, XmlTree};

/// The paper's Figure 1 sample book document.
pub fn book() -> XmlTree {
    xupd_xmldom::sample::figure1_document()
}

/// A single root with `fanout` leaf children — stresses sibling-code
/// allocation.
pub fn wide(fanout: usize) -> XmlTree {
    let mut b = TreeBuilder::new().open("root");
    for i in 0..fanout {
        b = b.open("item").attr("id", i.to_string()).close();
    }
    b.close().finish()
}

/// A single chain of `depth` nested elements — stresses path length and
/// the prime scheme's products.
pub fn deep(depth: usize) -> XmlTree {
    let mut tree = XmlTree::new();
    let mut cur = tree.root();
    for i in 0..depth {
        let n = tree.create(NodeKind::element(format!("level{i}")));
        tree.append_child(cur, n).expect("cur is live");
        cur = n;
    }
    tree
}

/// A random-shaped tree with `n` element nodes: each new node attaches
/// under a uniformly random existing element, keeping depth moderate.
/// Deterministic for a given `seed`.
pub fn random_tree(seed: u64, n: usize) -> XmlTree {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut tree = XmlTree::new();
    let root = tree.create(NodeKind::element("root"));
    tree.append_child(tree.root(), root).expect("root live");
    let mut elements = vec![root];
    for i in 1..n {
        // Bias towards recent nodes for natural document shapes, but cap
        // depth to keep the Sector scheme's arcs splittable.
        let parent = loop {
            let idx = if rng.gen_bool(0.5) {
                elements.len() - 1 - rng.gen_range(0..elements.len().min(8))
            } else {
                rng.gen_range(0..elements.len())
            };
            let cand = elements[idx];
            if tree.depth(cand) < 10 {
                break cand;
            }
        };
        let node = tree.create(NodeKind::element(format!("e{i}")));
        tree.append_child(parent, node).expect("parent live");
        elements.push(node);
    }
    tree
}

/// A random-shaped tree like [`random_tree`], but element names drawn
/// from a small repeated tag alphabet (so per-name index buckets hold
/// many rows), with occasional `id` attributes and text leaves — the
/// shape the encoding-layer differential property tests want: every
/// node kind present, non-trivial name buckets, random topology.
/// Deterministic for a given `seed`.
pub fn random_tagged_tree(seed: u64, n: usize, tags: &[&str]) -> XmlTree {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut tree = XmlTree::new();
    let root = tree.create(NodeKind::element("root"));
    tree.append_child(tree.root(), root).expect("root live");
    let mut elements = vec![root];
    for i in 1..n {
        let parent = loop {
            let idx = if rng.gen_bool(0.5) {
                elements.len() - 1 - rng.gen_range(0..elements.len().min(8))
            } else {
                rng.gen_range(0..elements.len())
            };
            let cand = elements[idx];
            if tree.depth(cand) < 10 {
                break cand;
            }
        };
        let tag = tags[rng.gen_range(0..tags.len().max(1))];
        let node = tree.create(NodeKind::element(tag));
        tree.append_child(parent, node).expect("parent live");
        if rng.gen_bool(0.3) {
            let attr = tree.create(NodeKind::attribute("id", format!("n{i}")));
            tree.append_child(node, attr).expect("node live");
        }
        if rng.gen_bool(0.3) {
            let text = tree.create(NodeKind::text(format!("t{i}")));
            tree.append_child(node, text).expect("node live");
        }
        elements.push(node);
    }
    tree
}

/// An XMark-flavoured auction document: `site` with `regions`, `people`
/// and `open_auctions` sections, text values and attributes — the
/// realistic-shape workload the paper's motivation (XML repositories in
/// industry) calls for. Deterministic for a given `seed`; `scale` is
/// roughly the number of items + people + auctions.
pub fn xmark_like(seed: u64, scale: usize) -> XmlTree {
    let mut rng = TestRng::seed_from_u64(seed);
    let per_section = (scale / 3).max(1);
    let mut b = TreeBuilder::new().open("site");

    b = b.open("regions");
    let region_names = ["africa", "asia", "europe", "namerica"];
    let mut region_open = 0usize;
    for (ri, name) in region_names.iter().enumerate() {
        b = b.open(*name);
        let items = per_section / region_names.len() + usize::from(ri == 0);
        for i in 0..items.max(1) {
            let id = format!("item{ri}_{i}");
            b = b
                .open("item")
                .attr("id", &id)
                .leaf("name", format!("Item {i} of {name}"))
                .open("description")
                .leaf("text", lorem(&mut rng))
                .close()
                .leaf("quantity", (rng.gen_range(1..5u32)).to_string())
                .close();
            region_open += 1;
        }
        b = b.close();
    }
    b = b.close();

    b = b.open("people");
    for i in 0..per_section {
        b = b
            .open("person")
            .attr("id", format!("person{i}"))
            .leaf("name", format!("Person #{i}"))
            .leaf("emailaddress", format!("mailto:p{i}@example.org"))
            .close();
    }
    b = b.close();

    b = b.open("open_auctions");
    for i in 0..per_section {
        b = b
            .open("open_auction")
            .attr("id", format!("auction{i}"))
            .leaf(
                "initial",
                format!("{}.{:02}", rng.gen_range(1..200), rng.gen_range(0..100)),
            )
            .open("bidder")
            .leaf("increase", format!("{}.00", rng.gen_range(1..20)))
            .close()
            .leaf("itemref", format!("item0_{}", i % region_open.max(1)))
            .close();
    }
    b = b.close();

    b.close().finish()
}

fn lorem(rng: &mut TestRng) -> String {
    const WORDS: [&str; 12] = [
        "lorem",
        "ipsum",
        "dolor",
        "sit",
        "amet",
        "consectetur",
        "adipiscing",
        "elit",
        "sed",
        "do",
        "eiusmod",
        "tempor",
    ];
    let n = rng.gen_range(3..10);
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// All element nodes of `tree` in document order — the usual target pool
/// for update scripts.
pub fn element_pool(tree: &XmlTree) -> Vec<NodeId> {
    tree.preorder()
        .filter(|&n| tree.kind(n).is_element())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_has_fanout_children() {
        let t = wide(50);
        let root = t.document_element().unwrap();
        assert_eq!(t.child_count(root), 50);
        t.validate().unwrap();
    }

    #[test]
    fn deep_has_depth() {
        let t = deep(30);
        let deepest = t.preorder().last().unwrap();
        assert_eq!(t.depth(deepest), 30);
        t.validate().unwrap();
    }

    #[test]
    fn random_tree_is_deterministic_and_bounded() {
        let a = random_tree(42, 500);
        let b = random_tree(42, 500);
        assert_eq!(a.len(), b.len());
        let sig = |t: &XmlTree| -> Vec<u32> { t.preorder().map(|n| t.depth(n)).collect() };
        assert_eq!(sig(&a), sig(&b));
        assert!(a.preorder().all(|n| a.depth(n) <= 10));
        a.validate().unwrap();
        let c = random_tree(43, 500);
        assert_ne!(sig(&a), sig(&c), "different seeds differ");
    }

    #[test]
    fn random_tagged_tree_repeats_tags_and_mixes_kinds() {
        let tags = ["a", "b", "c"];
        let t = random_tagged_tree(9, 120, &tags);
        let u = random_tagged_tree(9, 120, &tags);
        assert_eq!(t.len(), u.len(), "deterministic");
        let mut per_tag = [0usize; 3];
        let (mut attrs, mut texts) = (0usize, 0usize);
        for n in t.preorder() {
            let k = t.kind(n);
            if let Some(pos) = tags.iter().position(|&tag| k.name() == Some(tag)) {
                per_tag[pos] += 1;
            }
            attrs += usize::from(k.is_attribute());
            texts += usize::from(k.is_text());
        }
        assert!(per_tag.iter().all(|&c| c > 5), "buckets non-trivial: {per_tag:?}");
        assert!(attrs > 5 && texts > 5, "attrs {attrs}, texts {texts}");
        t.validate().unwrap();
    }

    #[test]
    fn xmark_like_has_expected_sections() {
        let t = xmark_like(7, 90);
        let site = t.document_element().unwrap();
        let sections: Vec<&str> = t.children(site).filter_map(|c| t.kind(c).name()).collect();
        assert_eq!(sections, ["regions", "people", "open_auctions"]);
        assert!(t.len() > 300, "realistic size, got {}", t.len());
        t.validate().unwrap();
        // round-trips through the serializer and parser
        let text = xupd_xmldom::serialize_compact(&t);
        let back = xupd_xmldom::parse(&text).unwrap();
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn element_pool_excludes_text_and_attrs() {
        let t = book();
        let pool = element_pool(&t);
        assert_eq!(pool.len(), 8); // the 8 elements of Figure 1
    }
}
