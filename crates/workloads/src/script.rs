//! Replayable update scripts.
//!
//! A script is a sequence of structural operations addressed by
//! *document-order index into the current element pool*, so the same
//! script replays identically against any labelling scheme and any
//! driver. Index resolution happens at execution time (the pool evolves
//! as the script runs), which keeps scripts compact and deterministic.

use xupd_testkit::TestRng;

/// One structural update. Indices address the element pool (all live
/// element nodes in document order) at the moment the op executes; the
/// driver resolves them modulo the pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Insert a new element immediately before the indexed element (no-op
    /// target when it has no parent, i.e. the pool slot is the document
    /// element — drivers fall back to prepend-child of it).
    InsertBefore(usize),
    /// Insert a new element immediately after the indexed element (same
    /// fallback: append-child).
    InsertAfter(usize),
    /// Insert a new element as the first child of the indexed element.
    PrependChild(usize),
    /// Insert a new element as the last child of the indexed element.
    AppendChild(usize),
    /// Delete the subtree rooted at the indexed element (skipped when the
    /// pool would drop below two elements).
    DeleteSubtree(usize),
}

/// The §5.1 update-scenario taxonomy plus the adversarial zigzag probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScriptKind {
    /// Frequent random updates: random positions, random op mix.
    Random,
    /// Frequent uniform updates: appends spread evenly over the pool.
    Uniform,
    /// Skewed frequent updates: always at one fixed position
    /// (insert-before the same element).
    Skewed,
    /// Append-only at the document element (log-style growth).
    AppendOnly,
    /// Prepend storm: always insert as the first child of one fixed
    /// parent — the skew variant that exposes before-first growth rates
    /// (LSDX's `a` prefixes, ImprovedBinary's one-bit-per-insert rule).
    PrependStorm,
    /// Alternating nested insertion — the adversarial pattern that
    /// exhausts mediant/interval encodings fastest.
    Zigzag,
    /// Random insertions mixed with subtree deletions.
    MixedDelete,
}

impl ScriptKind {
    /// All kinds, for batteries.
    pub const ALL: [ScriptKind; 7] = [
        ScriptKind::Random,
        ScriptKind::Uniform,
        ScriptKind::Skewed,
        ScriptKind::AppendOnly,
        ScriptKind::PrependStorm,
        ScriptKind::Zigzag,
        ScriptKind::MixedDelete,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ScriptKind::Random => "random",
            ScriptKind::Uniform => "uniform",
            ScriptKind::Skewed => "skewed",
            ScriptKind::AppendOnly => "append-only",
            ScriptKind::PrependStorm => "prepend-storm",
            ScriptKind::Zigzag => "zigzag",
            ScriptKind::MixedDelete => "mixed-delete",
        }
    }
}

/// A replayable update script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// Scenario this script encodes.
    pub kind: ScriptKind,
    /// The operations, in order.
    pub ops: Vec<ScriptOp>,
}

impl Script {
    /// Generate a script of `len` operations over a pool of roughly
    /// `pool_hint` elements. Deterministic for a given seed.
    pub fn generate(kind: ScriptKind, len: usize, pool_hint: usize, seed: u64) -> Script {
        let mut rng = TestRng::seed_from_u64(seed ^ 0x5eed_0000);
        let hint = pool_hint.max(2);
        let ops = match kind {
            ScriptKind::Random => (0..len)
                .map(|_| {
                    let target = rng.gen_range(0..hint);
                    match rng.gen_range(0..4u8) {
                        0 => ScriptOp::InsertBefore(target),
                        1 => ScriptOp::InsertAfter(target),
                        2 => ScriptOp::PrependChild(target),
                        _ => ScriptOp::AppendChild(target),
                    }
                })
                .collect(),
            ScriptKind::Uniform => {
                // stride through the pool, appending one child everywhere
                let stride = (hint / 7).max(1) | 1;
                (0..len)
                    .map(|i| ScriptOp::AppendChild((i * stride) % hint))
                    .collect()
            }
            ScriptKind::Skewed => {
                let site = hint / 2;
                (0..len).map(|_| ScriptOp::InsertBefore(site)).collect()
            }
            ScriptKind::AppendOnly => (0..len).map(|_| ScriptOp::AppendChild(0)).collect(),
            ScriptKind::PrependStorm => {
                let site = hint / 3;
                (0..len).map(|_| ScriptOp::PrependChild(site)).collect()
            }
            ScriptKind::Zigzag => {
                // Always insert after the element created half a step ago:
                // the driver interprets index usize::MAX as "the
                // second-most-recently inserted element", producing the
                // alternating nesting pattern.
                (0..len)
                    .map(|_| ScriptOp::InsertAfter(usize::MAX))
                    .collect()
            }
            ScriptKind::MixedDelete => (0..len)
                .map(|_| {
                    let target = rng.gen_range(0..hint);
                    match rng.gen_range(0..5u8) {
                        0 => ScriptOp::DeleteSubtree(target),
                        1 => ScriptOp::InsertBefore(target),
                        2 => ScriptOp::InsertAfter(target),
                        3 => ScriptOp::PrependChild(target),
                        _ => ScriptOp::AppendChild(target),
                    }
                })
                .collect(),
        };
        Script { kind, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Script::generate(ScriptKind::Random, 100, 50, 9);
        let b = Script::generate(ScriptKind::Random, 100, 50, 9);
        assert_eq!(a.ops, b.ops);
        let c = Script::generate(ScriptKind::Random, 100, 50, 10);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn skewed_targets_one_site() {
        let s = Script::generate(ScriptKind::Skewed, 50, 100, 1);
        assert!(s
            .ops
            .iter()
            .all(|op| matches!(op, ScriptOp::InsertBefore(50))));
    }

    #[test]
    fn uniform_spreads_appends() {
        let s = Script::generate(ScriptKind::Uniform, 100, 70, 1);
        let mut targets: Vec<usize> = s
            .ops
            .iter()
            .map(|op| match op {
                ScriptOp::AppendChild(t) => *t,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        assert!(targets.len() > 30, "appends hit many distinct sites");
    }

    #[test]
    fn mixed_contains_deletes_and_inserts() {
        let s = Script::generate(ScriptKind::MixedDelete, 200, 50, 3);
        assert!(s
            .ops
            .iter()
            .any(|o| matches!(o, ScriptOp::DeleteSubtree(_))));
        assert!(s
            .ops
            .iter()
            .any(|o| !matches!(o, ScriptOp::DeleteSubtree(_))));
    }

    #[test]
    fn all_kinds_generate_requested_length() {
        for kind in ScriptKind::ALL {
            let s = Script::generate(kind, 37, 20, 5);
            assert_eq!(s.ops.len(), 37, "{}", kind.name());
        }
    }
}
