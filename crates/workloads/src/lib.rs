//! # xupd-workloads — deterministic documents and update scripts
//!
//! The paper's framework properties are judged "under various update
//! scenarios … frequent random updates, frequent uniform updates and
//! skewed frequent updates (frequent updates at a fixed position)"
//! (§5.1, *Compact Encoding*). This crate supplies those scenarios:
//!
//! * [`docs`] — document generators (the paper's Figure 1 sample, wide /
//!   deep / random-shaped trees, and an XMark-flavoured auction
//!   document), all seed-deterministic;
//! * [`script`] — update scripts: sequences of structural operations
//!   ([`ScriptOp`]) addressed by document-order index so any driver can
//!   replay them against any labelling scheme, plus generators for the
//!   random / uniform / skewed / zigzag batteries;
//! * [`fleet`] — store-level workloads: a canonical, deterministic
//!   stream of open / query / batch-update / close operations from many
//!   user sessions over a Zipf-skewed document fleet.

pub mod docs;
pub mod fleet;
pub mod script;

pub use fleet::{FleetConfig, FleetOp, FleetOpKind, FleetWorkload};
pub use script::{Script, ScriptKind, ScriptOp};
