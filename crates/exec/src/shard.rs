//! Long-lived per-lane workers: the store's writer lanes.
//!
//! [`par_map`](crate::par_map) fits one shape — a fixed item list
//! fanned out once. The document store needs a different one: **lanes**
//! (one per shard) that each execute a long, incrementally-submitted
//! stream of jobs *in submission order*, while distinct lanes run
//! concurrently. [`ShardExecutor`] provides exactly that, still
//! dependency-free and unsafe-free:
//!
//! * every lane maps statically to one worker (`lane % workers`), and
//!   each worker drains its queue FIFO — so jobs submitted to the same
//!   lane never reorder and never overlap;
//! * with one worker (`XUPD_THREADS=1`, a single-CPU box, or
//!   `lanes == 1`) jobs run **inline on the submitting thread**, in
//!   global submission order — byte-for-byte the sequential reference
//!   behaviour, no threads created at all;
//! * a panicking job never poisons the executor: the panic payload is
//!   captured (inline path included), every other job still runs, and
//!   [`ShardExecutor::drain`] re-raises the payload of the **lowest
//!   global submission index** — the same panic a sequential replay of
//!   the submission stream would have surfaced first.
//!
//! Determinism: per-lane job order is the submission order at any
//! worker count. Jobs on different lanes interleave arbitrarily, so a
//! caller gets reproducible *state* only when lanes touch disjoint
//! state — which is precisely the store's shard partition.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lock a mutex, recovering from poisoning: a worker panicking inside a
/// job is already captured separately, and the queue structures stay
/// consistent (pushes/pops are atomic under the lock).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One worker's mailbox: a FIFO of `(submission index, job)` plus a
/// closed flag for shutdown.
struct Mailbox {
    queue: Mutex<(VecDeque<(u64, Job)>, bool)>,
    ready: Condvar,
}

/// Shared completion / panic bookkeeping.
struct Progress {
    /// Jobs submitted but not yet finished.
    outstanding: Mutex<u64>,
    idle: Condvar,
    /// Captured panics: `(submission index, payload)`.
    panics: Mutex<Vec<(u64, Box<dyn std::any::Any + Send>)>>,
}

impl Progress {
    fn job_done(&self) {
        let mut n = lock(&self.outstanding);
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    fn run_job(&self, seq: u64, job: Job) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            lock(&self.panics).push((seq, payload));
        }
        self.job_done();
    }
}

/// Long-lived per-lane writer pool. See the module docs for the
/// ordering, inline-path and panic contracts.
pub struct ShardExecutor {
    lanes: usize,
    /// Empty in inline mode.
    mailboxes: Vec<Arc<Mailbox>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    progress: Arc<Progress>,
    next_seq: AtomicU64,
}

impl ShardExecutor {
    /// An executor with `lanes` lanes on the pool sized by
    /// [`worker_count`](crate::worker_count) (the `XUPD_THREADS`
    /// override applies). At width 1 no threads are created and every
    /// job runs inline at submission.
    pub fn new(lanes: usize) -> ShardExecutor {
        ShardExecutor::with_workers(lanes, crate::worker_count())
    }

    /// An executor with an explicit worker count — differential tests
    /// drive this directly so they need not mutate the process
    /// environment.
    pub fn with_workers(lanes: usize, workers: usize) -> ShardExecutor {
        let lanes = lanes.max(1);
        let workers = workers.max(1).min(lanes);
        let progress = Arc::new(Progress {
            outstanding: Mutex::new(0),
            idle: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        });
        if workers <= 1 {
            return ShardExecutor {
                lanes,
                mailboxes: Vec::new(),
                handles: Vec::new(),
                progress,
                next_seq: AtomicU64::new(0),
            };
        }
        let mailboxes: Vec<Arc<Mailbox>> = (0..workers)
            .map(|_| {
                Arc::new(Mailbox {
                    queue: Mutex::new((VecDeque::new(), false)),
                    ready: Condvar::new(),
                })
            })
            .collect();
        let handles = mailboxes
            .iter()
            .map(|mailbox| {
                let mailbox = Arc::clone(mailbox);
                let progress = Arc::clone(&progress);
                std::thread::spawn(move || loop {
                    let next = {
                        let mut q = lock(&mailbox.queue);
                        loop {
                            if let Some(job) = q.0.pop_front() {
                                break Some(job);
                            }
                            if q.1 {
                                break None;
                            }
                            q = mailbox
                                .ready
                                .wait(q)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    match next {
                        Some((seq, job)) => progress.run_job(seq, job),
                        None => return,
                    }
                })
            })
            .collect();
        ShardExecutor {
            lanes,
            mailboxes,
            handles,
            progress,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Effective worker count (1 means the inline path).
    pub fn workers(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Submit a job to `lane` (taken modulo the lane count). Jobs on the
    /// same lane execute in submission order, one at a time; the inline
    /// path runs the job before returning.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, lane: usize, job: F) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let job: Job = Box::new(job);
        if self.mailboxes.is_empty() {
            *lock(&self.progress.outstanding) += 1;
            self.progress.run_job(seq, job);
            return;
        }
        let mailbox = &self.mailboxes[(lane % self.lanes) % self.mailboxes.len()];
        *lock(&self.progress.outstanding) += 1;
        {
            let mut q = lock(&mailbox.queue);
            q.0.push_back((seq, job));
        }
        mailbox.ready.notify_one();
    }

    /// Block until every submitted job has finished, then re-raise the
    /// captured panic with the lowest submission index, if any. The
    /// executor stays usable after a drain (panicking or not).
    pub fn drain(&self) {
        {
            let mut n = lock(&self.progress.outstanding);
            while *n > 0 {
                n = self
                    .progress
                    .idle
                    .wait(n)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let first = {
            let mut panics = lock(&self.progress.panics);
            if panics.is_empty() {
                None
            } else {
                let lowest = panics
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (seq, _))| *seq)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Some(panics.swap_remove(lowest).1)
            }
        };
        if let Some(payload) = first {
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        for mailbox in &self.mailboxes {
            lock(&mailbox.queue).1 = true;
            mailbox.ready.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker never unwinds past run_job's catch, so join errors
            // cannot happen; if one somehow does, dropping the payload
            // here beats panicking inside drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Jobs on one lane always run in submission order and never
    /// overlap, at every worker width.
    #[test]
    fn per_lane_fifo_at_any_width() {
        for workers in [1, 2, 3, 8] {
            let lanes = 4;
            let exec = ShardExecutor::with_workers(lanes, workers);
            let logs: Vec<Arc<Mutex<Vec<u32>>>> =
                (0..lanes).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
            for i in 0..200u32 {
                let lane = (i as usize) % lanes;
                let log = Arc::clone(&logs[lane]);
                exec.submit(lane, move || lock(&log).push(i));
            }
            exec.drain();
            for (lane, log) in logs.iter().enumerate() {
                let got = lock(log).clone();
                let want: Vec<u32> = (0..200).filter(|i| *i as usize % lanes == lane).collect();
                assert_eq!(got, want, "lane {lane} at {workers} workers drains in order");
            }
        }
    }

    /// drain() waits for everything, and the executor accepts new work
    /// afterwards.
    #[test]
    fn drain_is_a_barrier_and_executor_is_reusable() {
        let exec = ShardExecutor::with_workers(8, 4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..64 {
            let c = Arc::clone(&counter);
            exec.submit(i, move || {
                std::thread::yield_now();
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        for i in 0..16 {
            let c = Arc::clone(&counter);
            exec.submit(i, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 80, "reusable after drain");
    }

    /// The lowest-submission-index panic is re-raised at drain; all
    /// other jobs still run first.
    #[test]
    fn panic_propagates_lowest_submission_index() {
        for workers in [1, 4] {
            let exec = ShardExecutor::with_workers(4, workers);
            let ran = Arc::new(AtomicU64::new(0));
            for i in 0..32u64 {
                let ran = Arc::clone(&ran);
                exec.submit(i as usize % 4, move || {
                    if i == 20 || i == 5 {
                        panic!("boom at {i}");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            let caught = catch_unwind(AssertUnwindSafe(|| exec.drain()));
            let payload = caught.expect_err("must re-raise");
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "boom at 5", "{workers} workers: lowest submission wins");
            assert_eq!(
                ran.load(Ordering::Relaxed),
                30,
                "{workers} workers: every non-panicking job still ran"
            );
            // the second captured panic does not linger into a clean drain
            exec.submit(0, || {});
            let second = catch_unwind(AssertUnwindSafe(|| exec.drain()));
            let msg = second
                .expect_err("second payload surfaces next")
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "boom at 20");
            exec.submit(0, || {});
            exec.drain();
        }
    }

    /// One worker (or one lane) runs inline on the submitting thread.
    #[test]
    fn inline_path_runs_on_the_caller() {
        let caller = std::thread::current().id();
        for (lanes, workers) in [(4, 1), (1, 8)] {
            let exec = ShardExecutor::with_workers(lanes, workers);
            assert_eq!(exec.workers(), 1);
            let on_caller = Arc::new(Mutex::new(Vec::new()));
            for i in 0..8 {
                let log = Arc::clone(&on_caller);
                exec.submit(i, move || {
                    lock(&log).push(std::thread::current().id() == caller)
                });
            }
            exec.drain();
            assert!(lock(&on_caller).iter().all(|&b| b), "inline on the caller");
        }
    }

    /// Lane indices wrap modulo the lane count instead of panicking.
    #[test]
    fn lane_index_wraps() {
        let exec = ShardExecutor::with_workers(3, 2);
        let hits = Arc::new(AtomicU64::new(0));
        for lane in [0usize, 3, 6, 301] {
            let hits = Arc::clone(&hits);
            exec.submit(lane, move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.drain();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
