//! # xupd-exec — the hermetic execution substrate
//!
//! A dependency-free, unsafe-free scoped thread pool on [`std::thread`],
//! built for the one parallelism shape this workspace has: independent
//! per-scheme batteries fanned out over a fixed item list. The only
//! primitive is [`par_map`] (plus its fallible twin [`try_par_map`]),
//! which preserves input order in its results and propagates the first
//! error or panic **by input index**, not by wall-clock arrival — so a
//! parallel run fails exactly like the sequential run would have.
//!
//! ## Determinism contract
//!
//! * Results come back in input order regardless of which worker ran
//!   what.
//! * With one worker (`XUPD_THREADS=1`, a single-CPU box, or a
//!   single-item input) the closure runs inline on the calling thread in
//!   input order — byte-for-byte the pre-pool behaviour.
//! * A panic in any closure is re-raised on the caller with the payload
//!   of the **lowest-index** panicking item; every other item still
//!   runs to completion first (workers never abandon the queue).
//! * [`try_par_map`] returns the `Err` of the lowest-index failing item.
//!
//! Worker count comes from `XUPD_THREADS` when set (minimum 1),
//! otherwise [`std::thread::available_parallelism`]. Code outside this
//! crate must not call `std::thread::spawn` directly — lint rule R7
//! enforces pool-only concurrency.
//!
//! Besides the scoped one-shot [`par_map`], the crate provides
//! [`shard::ShardExecutor`] — long-lived workers draining per-lane FIFO
//! queues — for the document store's serialized per-shard writer lanes.

pub mod shard;

pub use shard::ShardExecutor;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parse a `XUPD_THREADS`-style override. `None`/unparsable/zero falls
/// back to `fallback`.
fn parse_threads(val: Option<&str>, fallback: usize) -> usize {
    match val.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback,
    }
}

/// The pool's worker count: `XUPD_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_threads(std::env::var("XUPD_THREADS").ok().as_deref(), fallback)
}

/// Apply `f` to every item, using the pool sized by [`worker_count`].
/// Results are in input order; the first (lowest-index) panic is
/// re-raised after all items ran.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count — the determinism tests
/// drive this directly so they need not mutate process environment.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        // Sequential fast path: inline on the caller, no catch_unwind,
        // no worker threads — byte-reproduces pre-pool behaviour.
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, std::thread::Result<R>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut got: Vec<(usize, std::thread::Result<R>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        got.push((i, catch_unwind(AssertUnwindSafe(|| f(item)))));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => collected.extend(part),
                // Workers wrap every closure call in catch_unwind, so a
                // join error is a harness bug; re-raise it as-is.
                Err(payload) => resume_unwind(payload),
            }
        }
    });
    collected.sort_by_key(|(i, _)| *i);

    let mut out = Vec::with_capacity(items.len());
    for (_, r) in collected {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Fallible [`par_map`]: every item runs; the result is `Ok(results)` in
/// input order, or the `Err` of the lowest-index failing item —
/// exactly the error a sequential `?`-loop over `items` would surface
/// (sequential stops early; the parallel form runs the rest, then
/// discards their results).
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_par_map_with(worker_count(), items, f)
}

/// [`try_par_map`] with an explicit worker count.
pub fn try_par_map_with<T, R, E, F>(workers: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_map_with(workers, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = par_map_with(workers, &items, |&i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_one_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map_with(8, &none, |&i| i).is_empty());
        assert_eq!(par_map_with(8, &[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn more_tasks_than_workers_all_run() {
        let items: Vec<u64> = (0..257).collect();
        let ran = AtomicU64::new(0);
        let out = par_map_with(4, &items, |&i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn panic_propagates_lowest_index_payload() {
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_with(4, &items, |&i| {
                if i == 20 || i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom at 5", "lowest-index panic wins");
    }

    #[test]
    fn try_par_map_first_error_by_index() {
        let items: Vec<usize> = (0..32).collect();
        let r: Result<Vec<usize>, String> = try_par_map_with(4, &items, |&i| {
            if i == 19 || i == 3 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "bad 3");
        let ok: Result<Vec<usize>, String> = try_par_map_with(4, &items, |&i| Ok(i));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn sequential_path_taken_for_one_worker() {
        // With one worker the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let items = [0u8; 8];
        let on_caller = par_map_with(1, &items, |_| std::thread::current().id() == caller);
        assert!(on_caller.iter().all(|&b| b));
    }

    #[test]
    fn env_override_parsing() {
        assert_eq!(parse_threads(Some("4"), 9), 4);
        assert_eq!(parse_threads(Some(" 2 "), 9), 2);
        assert_eq!(parse_threads(Some("0"), 9), 9);
        assert_eq!(parse_threads(Some("nope"), 9), 9);
        assert_eq!(parse_threads(None, 9), 9);
        assert!(worker_count() >= 1);
    }
}
