//! The [`Label`] trait and the [`Labeling`] side table mapping tree nodes
//! to their labels.

use std::fmt::Debug;
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A node label as assigned by a labelling scheme (Definition 1 of the
/// paper: unique identifiers that facilitate node ordering).
///
/// `Ord` on a label type is **document order** for labels produced by the
/// same scheme instance over the same document — every scheme's label type
/// implements its own comparison algebra (lexicographic for prefix/QED
/// codes, gradient comparison for vector codes, numeric for containment).
pub trait Label: Clone + Eq + Ord + Debug {
    /// Storage footprint of this label in bits, under the scheme's storage
    /// model (e.g. 2 bits per quaternary symbol plus a 2-bit separator for
    /// QED; UTF-8-style varints for vector components). This feeds the
    /// *Compact Encoding* measurements.
    fn size_bits(&self) -> u64;

    /// Human-readable rendering matching the paper's figures where
    /// applicable (e.g. `1.5.2.1` for ORDPATH, `0101.011` for
    /// ImprovedBinary, `2ab.c` for LSDX).
    fn display(&self) -> String;
}

/// A side table assigning a label to each (live) node of an [`XmlTree`].
///
/// Backed by a dense vector indexed by [`NodeId`], because node ids are
/// never reused by the tree.
#[derive(Debug, Clone)]
pub struct Labeling<L> {
    slots: Vec<Option<L>>,
    /// Count of `Some` slots, maintained by `set`/`remove` so `len` and
    /// `is_empty` (called per checkpoint in the update driver) are O(1)
    /// instead of a scan over the whole id space.
    live: usize,
}

impl<L: Label> Default for Labeling<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Label> Labeling<L> {
    /// An empty labelling.
    pub fn new() -> Self {
        Labeling {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Pre-size for a tree's id space.
    pub fn with_capacity_for(tree: &XmlTree) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(tree.id_bound(), || None);
        Labeling { slots, live: 0 }
    }

    /// The label of `id`, if assigned.
    pub fn get(&self, id: NodeId) -> Option<&L> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// The label of `id`, required to exist.
    ///
    /// Schemes guarantee every live node is labelled, so a miss indicates
    /// a driver bug — surfaced as [`TreeError::Unlabeled`] rather than a
    /// panic, per the workspace panic policy (R1).
    pub fn req(&self, id: NodeId) -> Result<&L, TreeError> {
        self.get(id).ok_or(TreeError::Unlabeled(id))
    }

    /// Assign (or replace) the label of `id`. Returns the previous label.
    pub fn set(&mut self, id: NodeId, label: L) -> Option<L> {
        if self.slots.len() <= id.index() {
            self.slots.resize_with(id.index() + 1, || None);
        }
        let prev = self.slots[id.index()].replace(label);
        if prev.is_none() {
            self.live += 1;
        }
        prev
    }

    /// Remove the label of `id` (on node deletion).
    pub fn remove(&mut self, id: NodeId) -> Option<L> {
        let prev = self.slots.get_mut(id.index()).and_then(|s| s.take());
        if prev.is_some() {
            self.live -= 1;
        }
        prev
    }

    /// Number of labelled nodes. O(1).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no node is labelled. O(1).
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate `(NodeId, &L)` over all labelled nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &L)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|l| (NodeId::from_index(i), l)))
    }

    /// Total storage of all labels in bits (the *Compact Encoding* metric).
    pub fn total_bits(&self) -> u64 {
        self.iter().map(|(_, l)| l.size_bits()).sum()
    }

    /// Mean label size in bits (0.0 when empty).
    pub fn mean_bits(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            0.0
        } else {
            self.total_bits() as f64 / n as f64
        }
    }

    /// Largest label size in bits (0 when empty).
    pub fn max_bits(&self) -> u64 {
        self.iter().map(|(_, l)| l.size_bits()).max().unwrap_or(0)
    }

    /// Check label uniqueness — Definition 1 requires it, and LSDX-style
    /// collision bugs violate it. Returns a violating pair if any.
    pub fn find_duplicate(&self) -> Option<(NodeId, NodeId)> {
        let mut seen: Vec<(&L, NodeId)> = self.iter().map(|(id, l)| (l, id)).collect();
        seen.sort_by(|a, b| a.0.cmp(b.0));
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                return Some((w[0].1, w[1].1));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial label for exercising the side table.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct IntLabel(u64);

    impl Label for IntLabel {
        fn size_bits(&self) -> u64 {
            64
        }
        fn display(&self) -> String {
            self.0.to_string()
        }
    }

    #[test]
    fn set_get_remove() {
        let mut l: Labeling<IntLabel> = Labeling::new();
        let a = NodeId::from_index(3);
        assert!(l.get(a).is_none());
        assert!(l.set(a, IntLabel(7)).is_none());
        assert_eq!(l.get(a), Some(&IntLabel(7)));
        assert_eq!(l.set(a, IntLabel(9)), Some(IntLabel(7)));
        assert_eq!(l.remove(a), Some(IntLabel(9)));
        assert!(l.is_empty());
    }

    #[test]
    fn iter_and_metrics() {
        let mut l: Labeling<IntLabel> = Labeling::new();
        l.set(NodeId::from_index(0), IntLabel(1));
        l.set(NodeId::from_index(5), IntLabel(2));
        assert_eq!(l.len(), 2);
        assert_eq!(l.total_bits(), 128);
        assert_eq!(l.mean_bits(), 64.0);
        assert_eq!(l.max_bits(), 64);
        let ids: Vec<_> = l.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 5]);
    }

    #[test]
    fn duplicate_detection() {
        let mut l: Labeling<IntLabel> = Labeling::new();
        l.set(NodeId::from_index(0), IntLabel(1));
        l.set(NodeId::from_index(1), IntLabel(2));
        assert!(l.find_duplicate().is_none());
        l.set(NodeId::from_index(2), IntLabel(1));
        let (a, b) = l.find_duplicate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn req_errors_on_missing() {
        let l: Labeling<IntLabel> = Labeling::new();
        let id = NodeId::from_index(0);
        assert_eq!(l.req(id), Err(TreeError::Unlabeled(id)));
        let mut l = l;
        l.set(id, IntLabel(1));
        assert_eq!(l.req(id), Ok(&IntLabel(1)));
    }

    use xupd_testkit::prop::{ints, vecs, Config};
    use xupd_testkit::{prop_assert, prop_assert_eq, props};

    props! {
        config = Config::with_cases(150);

        /// The maintained live count always equals the count a full scan
        /// of the slot vector would produce, under any interleaving of
        /// set (fresh), set (replace) and remove.
        fn len_matches_scanned_count(ops in vecs(ints(0u32..1000), 0, 80)) {
            let mut l: Labeling<IntLabel> = Labeling::new();
            for op in ops {
                let id = NodeId::from_index((op % 16) as usize);
                if op % 3 == 0 {
                    l.remove(id);
                } else {
                    l.set(id, IntLabel(u64::from(op)));
                }
                let scanned = l.iter().count();
                prop_assert_eq!(l.len(), scanned);
                prop_assert!(l.is_empty() == (scanned == 0));
            }
        }
    }
}
