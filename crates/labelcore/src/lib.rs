//! # xupd-labelcore — label algebra primitives and the scheme abstraction
//!
//! Everything the twelve surveyed labelling schemes share lives here:
//!
//! * the [`LabelingScheme`] trait — bulk labelling, per-update label
//!   assignment (reporting any forced relabels, which is what the
//!   *Persistent Labels* property measures), and the structural-relation
//!   algebra evaluable from labels alone (*XPath Evaluations*, *Level
//!   Encoding*, *Document Order*);
//! * [`SchemeStats`] — instrumentation counters (divisions performed,
//!   recursive passes, relabelled nodes, overflow events, label bits) that
//!   the framework crate's empirical checkers read;
//! * the property vocabulary of the paper's §5.1 ([`Property`],
//!   [`Compliance`], [`OrderKind`], [`EncodingRep`]) and the per-scheme
//!   [`SchemeDescriptor`];
//! * code algebras reused by several schemes:
//!   [`BitString`] and the ImprovedBinary/CDBS *middle code* construction
//!   ([`bitstring`]), quaternary QED codes ([`quaternary`]), Stern–Brocot
//!   vector codes ordered by gradient ([`vectorcode`]), a UTF-8-style
//!   varint codec ([`varint`]) and a small arbitrary-precision unsigned
//!   integer ([`biguint`]) for the prime-number scheme.

pub mod biguint;
pub mod bitstring;
pub mod label;
pub mod properties;
pub mod qstorage;
pub mod quaternary;
pub mod scheme;
pub mod session;
pub mod smallbuf;
pub mod stats;
pub mod varint;
pub mod vectorcode;

pub use bitstring::BitString;
pub use smallbuf::{SmallBuf, SmallVec};
pub use label::{Label, Labeling};
pub use properties::{Compliance, EncodingRep, OrderKind, Property, SchemeDescriptor};
pub use quaternary::QCode;
pub use scheme::{InsertReport, LabelingScheme, Relation};
pub use session::{DynScheme, SchemeSession, SessionMut, SessionParts};
pub use stats::SchemeStats;
pub use vectorcode::VectorCode;
