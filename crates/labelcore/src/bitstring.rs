//! Binary-string codes and the ImprovedBinary *middle code* construction
//! (Li & Ling, DASFAA 2005 — \[13\] in the paper).
//!
//! Codes are compared **lexicographically with prefix-smaller semantics**:
//! `01 < 011` because a code is smaller than any of its extensions. The
//! ImprovedBinary invariant — every assigned code ends in `1` — guarantees
//! a strictly-between code always exists for the three insertion cases the
//! paper describes (§3.1.2):
//!
//! * before the first sibling: the first code with its final `1` changed
//!   to `01`;
//! * after the last sibling: the last code with an extra `1` appended;
//! * between two siblings: [`middle`], the `AssignMiddleSelfLabel`
//!   construction.

use crate::smallbuf::SmallBuf;
use crate::stats::SchemeStats;
use std::fmt;

/// A binary code: a sequence of bits compared lexicographically
/// (prefix-smaller). Bits are stored one per byte for clarity — inline
/// up to the [`SmallBuf`] capacity, so ordinary labels never touch the
/// heap; storage accounting ([`BitString::bit_len`]) is logical.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitString {
    bits: SmallBuf,
}

impl BitString {
    /// The empty code (the ImprovedBinary root label).
    pub fn empty() -> Self {
        BitString::default()
    }

    /// Build from an ASCII string of `0`/`1`, e.g. `"0101"`.
    ///
    /// # Panics
    /// Panics on characters other than `0`/`1` (codes in this codebase are
    /// compile-time constants or algorithm output).
    pub fn from_bits(s: &str) -> Self {
        let mut bits = SmallBuf::new();
        for c in s.chars() {
            bits.push(match c {
                '0' => 0,
                '1' => 1,
                // lint:allow(R1): documented panic contract; inputs are compile-time constant bit strings
                _ => panic!("invalid bit character {c:?}"),
            });
        }
        BitString { bits }
    }

    /// Number of bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// True when no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The final bit, if any.
    pub fn last(&self) -> Option<u8> {
        self.bits.last().copied()
    }

    /// Append one bit.
    pub fn push(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        self.bits.push(bit);
    }

    /// This code with `bit` appended.
    pub fn appending(&self, bit: u8) -> Self {
        let mut c = self.clone();
        c.push(bit);
        c
    }

    /// Is `self` a strict prefix of `other`?
    pub fn is_strict_prefix_of(&self, other: &BitString) -> bool {
        self.bits.len() < other.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }

    /// Raw bit access.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// The ImprovedBinary *insert before first sibling* rule: the final
    /// `1` becomes `01`.
    ///
    /// # Panics
    /// Panics if the code does not end in `1` (the scheme invariant).
    pub fn before(&self) -> BitString {
        assert_eq!(self.last(), Some(1), "ImprovedBinary codes end in 1");
        let mut bits = self.bits.clone();
        bits.pop();
        bits.push(0);
        bits.push(1);
        BitString { bits }
    }

    /// The ImprovedBinary *insert after last sibling* rule: append `1`.
    pub fn after(&self) -> BitString {
        self.appending(1)
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{self}\"")
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return f.write_str("ε");
        }
        for &b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// `AssignMiddleSelfLabel` (ImprovedBinary): a code strictly between
/// `left` and `right` under lexicographic order, ending in `1`.
///
/// * `len(left) >= len(right)` → `left ⧺ 1`;
/// * `len(left) <  len(right)` → `right` with its final `1` replaced by
///   `01` (i.e. a `0` inserted before the final `1`).
///
/// Requires `left < right` and both ending in `1`.
pub fn middle(left: &BitString, right: &BitString) -> BitString {
    debug_assert!(left < right, "middle requires left < right");
    if left.bit_len() >= right.bit_len() {
        left.after()
    } else {
        right.before()
    }
}

/// Strictly-between code for the general insertion interface: either bound
/// may be absent (insert before first / after last / into an empty
/// sibling list).
pub fn between(left: Option<&BitString>, right: Option<&BitString>) -> BitString {
    match (left, right) {
        (None, None) => BitString::from_bits("01"),
        (Some(l), None) => l.after(),
        (None, Some(r)) => r.before(),
        (Some(l), Some(r)) => middle(l, r),
    }
}

/// The recursive ImprovedBinary bulk `Labelling` algorithm over `n`
/// siblings: the leftmost gets `01`, the rightmost `011`, and the middle
/// positions are filled by recursive [`middle`] calls at the `((1+n)/2)`-th
/// position — the division and recursion the paper's framework penalises
/// are counted into `stats`.
pub fn bulk_binary(n: usize, stats: &mut SchemeStats) -> Vec<BitString> {
    match n {
        0 => return Vec::new(),
        1 => return vec![BitString::from_bits("01")],
        _ => {}
    }
    // The empty code is never assigned (all assigned codes end in 1), so
    // it doubles as the not-yet-filled sentinel; `fill_middle` visits every
    // interior position exactly once.
    let mut codes: Vec<BitString> = vec![BitString::empty(); n];
    codes[0] = BitString::from_bits("01");
    codes[n - 1] = BitString::from_bits("011");
    fill_middle(&mut codes, 0, n - 1, stats);
    debug_assert!(codes.iter().all(|c| c.last() == Some(1)));
    codes
}

fn fill_middle(codes: &mut [BitString], lo: usize, hi: usize, stats: &mut SchemeStats) {
    if hi - lo <= 1 {
        return;
    }
    stats.recursive_calls += 1;
    stats.divisions += 1; // the ((1+n)/2)-th position computation
    let mid = lo + (hi - lo) / 2;
    codes[mid] = middle(&codes[lo], &codes[hi]);
    fill_middle(codes, lo, mid, stats);
    fill_middle(codes, mid, hi, stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> BitString {
        BitString::from_bits(s)
    }

    #[test]
    fn lexicographic_prefix_smaller_order() {
        assert!(b("01") < b("011"));
        assert!(b("0101") < b("011"));
        assert!(b("01") < b("0101"));
        assert!(b("001") < b("01"));
        assert!(BitString::empty() < b("0"));
    }

    #[test]
    fn figure6_initial_three_children() {
        // Figure 6: the root's three children are 01, 0101, 011.
        let mut stats = SchemeStats::default();
        let codes = bulk_binary(3, &mut stats);
        assert_eq!(
            codes.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
            ["01", "0101", "011"]
        );
        assert!(stats.divisions > 0, "bulk labelling divides");
        assert!(stats.recursive_calls > 0, "bulk labelling recurses");
    }

    #[test]
    fn figure6_insertion_rules() {
        // before first child 01  → 001   (last 1 changed to 01)
        assert_eq!(b("01").before().to_string(), "001");
        // after last child 01    → 011   (extra 1 concatenated)
        assert_eq!(b("01").after().to_string(), "011");
        // between 01 and 011     → 0101  (AssignMiddleSelfLabel)
        assert_eq!(middle(&b("01"), &b("011")).to_string(), "0101");
    }

    #[test]
    fn middle_is_strictly_between_and_ends_in_one() {
        let cases = [
            ("01", "011"),
            ("01", "1"),
            ("0101", "011"),
            ("1", "11"),
            ("011", "1"),
            ("00001", "0001"),
        ];
        for (l, r) in cases {
            let (l, r) = (b(l), b(r));
            let m = middle(&l, &r);
            assert!(l < m, "{l} < {m}");
            assert!(m < r, "{m} < {r}");
            assert_eq!(m.last(), Some(1), "{m} ends in 1");
        }
    }

    #[test]
    fn between_handles_open_bounds() {
        assert_eq!(between(None, None).to_string(), "01");
        assert_eq!(between(Some(&b("01")), None).to_string(), "011");
        assert_eq!(between(None, Some(&b("01"))).to_string(), "001");
    }

    #[test]
    fn bulk_is_sorted_unique_and_ends_in_one() {
        let mut stats = SchemeStats::default();
        for n in 0..40 {
            let codes = bulk_binary(n, &mut stats);
            assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                assert!(w[0] < w[1], "sorted: {} < {}", w[0], w[1]);
            }
            for c in &codes {
                assert_eq!(c.last(), Some(1));
            }
        }
    }

    #[test]
    fn repeated_before_first_grows_one_bit_per_insert() {
        // §3.1.2: "repeated insertions before the first sibling node ...
        // has a bit-growth rate of 1 for each insertion".
        let mut first = b("01");
        let mut prev_len = first.bit_len();
        for _ in 0..20 {
            let new = first.before();
            assert!(new < first);
            assert_eq!(new.bit_len(), prev_len + 1);
            prev_len = new.bit_len();
            first = new;
        }
    }

    #[test]
    fn prefix_relation() {
        assert!(b("01").is_strict_prefix_of(&b("011")));
        assert!(!b("011").is_strict_prefix_of(&b("01")));
        assert!(!b("01").is_strict_prefix_of(&b("01")));
        assert!(BitString::empty().is_strict_prefix_of(&b("0")));
    }

    #[test]
    #[should_panic(expected = "end in 1")]
    fn before_requires_trailing_one() {
        b("10").before();
    }

    #[test]
    fn display_empty_is_epsilon() {
        assert_eq!(BitString::empty().to_string(), "ε");
    }

    #[test]
    fn display_is_byte_identical_across_the_inline_spill_boundary() {
        // Golden renderings pinned across the SmallBuf storage swap: a
        // 24-bit code stays inline, a 25-bit one spills; both must print
        // exactly their construction string.
        let inline24 = "010101010101010101010101";
        let spilled25 = "0101010101010101010101011";
        assert_eq!(b(inline24).to_string(), inline24);
        assert_eq!(b(spilled25).to_string(), spilled25);
        assert_eq!(format!("{:?}", b("011")), "b\"011\"");
        // round-trip through the insertion algebra at the boundary
        let grown = b(inline24).after();
        assert_eq!(grown.to_string(), format!("{inline24}1"));
        assert_eq!(grown.bit_len(), 25);
    }
}
