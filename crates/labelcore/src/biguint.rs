//! A small arbitrary-precision unsigned integer, just large enough for the
//! prime-number labelling scheme (Wu, Lee & Hsu, ICDE 2004 — \[25\] in the
//! paper, listed in §6 as future evaluation work).
//!
//! Prime labels are products of primes along the root path, so they
//! outgrow `u128` within a few tree levels; the scheme's ancestor test is
//! divisibility, so we need multiplication, division/remainder and
//! comparison. Implemented as base-2³² limbs, little-endian; correctness
//! over speed — label algebra dominates neither the benchmarks nor the
//! checkers.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian 32-bit limbs,
/// no leading zero limbs; zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint::default()
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// From a 64-bit value.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = Vec::new();
        if v != 0 {
            limbs.push(v as u32);
            if v >> 32 != 0 {
                limbs.push((v >> 32) as u32);
            }
        }
        BigUint { limbs }
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Bit length (0 for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * 32 + (32 - u64::from(top.leading_zeros()))
            }
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self * small`.
    pub fn mul_small(&self, small: u64) -> BigUint {
        if small == 0 || self.is_zero() {
            return BigUint::zero();
        }
        // multiply by the low and high 32-bit halves
        let lo = small as u32;
        let hi = (small >> 32) as u32;
        let mut out = self.mul_u32(lo);
        if hi != 0 {
            let mut shifted = self.mul_u32(hi);
            shifted.shl_limbs(1);
            out = out.add(&shifted);
        }
        out
    }

    fn mul_u32(&self, m: u32) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u64 = 0;
        for &l in &self.limbs {
            let prod = u64::from(l) * u64::from(m) + carry;
            limbs.push(prod as u32);
            carry = prod >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    fn shl_limbs(&mut self, n: usize) {
        if self.is_zero() {
            return;
        }
        let mut limbs = vec![0u32; n];
        limbs.extend_from_slice(&self.limbs);
        self.limbs = limbs;
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = (&self.limbs, &other.limbs);
        let mut limbs = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry: u64 = 0;
        for i in 0..a.len().max(b.len()) {
            let x = u64::from(a.get(i).copied().unwrap_or(0));
            let y = u64::from(b.get(i).copied().unwrap_or(0));
            let s = x + y + carry;
            limbs.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// `self - other`; `None` if it would underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let x = i64::from(self.limbs[i]);
            let y = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut out = BigUint { limbs };
        out.normalize();
        Some(out)
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u64::from(limbs[i + j]) + u64::from(a) * u64::from(b) + carry;
                limbs[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(limbs[k]) + carry;
                limbs[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Shift left by `bits`.
    pub fn shl(&self, bits: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 32) as usize;
        let bit_shift = (bits % 32) as u32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = (u64::from(l) >> (32 - bit_shift)) as u32;
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Test bit `i` (0 = least significant).
    fn bit(&self, i: u64) -> bool {
        let limb = (i / 32) as usize;
        let off = (i % 32) as u32;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Schoolbook binary long division: `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let n = self.bit_len();
        let mut quotient_bits = vec![false; n as usize];
        let mut rem = BigUint::zero();
        for i in (0..n).rev() {
            // rem = rem*2 + bit_i(self)
            rem = rem.shl(1);
            if self.bit(i) {
                rem = rem.add(&BigUint::one());
            }
            if let Some(r) = rem.checked_sub(divisor) {
                rem = r;
                quotient_bits[i as usize] = true;
            }
        }
        // assemble quotient
        let mut q = BigUint::zero();
        for (i, &b) in quotient_bits.iter().enumerate() {
            if b {
                q = q.add(&BigUint::one().shl(i as u64));
            }
        }
        (q, rem)
    }

    /// Is `self` an exact multiple of `other`? (The prime scheme's
    /// ancestor test.)
    pub fn is_multiple_of(&self, other: &BigUint) -> bool {
        if other.is_zero() {
            return self.is_zero();
        }
        self.divrem(other).1.is_zero()
    }

    /// `self % m` as u64, for moduli that fit in u64 (used by the prime
    /// scheme's simultaneous-congruence order numbers).
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "modulo zero");
        let mut rem: u128 = 0;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 32) | u128::from(l)) % u128::from(m);
        }
        rem as u64
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^9.
        let chunk = BigUint::from_u64(1_000_000_000);
        let mut v = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !v.is_zero() {
            let (q, r) = v.divrem(&chunk);
            parts.push(r.rem_u64(1_000_000_000));
            v = q;
        }
        let mut out = String::new();
        for (i, p) in parts.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&p.to_string());
            } else {
                out.push_str(&format!("{p:09}"));
            }
        }
        f.write_str(&out)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_round_trips_small_values() {
        for v in [0u64, 1, 2, 1000, u32::MAX as u64, u64::MAX] {
            let b = BigUint::from_u64(v);
            assert_eq!(b.rem_u64(u64::MAX), v % u64::MAX);
        }
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(7);
        let c = BigUint::from_u64(u64::MAX).mul_small(3);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(BigUint::zero() < a);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(12345);
        let s = a.add(&b);
        assert_eq!(s.checked_sub(&b).unwrap(), a);
        assert_eq!(s.checked_sub(&a).unwrap(), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_matches_u128_for_small_operands() {
        let cases = [
            (0u64, 5u64),
            (3, 7),
            (u32::MAX as u64, u32::MAX as u64),
            (123456789, 987654321),
        ];
        for (x, y) in cases {
            let prod = BigUint::from_u64(x).mul(&BigUint::from_u64(y));
            let expect = u128::from(x) * u128::from(y);
            // verify via decimal rendering
            assert_eq!(prod.to_string(), expect.to_string());
        }
    }

    #[test]
    fn divrem_matches_u128() {
        let cases = [
            (1000u64, 7u64),
            (u64::MAX, 3),
            (123456789012345678, 97),
            (5, 10),
        ];
        for (x, y) in cases {
            let (q, r) = BigUint::from_u64(x).divrem(&BigUint::from_u64(y));
            assert_eq!(q.to_string(), (x / y).to_string(), "{x}/{y}");
            assert_eq!(r.to_string(), (x % y).to_string(), "{x}%{y}");
        }
    }

    #[test]
    fn big_product_divisibility() {
        // product of the first primes is divisible by every prefix product
        let primes = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
        ];
        let mut acc = BigUint::one();
        let mut prefixes = vec![acc.clone()];
        for &p in &primes {
            acc = acc.mul_small(p);
            prefixes.push(acc.clone());
        }
        assert!(acc.bit_len() > 64, "outgrew u64 as intended");
        for pre in &prefixes {
            assert!(acc.is_multiple_of(pre));
        }
        // and not divisible by a foreign prime
        assert!(!acc.is_multiple_of(&BigUint::from_u64(67)));
    }

    #[test]
    fn rem_u64_matches_direct() {
        let v = BigUint::from_u64(u64::MAX).mul_small(u64::MAX);
        // (2^64-1)^2 mod 1e9+7
        let m = 1_000_000_007u64;
        let direct = {
            let x = u128::from(u64::MAX) % u128::from(m);
            (x * x % u128::from(m)) as u64
        };
        assert_eq!(v.rem_u64(m), direct);
    }

    #[test]
    fn display_large_decimal() {
        let v = BigUint::from_u64(10).mul_small(u64::MAX);
        assert_eq!(v.to_string(), (u128::from(u64::MAX) * 10).to_string());
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn shl_and_bits() {
        let v = BigUint::one().shl(100);
        assert_eq!(v.bit_len(), 101);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert!(!v.bit(101));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        BigUint::one().divrem(&BigUint::zero());
    }
}
