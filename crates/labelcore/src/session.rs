//! Object-safe scheme sessions: [`DynScheme`] erases the heterogeneous
//! `LabelingScheme::Label` types behind a NodeId-addressed surface.
//!
//! A *session* bundles a scheme instance with the [`Labeling`] it
//! maintains, so callers that don't care about the concrete label type —
//! the registry (`xupd_schemes::registry`), the parallel checker
//! battery, the benches — can hold `Box<dyn DynScheme>` values and drive
//! the full protocol (bulk labelling, per-update labelling, relation
//! queries, size accounting) through dynamic dispatch. The typed
//! [`LabelingScheme`] API stays the implementation substrate; the
//! framework's driver and verifier are written once against this trait
//! and re-exported with typed signatures via [`SessionMut`].
//!
//! [`SchemeSession`] owns its scheme + labelling (what registry
//! factories return); [`SessionMut`] borrows both (what the typed
//! wrappers construct around caller-owned state). Both get their
//! [`DynScheme`] implementation from one blanket impl over
//! [`SessionParts`], so the two can never drift.

use crate::label::{Label, Labeling};
use crate::properties::SchemeDescriptor;
use crate::scheme::{InsertReport, LabelingScheme, Relation};
use crate::stats::SchemeStats;
use std::cmp::Ordering;
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Object-safe view of a labelling scheme *session* (scheme + its live
/// [`Labeling`]). Node-addressed where [`LabelingScheme`] is
/// label-addressed; every relation/order/level answer still comes from
/// the scheme's label algebra alone — the labelling only resolves
/// `NodeId → label`.
pub trait DynScheme {
    /// Scheme name as in Figure 7.
    fn name(&self) -> &'static str;

    /// Static self-description including the declared Figure 7 row.
    fn descriptor(&self) -> SchemeDescriptor;

    /// Bulk-label every live node of `tree`, replacing the session's
    /// labelling.
    fn label_tree(&mut self, tree: &XmlTree) -> Result<(), TreeError>;

    /// Label `node`, which has just been attached to `tree` (see
    /// [`LabelingScheme::on_insert`]).
    fn on_insert(&mut self, tree: &XmlTree, node: NodeId) -> Result<InsertReport, TreeError>;

    /// Drop labels for `node`'s still-attached subtree (see
    /// [`LabelingScheme::on_delete`]).
    fn on_delete(&mut self, tree: &XmlTree, node: NodeId);

    /// Document-order comparison of two labelled nodes, from their
    /// labels alone.
    fn cmp_nodes(&self, a: NodeId, b: NodeId) -> Result<Ordering, TreeError>;

    /// `rel(a, b)` from the two nodes' labels alone; `Ok(None)` when the
    /// scheme cannot answer that relation from labels.
    fn relation_nodes(
        &self,
        rel: Relation,
        a: NodeId,
        b: NodeId,
    ) -> Result<Option<bool>, TreeError>;

    /// The node's depth from its label alone (`Ok(None)` when the scheme
    /// does not encode level).
    fn level_node(&self, a: NodeId) -> Result<Option<u32>, TreeError>;

    /// Instrumentation counters accumulated so far.
    fn stats(&self) -> &SchemeStats;

    /// Reset instrumentation counters.
    fn reset_stats(&mut self);

    /// A fresh session over the scheme's tightened-budget audit variant
    /// (see [`LabelingScheme::overflow_audit_instance`]).
    fn overflow_audit_instance(&self) -> Option<Box<dyn DynScheme>>;

    /// Number of labelled nodes.
    fn labeled_len(&self) -> usize;

    /// Total label storage in bits.
    fn total_bits(&self) -> u64;

    /// Mean label size in bits (0.0 when empty).
    fn mean_bits(&self) -> f64;

    /// Largest label size in bits (0 when empty).
    fn max_bits(&self) -> u64;

    /// Two live nodes share a label (the LSDX failure mode).
    fn has_duplicate_labels(&self) -> bool;

    /// Storage footprint of one node's label.
    fn label_bits(&self, node: NodeId) -> Result<u64, TreeError>;

    /// Human-readable rendering of one node's label.
    fn label_display(&self, node: NodeId) -> Result<String, TreeError>;

    /// Every `(node index, label rendering)` pair, in id order — the
    /// observable the differential suites compare across drivers.
    fn labels_display(&self) -> Vec<(usize, String)>;

    /// Whether footprint-disjoint edits commute byte-for-byte under this
    /// scheme (see [`LabelingScheme::order_independent`]). The batch
    /// analyzer consults this before consuming reorder/parallel
    /// certificates; `false` forces original-order application.
    fn order_independent(&self) -> bool;

    /// Whether insert-then-delete of a scratch subtree leaves zero
    /// label residue (see [`LabelingScheme::cancellation_neutral`]).
    /// Consulted together with [`DynScheme::order_independent`] before
    /// the optimizer cancels statically-nil edit groups.
    fn cancellation_neutral(&self) -> bool;

    /// Snapshot the session's full state (scheme internals + labelling)
    /// as an opaque token. Paired with [`DynScheme::restore_state`], this
    /// is what gives batch application its all-or-nothing semantics: a
    /// snapshot taken before the batch restores the labelling *and* any
    /// scheme-internal allocator state byte-for-byte, which an undo-log
    /// replay could not (relabelling schemes would re-derive different
    /// labels).
    fn save_state(&self) -> Box<dyn std::any::Any>;

    /// Restore a snapshot produced by [`DynScheme::save_state`] on the
    /// same session type. Returns `false` (leaving the session untouched)
    /// when the token came from a different concrete session.
    fn restore_state(&mut self, state: Box<dyn std::any::Any>) -> bool;
}

/// Field access powering the blanket [`DynScheme`] impl. Implemented by
/// the owning [`SchemeSession`] and the borrowing [`SessionMut`]; not
/// intended for implementation outside this module.
pub trait SessionParts {
    /// The concrete scheme type.
    type Scheme: LabelingScheme;

    /// The scheme instance.
    fn scheme(&self) -> &Self::Scheme;
    /// The scheme instance, mutably.
    fn scheme_mut(&mut self) -> &mut Self::Scheme;
    /// The session's labelling.
    fn labeling(&self) -> &Labeling<<Self::Scheme as LabelingScheme>::Label>;
    /// The session's labelling, mutably.
    fn labeling_mut(&mut self) -> &mut Labeling<<Self::Scheme as LabelingScheme>::Label>;
    /// Replace the session's labelling wholesale (bulk labelling).
    fn replace_labeling(&mut self, labeling: Labeling<<Self::Scheme as LabelingScheme>::Label>);
}

/// An owning session: a scheme plus the labelling it maintains. What
/// the scheme registry's factories hand out.
#[derive(Debug, Clone)]
pub struct SchemeSession<S: LabelingScheme> {
    scheme: S,
    labeling: Labeling<S::Label>,
}

impl<S: LabelingScheme> SchemeSession<S> {
    /// A session with an empty labelling; call
    /// [`DynScheme::label_tree`] to populate it.
    pub fn new(scheme: S) -> Self {
        SchemeSession {
            scheme,
            labeling: Labeling::new(),
        }
    }

    /// Adopt an existing scheme + labelling pair.
    pub fn from_parts(scheme: S, labeling: Labeling<S::Label>) -> Self {
        SchemeSession { scheme, labeling }
    }

    /// Split back into the typed pair.
    pub fn into_parts(self) -> (S, Labeling<S::Label>) {
        (self.scheme, self.labeling)
    }

    /// The typed labelling (for callers that know `S`).
    pub fn typed_labeling(&self) -> &Labeling<S::Label> {
        &self.labeling
    }

    /// The typed scheme (for callers that know `S`).
    pub fn typed_scheme(&self) -> &S {
        &self.scheme
    }
}

impl<S: LabelingScheme> SessionParts for SchemeSession<S> {
    type Scheme = S;

    fn scheme(&self) -> &S {
        &self.scheme
    }
    fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }
    fn labeling(&self) -> &Labeling<S::Label> {
        &self.labeling
    }
    fn labeling_mut(&mut self) -> &mut Labeling<S::Label> {
        &mut self.labeling
    }
    fn replace_labeling(&mut self, labeling: Labeling<S::Label>) {
        self.labeling = labeling;
    }
}

/// A borrowing session over caller-owned scheme + labelling — the
/// adapter the typed `run_script`/`verify` wrappers use to reach the
/// dyn-dispatch implementations without giving up ownership.
#[derive(Debug)]
pub struct SessionMut<'a, S: LabelingScheme> {
    scheme: &'a mut S,
    labeling: &'a mut Labeling<S::Label>,
}

impl<'a, S: LabelingScheme> SessionMut<'a, S> {
    /// Borrow `scheme` and `labeling` as one session.
    pub fn new(scheme: &'a mut S, labeling: &'a mut Labeling<S::Label>) -> Self {
        SessionMut { scheme, labeling }
    }
}

impl<S: LabelingScheme> SessionParts for SessionMut<'_, S> {
    type Scheme = S;

    fn scheme(&self) -> &S {
        self.scheme
    }
    fn scheme_mut(&mut self) -> &mut S {
        self.scheme
    }
    fn labeling(&self) -> &Labeling<S::Label> {
        self.labeling
    }
    fn labeling_mut(&mut self) -> &mut Labeling<S::Label> {
        self.labeling
    }
    fn replace_labeling(&mut self, labeling: Labeling<S::Label>) {
        *self.labeling = labeling;
    }
}

impl<T: SessionParts> DynScheme for T
where
    T::Scheme: Clone + 'static,
{
    fn name(&self) -> &'static str {
        self.scheme().name()
    }

    fn descriptor(&self) -> SchemeDescriptor {
        self.scheme().descriptor()
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<(), TreeError> {
        let labeling = self.scheme_mut().label_tree(tree)?;
        self.replace_labeling(labeling);
        Ok(())
    }

    fn on_insert(&mut self, tree: &XmlTree, node: NodeId) -> Result<InsertReport, TreeError> {
        // Split-borrow through a single &mut self: take the labelling
        // out, run the scheme against it, put it back.
        let mut labeling = std::mem::take(self.labeling_mut());
        let report = self.scheme_mut().on_insert(tree, &mut labeling, node);
        self.replace_labeling(labeling);
        report
    }

    fn on_delete(&mut self, tree: &XmlTree, node: NodeId) {
        let mut labeling = std::mem::take(self.labeling_mut());
        self.scheme_mut().on_delete(tree, &mut labeling, node);
        self.replace_labeling(labeling);
    }

    fn cmp_nodes(&self, a: NodeId, b: NodeId) -> Result<Ordering, TreeError> {
        let la = self.labeling().req(a)?;
        let lb = self.labeling().req(b)?;
        Ok(self.scheme().cmp_doc(la, lb))
    }

    fn relation_nodes(
        &self,
        rel: Relation,
        a: NodeId,
        b: NodeId,
    ) -> Result<Option<bool>, TreeError> {
        let la = self.labeling().req(a)?;
        let lb = self.labeling().req(b)?;
        Ok(self.scheme().relation(rel, la, lb))
    }

    fn level_node(&self, a: NodeId) -> Result<Option<u32>, TreeError> {
        Ok(self.scheme().level(self.labeling().req(a)?))
    }

    fn stats(&self) -> &SchemeStats {
        self.scheme().stats()
    }

    fn reset_stats(&mut self) {
        self.scheme_mut().reset_stats();
    }

    fn overflow_audit_instance(&self) -> Option<Box<dyn DynScheme>> {
        self.scheme()
            .overflow_audit_instance()
            .map(|s| Box::new(SchemeSession::new(s)) as Box<dyn DynScheme>)
    }

    fn labeled_len(&self) -> usize {
        self.labeling().len()
    }

    fn total_bits(&self) -> u64 {
        self.labeling().total_bits()
    }

    fn mean_bits(&self) -> f64 {
        self.labeling().mean_bits()
    }

    fn max_bits(&self) -> u64 {
        self.labeling().max_bits()
    }

    fn has_duplicate_labels(&self) -> bool {
        self.labeling().find_duplicate().is_some()
    }

    fn label_bits(&self, node: NodeId) -> Result<u64, TreeError> {
        Ok(self.labeling().req(node)?.size_bits())
    }

    fn label_display(&self, node: NodeId) -> Result<String, TreeError> {
        Ok(self.labeling().req(node)?.display())
    }

    fn labels_display(&self) -> Vec<(usize, String)> {
        self.labeling()
            .iter()
            .map(|(id, l)| (id.index(), l.display()))
            .collect()
    }

    fn order_independent(&self) -> bool {
        self.scheme().order_independent()
    }

    fn cancellation_neutral(&self) -> bool {
        self.scheme().cancellation_neutral()
    }

    fn save_state(&self) -> Box<dyn std::any::Any> {
        Box::new((self.scheme().clone(), self.labeling().clone()))
    }

    fn restore_state(&mut self, state: Box<dyn std::any::Any>) -> bool {
        type Snap<S> = (S, Labeling<<S as LabelingScheme>::Label>);
        match state.downcast::<Snap<T::Scheme>>() {
            Ok(snap) => {
                let (scheme, labeling) = *snap;
                *self.scheme_mut() = scheme;
                self.replace_labeling(labeling);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::NodeKind;

    // The Midpoint test scheme from `crate::scheme::tests` is private;
    // a tiny preorder-position scheme suffices to exercise the session
    // plumbing end to end.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Seq(u64);

    impl Label for Seq {
        fn size_bits(&self) -> u64 {
            64
        }
        fn display(&self) -> String {
            format!("{}", self.0)
        }
    }

    #[derive(Default, Clone)]
    struct SeqScheme {
        stats: SchemeStats,
        next: u64,
    }

    impl LabelingScheme for SeqScheme {
        type Label = Seq;

        fn name(&self) -> &'static str {
            "Seq(test)"
        }

        fn descriptor(&self) -> SchemeDescriptor {
            use crate::properties::{Compliance, EncodingRep, OrderKind};
            SchemeDescriptor {
                name: "Seq(test)",
                citation: "[test]",
                order: OrderKind::Global,
                encoding: EncodingRep::Fixed,
                declared: [Compliance::None; 8],
                in_figure7: false,
            }
        }

        fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<Seq>, TreeError> {
            let mut l = Labeling::with_capacity_for(tree);
            // widely spaced so single-node inserts can squeeze between
            for (i, id) in tree.preorder().enumerate() {
                l.set(id, Seq(i as u64 * 1000));
                self.next = self.next.max(i as u64 * 1000 + 1000);
            }
            Ok(l)
        }

        fn on_insert(
            &mut self,
            _tree: &XmlTree,
            labeling: &mut Labeling<Seq>,
            node: NodeId,
        ) -> Result<InsertReport, TreeError> {
            labeling.set(node, Seq(self.next));
            self.next += 1000;
            Ok(InsertReport::clean())
        }

        fn cmp_doc(&self, a: &Seq, b: &Seq) -> Ordering {
            a.cmp(b)
        }

        fn relation(&self, _rel: Relation, _a: &Seq, _b: &Seq) -> Option<bool> {
            None
        }

        fn level(&self, _a: &Seq) -> Option<u32> {
            None
        }

        fn stats(&self) -> &SchemeStats {
            &self.stats
        }

        fn reset_stats(&mut self) {
            self.stats.reset();
        }
    }

    fn two_node_tree() -> (XmlTree, NodeId) {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let a = tree.create(NodeKind::element("a"));
        tree.append_child(r, a).unwrap();
        (tree, a)
    }

    #[test]
    fn owning_session_round_trip() {
        let (mut tree, a) = two_node_tree();
        let mut session: Box<dyn DynScheme> = Box::new(SchemeSession::new(SeqScheme::default()));
        session.label_tree(&tree).unwrap();
        assert_eq!(session.labeled_len(), 2);
        assert_eq!(session.name(), "Seq(test)");
        assert!(!session.has_duplicate_labels());
        assert_eq!(session.cmp_nodes(tree.root(), a).unwrap(), Ordering::Less);
        assert_eq!(
            session
                .relation_nodes(Relation::ParentChild, tree.root(), a)
                .unwrap(),
            None
        );
        assert_eq!(session.level_node(a).unwrap(), None);

        let b = tree.create(NodeKind::element("b"));
        tree.append_child(a, b).unwrap();
        let report = session.on_insert(&tree, b).unwrap();
        assert!(report.relabeled.is_empty());
        assert_eq!(session.labeled_len(), 3);

        session.on_delete(&tree, a);
        tree.remove_subtree(a).unwrap();
        assert_eq!(session.labeled_len(), 1);
        assert_eq!(session.labels_display(), vec![(0, "0".to_string())]);
        assert_eq!(session.label_bits(tree.root()).unwrap(), 64);
        assert_eq!(session.max_bits(), 64);
        assert!(session.overflow_audit_instance().is_none());
    }

    #[test]
    fn borrowing_session_mutates_caller_state() {
        let (mut tree, a) = two_node_tree();
        let mut scheme = SeqScheme::default();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(a, b).unwrap();
        {
            let mut session = SessionMut::new(&mut scheme, &mut labeling);
            let dyn_session: &mut dyn DynScheme = &mut session;
            dyn_session.on_insert(&tree, b).unwrap();
        }
        // the caller-owned labelling saw the insert
        assert_eq!(labeling.len(), 3);
        assert!(labeling.req(b).is_ok());
    }

    #[test]
    fn save_restore_round_trips_scheme_and_labeling() {
        let (mut tree, a) = two_node_tree();
        let mut session: Box<dyn DynScheme> = Box::new(SchemeSession::new(SeqScheme::default()));
        session.label_tree(&tree).unwrap();
        let snap = session.save_state();
        let before = session.labels_display();

        let b = tree.create(NodeKind::element("b"));
        tree.append_child(a, b).unwrap();
        session.on_insert(&tree, b).unwrap();
        assert_ne!(session.labels_display(), before);

        assert!(session.restore_state(snap), "token matches session type");
        assert_eq!(session.labels_display(), before);
        // scheme internals restored too: re-inserting hands out the same
        // counter value the pre-snapshot state would have
        let report = session.on_insert(&tree, b).unwrap();
        assert!(report.relabeled.is_empty());
        assert_eq!(session.labeled_len(), 3);
    }

    #[test]
    fn restore_rejects_foreign_tokens() {
        let (tree, _) = two_node_tree();
        let mut session = SchemeSession::new(SeqScheme::default());
        DynScheme::label_tree(&mut session, &tree).unwrap();
        let before = session.labels_display();
        assert!(!session.restore_state(Box::new(42u32)), "foreign token");
        assert_eq!(session.labels_display(), before, "session untouched");
    }

    #[test]
    fn unlabeled_nodes_error_not_panic() {
        let (tree, a) = two_node_tree();
        let session = SchemeSession::new(SeqScheme::default());
        // no label_tree call: every node-addressed query errors
        let dyn_session: &dyn DynScheme = &session;
        assert!(matches!(
            dyn_session.cmp_nodes(tree.root(), a),
            Err(TreeError::Unlabeled(_))
        ));
        assert!(dyn_session.label_display(a).is_err());
    }
}
