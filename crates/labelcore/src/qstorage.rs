//! The QED **storage layer**: the actual §4 mechanism that defeats the
//! overflow problem.
//!
//! "The key mechanism employed to overcome the overflow problem is the
//! use of the separator 0 (2 bits) to separate the different codes
//! instead of explicitly storing the size of each variable code. The QED
//! codes may vary in size but the size of the separator 0 remains
//! constant. Each number in the QED code will always be represented by
//! two bits and due to the properties of the labelling scheme, the
//! numbers will never have the 2-bit value 00, which has been reserved
//! as the separator."
//!
//! This module implements that storage format bit-for-bit: a sequence of
//! QED codes packs into a bitstream of 2-bit symbols where `00`
//! terminates each code, and unpacking recovers the sequence without any
//! length fields — hence nothing that can overflow. For contrast,
//! [`pack_fixed_cells`] implements the CDBS-style fixed-cell layout whose
//! width *is* a length budget (and whose exhaustion is an error the
//! caller must handle by relabelling).

use crate::quaternary::QCode;
use crate::smallbuf::SmallBuf;

/// A packed bitstream of 2-bit symbols. Short streams (≤ 96 symbols)
/// stay inline in a [`SmallBuf`]; longer ones spill to the heap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolStream {
    bytes: SmallBuf,
    symbols: usize,
}

impl SymbolStream {
    fn push_symbol(&mut self, sym: u8) {
        debug_assert!(sym <= 3);
        let bit_off = (self.symbols * 2) % 8;
        if bit_off == 0 {
            self.bytes.push(sym << 6);
        } else if let Some(last) = self.bytes.last_mut() {
            // A non-zero bit offset means a partially filled byte exists.
            *last |= sym << (6 - bit_off);
        }
        self.symbols += 1;
    }

    fn symbol(&self, i: usize) -> u8 {
        let byte = self.bytes[(i * 2) / 8];
        let bit_off = (i * 2) % 8;
        (byte >> (6 - bit_off)) & 0b11
    }

    /// Total stored symbols (including separators).
    pub fn len_symbols(&self) -> usize {
        self.symbols
    }

    /// Total storage in bits.
    pub fn len_bits(&self) -> usize {
        self.symbols * 2
    }

    /// The raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Pack a sequence of QED codes with `00` separators — no length fields
/// anywhere, so no field can ever overflow.
pub fn pack_separated(codes: &[QCode]) -> SymbolStream {
    let mut out = SymbolStream::default();
    for code in codes {
        debug_assert!(code.is_valid_end(), "assigned codes end in 2 or 3");
        for &d in code.digits() {
            out.push_symbol(d);
        }
        out.push_symbol(0); // the separator
    }
    out
}

/// Unpack a `00`-separated stream back into codes. Returns `None` on a
/// malformed stream (trailing unterminated code).
pub fn unpack_separated(stream: &SymbolStream) -> Option<Vec<QCode>> {
    let mut out = Vec::new();
    let mut cur = QCode::empty();
    for i in 0..stream.len_symbols() {
        match stream.symbol(i) {
            0 => {
                if cur.is_empty() {
                    return None; // empty code: malformed
                }
                out.push(std::mem::take(&mut cur));
            }
            d => cur.push(d),
        }
    }
    if cur.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Error from the fixed-cell layout: a code exceeded the cell — the §4
/// overflow, as a storage-layer fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOverflow {
    /// Index of the offending code.
    pub index: usize,
    /// Its length in symbols.
    pub symbols: usize,
    /// The configured cell capacity in symbols.
    pub capacity: usize,
}

/// Pack codes into fixed-width cells of `cell_symbols` symbols each
/// (CDBS-style): short codes are padded with separators, and any code
/// longer than the cell **overflows** — the storage-layer counterpart of
/// [`crate::scheme::InsertReport::overflowed`].
pub fn pack_fixed_cells(
    codes: &[QCode],
    cell_symbols: usize,
) -> Result<SymbolStream, CellOverflow> {
    let mut out = SymbolStream::default();
    for (index, code) in codes.iter().enumerate() {
        if code.len() > cell_symbols {
            return Err(CellOverflow {
                index,
                symbols: code.len(),
                capacity: cell_symbols,
            });
        }
        for &d in code.digits() {
            out.push_symbol(d);
        }
        for _ in code.len()..cell_symbols {
            out.push_symbol(0);
        }
    }
    Ok(out)
}

/// Unpack a fixed-cell stream (cells of `cell_symbols`).
pub fn unpack_fixed_cells(stream: &SymbolStream, cell_symbols: usize) -> Option<Vec<QCode>> {
    if cell_symbols == 0 || stream.len_symbols() % cell_symbols != 0 {
        return None;
    }
    let mut out = Vec::new();
    for cell in 0..stream.len_symbols() / cell_symbols {
        let mut code = QCode::empty();
        for i in 0..cell_symbols {
            match stream.symbol(cell * cell_symbols + i) {
                0 => break,
                d => code.push(d),
            }
        }
        if code.is_empty() {
            return None;
        }
        out.push(code);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternary::bulk_qed;
    use crate::stats::SchemeStats;

    fn q(s: &str) -> QCode {
        QCode::from_digits(s)
    }

    #[test]
    fn separated_round_trip() {
        let codes = vec![q("2"), q("12"), q("3332"), q("213")];
        let stream = pack_separated(&codes);
        assert_eq!(unpack_separated(&stream).unwrap(), codes);
        // size = symbols + one separator per code, 2 bits each
        let symbols: usize = codes.iter().map(|c| c.len()).sum();
        assert_eq!(stream.len_bits(), (symbols + codes.len()) * 2);
    }

    #[test]
    fn separated_handles_arbitrarily_long_codes() {
        // The point of the mechanism: a 10 000-symbol code needs no
        // length field, so nothing overflows.
        let digits: String = std::iter::repeat("13").take(5000).collect::<String>() + "2";
        let long = q(&digits);
        let codes = vec![q("2"), long.clone(), q("3")];
        let stream = pack_separated(&codes);
        let back = unpack_separated(&stream).unwrap();
        assert_eq!(back[1], long);
    }

    #[test]
    fn separated_bulk_round_trip() {
        let mut stats = SchemeStats::default();
        let codes = bulk_qed(200, &mut stats);
        let stream = pack_separated(&codes);
        assert_eq!(unpack_separated(&stream).unwrap(), codes);
    }

    #[test]
    fn malformed_streams_rejected() {
        // trailing unterminated code
        let mut stream = SymbolStream::default();
        stream.push_symbol(2);
        assert_eq!(unpack_separated(&stream), None);
        // double separator (empty code)
        let mut stream = SymbolStream::default();
        stream.push_symbol(2);
        stream.push_symbol(0);
        stream.push_symbol(0);
        assert_eq!(unpack_separated(&stream), None);
    }

    #[test]
    fn fixed_cells_round_trip_until_overflow() {
        let codes = vec![q("2"), q("12"), q("332")];
        let stream = pack_fixed_cells(&codes, 4).unwrap();
        assert_eq!(stream.len_bits(), 3 * 4 * 2);
        assert_eq!(unpack_fixed_cells(&stream, 4).unwrap(), codes);

        // a code longer than the cell overflows — with precise blame
        let too_long = vec![q("2"), q("11132")];
        let err = pack_fixed_cells(&too_long, 4).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.symbols, 5);
        assert_eq!(err.capacity, 4);
    }

    #[test]
    fn fixed_cells_reject_bad_geometry() {
        let codes = vec![q("2")];
        let stream = pack_fixed_cells(&codes, 4).unwrap();
        assert_eq!(unpack_fixed_cells(&stream, 3), None, "wrong cell size");
        assert_eq!(unpack_fixed_cells(&stream, 0), None);
    }

    #[test]
    fn packed_bytes_golden_across_inline_spill_boundary() {
        // Golden byte layout pinned across the SmallBuf storage swap:
        // codes 2, 12 pack as symbols [2,0,1,2,0] → 10 00 01 10 | 00…
        let stream = pack_separated(&[q("2"), q("12")]);
        assert_eq!(stream.as_bytes(), &[0b10_00_01_10, 0b00_00_00_00]);
        assert_eq!(stream.len_symbols(), 5);
        // an inline stream (≤ 96 symbols / 24 bytes) and a spilled one
        // behave identically: same prefix bytes, same unpacking
        let short = bulk_qed(10, &mut SchemeStats::default());
        let long = bulk_qed(200, &mut SchemeStats::default());
        let (s1, s2) = (pack_separated(&short), pack_separated(&long));
        assert!(s2.len_bits() > 96 * 2, "long stream crossed the boundary");
        assert_eq!(
            s2.as_bytes()[..4],
            pack_separated(&long[..10.min(long.len())]).as_bytes()[..4],
            "packing is position-independent of later spill"
        );
        assert_eq!(unpack_separated(&s1).unwrap(), short);
        assert_eq!(unpack_separated(&s2).unwrap(), long);
    }

    #[test]
    fn separator_freedom_is_what_makes_this_work() {
        // Every digit of every valid code is 1..=3, so the 00 pattern
        // can only ever be a separator — the §4 invariant.
        let mut stats = SchemeStats::default();
        for code in bulk_qed(100, &mut stats) {
            assert!(code.digits().iter().all(|&d| d != 0));
        }
    }
}
