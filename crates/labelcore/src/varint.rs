//! A UTF-8-style variable-length integer codec.
//!
//! The Vector labelling scheme (\[27\] in the paper) claims to avoid the
//! overflow problem "by using UTF-8 encoding to process delimiters". The
//! paper (§4) points out that a single 4-byte UTF-8 unit tops out at 2²¹
//! values and questions how larger components are handled. This codec
//! reproduces both sides of that argument: values below 2²¹ use the real
//! UTF-8 length schedule (1–4 bytes), and larger values switch to an
//! *extension* schedule (continuation bytes carrying 7 bits each) whose
//! use is observable via [`exceeds_utf8`] — the framework's overflow
//! checker reports when a workload pushes Vector labels past the paper's
//! questioned boundary.

/// Number of bytes the UTF-8 length schedule needs for `v`, or `None` when
/// `v` exceeds the 4-byte UTF-8 payload capacity of 21 bits.
pub fn utf8_len(v: u64) -> Option<u32> {
    match v {
        0..=0x7F => Some(1),
        0x80..=0x7FF => Some(2),
        0x800..=0xFFFF => Some(3),
        0x1_0000..=0x1F_FFFF => Some(4),
        _ => None,
    }
}

/// Does `v` exceed what a single UTF-8 unit can carry (the 2²¹ boundary
/// the paper questions)?
pub fn exceeds_utf8(v: u64) -> bool {
    utf8_len(v).is_none()
}

/// Encoded size in bytes: the UTF-8 schedule below 2²¹, and a
/// 7-bits-per-byte continuation schedule above it.
pub fn encoded_len(v: u64) -> u32 {
    if let Some(n) = utf8_len(v) {
        return n;
    }
    // LEB128-style extension: ceil(bits/7) bytes.
    let bits = 64 - v.leading_zeros();
    bits.div_ceil(7)
}

/// Encode `v` with the extension schedule (LEB128) into a [`SmallBuf`]
/// (any u64 needs ≤ 10 bytes, so encoding alone never spills). Used by
/// the storage model; decodability is what matters for the
/// self-delimiting claim.
pub fn encode(v: u64, out: &mut crate::smallbuf::SmallBuf) {
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a value encoded by [`encode`], returning the value and the
/// number of bytes consumed; `None` on truncated input.
pub fn decode(input: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in input.iter().enumerate() {
        if i >= 10 {
            return None; // malformed: longer than any u64 encoding
        }
        v |= u64::from(b & 0x7F) << (7 * i as u32);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallbuf::SmallBuf;

    #[test]
    fn utf8_schedule_boundaries() {
        assert_eq!(utf8_len(0), Some(1));
        assert_eq!(utf8_len(0x7F), Some(1));
        assert_eq!(utf8_len(0x80), Some(2));
        assert_eq!(utf8_len(0x7FF), Some(2));
        assert_eq!(utf8_len(0x800), Some(3));
        assert_eq!(utf8_len(0xFFFF), Some(3));
        assert_eq!(utf8_len(0x1_0000), Some(4));
        assert_eq!(utf8_len(0x1F_FFFF), Some(4));
        assert_eq!(utf8_len(0x20_0000), None);
    }

    #[test]
    fn the_papers_two_to_twenty_one_question() {
        assert!(!exceeds_utf8((1 << 21) - 1));
        assert!(exceeds_utf8(1 << 21));
    }

    #[test]
    fn encoded_len_monotone_nondecreasing() {
        let mut prev = 0;
        for shift in 0..64 {
            let v = 1u64 << shift;
            let n = encoded_len(v);
            assert!(n >= prev, "len({v}) = {n} < {prev}");
            prev = n;
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            1 << 14,
            (1 << 21) - 1,
            1 << 21,
            u64::MAX,
        ] {
            let mut buf = SmallBuf::new();
            encode(v, &mut buf);
            let (back, used) = decode(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = SmallBuf::new();
        encode(u64::MAX, &mut buf);
        buf.pop();
        assert!(decode(&buf).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn decode_is_self_delimiting_in_a_stream() {
        let mut buf = SmallBuf::new();
        encode(5, &mut buf);
        encode(1 << 30, &mut buf);
        encode(0, &mut buf);
        let (a, n1) = decode(&buf).unwrap();
        let (b, n2) = decode(&buf[n1..]).unwrap();
        let (c, n3) = decode(&buf[n1 + n2..]).unwrap();
        assert_eq!((a, b, c), (5, 1 << 30, 0));
        assert_eq!(n1 + n2 + n3, buf.len());
    }
}
