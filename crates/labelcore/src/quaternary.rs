//! Quaternary QED codes (Li & Ling, CIKM 2005 — \[14\] in the paper) and the
//! code algebra shared by QED and CDQS.
//!
//! A QED code is a sequence over the symbols `1`, `2`, `3`; each symbol is
//! stored in two bits and the 2-bit pattern `00` (symbol `0`) is reserved
//! as the **separator**, which is how QED sidesteps the overflow problem:
//! code length is never stored in a fixed-width field, so no length field
//! can ever overflow (§4).
//!
//! Codes are compared lexicographically with prefix-smaller semantics and
//! obey one invariant: **every assigned code ends in `2` or `3`**. That is
//! what guarantees a strictly-between code exists for any two neighbours —
//! codes ending in `1` would create un-splittable gaps (there is no code
//! strictly between `x` and `x⧺1`).

use crate::smallbuf::SmallBuf;
use crate::stats::SchemeStats;
use std::fmt;

/// A quaternary code over `{1,2,3}`, lexicographically ordered
/// (prefix-smaller). Digits live inline (one byte each) up to the
/// [`SmallBuf`] capacity, so ordinary QED/CDQS codes never allocate.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QCode {
    digits: SmallBuf,
}

impl QCode {
    /// The empty code (used as the root's self-code in prefix
    /// application).
    pub fn empty() -> Self {
        QCode::default()
    }

    /// Build from an ASCII string over `1`/`2`/`3`, e.g. `"212"`.
    ///
    /// # Panics
    /// Panics on other characters.
    pub fn from_digits(s: &str) -> Self {
        let mut digits = SmallBuf::new();
        for c in s.chars() {
            digits.push(match c {
                '1' => 1,
                '2' => 2,
                '3' => 3,
                // lint:allow(R1): documented panic contract; inputs are compile-time constant digit strings
                _ => panic!("invalid quaternary digit {c:?}"),
            });
        }
        QCode { digits }
    }

    /// Number of quaternary symbols.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True for the empty code.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Storage size in bits under the QED model: two bits per symbol plus
    /// the two-bit `00` separator that delimits the code in storage.
    pub fn size_bits(&self) -> u64 {
        2 * self.digits.len() as u64 + 2
    }

    /// The code's digits.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }

    /// Is this a valid *assigned* QED code (non-empty, ends in 2 or 3)?
    pub fn is_valid_end(&self) -> bool {
        matches!(self.digits.last(), Some(2 | 3))
    }

    /// Is `self` a strict prefix of `other`?
    pub fn is_strict_prefix_of(&self, other: &QCode) -> bool {
        self.digits.len() < other.digits.len()
            && other.digits[..self.digits.len()] == self.digits[..]
    }

    pub(crate) fn push(&mut self, d: u8) {
        debug_assert!((1..=3).contains(&d));
        self.digits.push(d);
    }

    /// The smallest sensible first code.
    pub fn initial() -> Self {
        QCode::from_digits("2")
    }

    /// A code strictly **greater** than `self` with no upper bound
    /// (insert after the last sibling): trailing `2` becomes `3`;
    /// trailing `3` gains an appended `2`.
    pub fn successor(&self) -> QCode {
        let mut d = self.digits.clone();
        match d.last_mut() {
            Some(last) if *last == 2 => *last = 3,
            // Trailing 3, trailing 1 or empty: appending 2 is strictly
            // greater under prefix-smaller order and ends validly.
            _ => d.push(2),
        }
        QCode { digits: d }
    }

    /// A code strictly **smaller** than `self` with no lower bound
    /// (insert before the first sibling): trailing `3` becomes `2`;
    /// trailing `2` becomes `12`.
    /// Only meaningful for valid assigned codes (ending in `2` or `3`).
    pub fn predecessor(&self) -> QCode {
        let mut d = self.digits.clone();
        match d.last_mut() {
            Some(last) if *last == 3 => *last = 2,
            // Trailing 2 — the only other assigned-code ending: 2 → 12.
            _ => {
                d.pop();
                d.push(1);
                d.push(2);
            }
        }
        QCode { digits: d }
    }
}

impl fmt::Debug for QCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q\"{self}\"")
    }
}

impl fmt::Display for QCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.digits.is_empty() {
            return f.write_str("ε");
        }
        for &d in &self.digits {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A code strictly between `left` and `right` (`left < right`), ending in
/// `2` or `3`. This is the pairwise core of QED's
/// `GetOneThirdAndTwoThirdCode` and of every QED/CDQS insertion; because a
/// between-code always exists, QED-family schemes never relabel — the
/// *Persistent Labels* and *Overflow Problem* columns of Figure 7.
pub fn qbetween(left: &QCode, right: &QCode) -> QCode {
    debug_assert!(left < right, "qbetween requires left < right");
    let l = &left.digits;
    let r = &right.digits;
    let mut out = QCode::empty();
    let mut i = 0;
    loop {
        let a = l.get(i).copied();
        let b = r.get(i).copied();
        match (a, b) {
            (Some(x), Some(y)) if x == y => {
                out.push(x);
                i += 1;
            }
            (Some(x), Some(y)) => {
                debug_assert!(x < y, "left < right implies x < y at first difference");
                if y - x >= 2 {
                    // x=1, y=3: the symbol 2 fits strictly between.
                    out.push(2);
                    return out;
                }
                // y == x+1: keep x, then produce any code whose remainder
                // exceeds the rest of `left`.
                out.push(x);
                return append_greater_than(out, &l[i + 1..]);
            }
            (None, Some(y)) => {
                // `left` is a strict prefix of `right`.
                match y {
                    3 => {
                        out.push(2);
                        return out;
                    }
                    2 => {
                        out.push(1);
                        out.push(2);
                        return out;
                    }
                    _ => {
                        // y == 1: copy it and keep scanning right's suffix.
                        out.push(1);
                        i += 1;
                    }
                }
            }
            // right exhausted first (or both): impossible given left < right.
            (Some(_), None) | (None, None) => {
                // lint:allow(R1): unreachable under the left < right precondition asserted above
                unreachable!("left < right violated: right exhausted at position {i}")
            }
        }
    }
}

/// Extend `prefix` into a code strictly greater than `prefix ⧺ rest`,
/// ending in 2 or 3.
fn append_greater_than(mut prefix: QCode, rest: &[u8]) -> QCode {
    if rest.is_empty() {
        prefix.push(2);
        return prefix;
    }
    // `rest` is the tail of a valid assigned code, so it ends in 2 or 3;
    // a trailing 2 can be bumped to 3 in place, anything else (3) takes
    // the general route of extending the whole tail, which is strictly
    // greater under prefix-smaller order for any tail.
    match rest.last().copied() {
        Some(2) => {
            for &d in &rest[..rest.len() - 1] {
                prefix.push(d);
            }
            prefix.push(3);
        }
        _ => {
            for &d in rest {
                prefix.push(d);
            }
            prefix.push(2);
        }
    }
    prefix
}

/// General insertion interface with open bounds.
pub fn qinsert(left: Option<&QCode>, right: Option<&QCode>) -> QCode {
    match (left, right) {
        (None, None) => QCode::initial(),
        (Some(l), None) => l.successor(),
        (None, Some(r)) => r.predecessor(),
        (Some(l), Some(r)) => qbetween(l, r),
    }
}

/// The recursive QED bulk `Labelling` algorithm over `n` siblings, built
/// on `GetOneThirdAndTwoThirdCode`: codes for the (1/3)rd and (2/3)rd
/// positions are computed, then the three gaps are filled recursively.
/// The position arithmetic divides (counted) and the traversal is
/// recursive (counted) — QED's `N` entries in the *Division Comp.* and
/// *Recursion Alg.* columns of Figure 7.
pub fn bulk_qed(n: usize, stats: &mut SchemeStats) -> Vec<QCode> {
    // The empty code is never assigned (assigned codes end in 2 or 3), so
    // it doubles as the not-yet-filled sentinel; `fill_thirds` covers
    // every position of `[0, n)` exactly once.
    let mut codes: Vec<QCode> = vec![QCode::empty(); n];
    fill_thirds(&mut codes, 0, n, None, None, stats);
    debug_assert!(codes.iter().all(|c| c.is_valid_end()));
    codes
}

fn fill_thirds(
    codes: &mut [QCode],
    lo: usize,
    hi: usize,
    left: Option<QCode>,
    right: Option<QCode>,
    stats: &mut SchemeStats,
) {
    let count = hi - lo;
    if count == 0 {
        return;
    }
    if count == 1 {
        codes[lo] = qinsert(left.as_ref(), right.as_ref());
        return;
    }
    stats.recursive_calls += 1;
    stats.divisions += 2; // the (1/3)rd and (2/3)rd position computations
    let mut i1 = lo + count / 3;
    let mut i2 = lo + 2 * count / 3;
    if i1 == i2 {
        i2 = i1 + 1;
    }
    if i2 >= hi {
        i2 = hi - 1;
    }
    if i1 >= i2 {
        i1 = i2 - 1;
    }
    // GetOneThirdAndTwoThirdCode: two codes with
    // left < c1 < c2 < right.
    let c2 = qinsert(left.as_ref(), right.as_ref());
    let c1 = qinsert(left.as_ref(), Some(&c2));
    codes[i1] = c1.clone();
    codes[i2] = c2.clone();
    fill_thirds(codes, lo, i1, left, Some(c1.clone()), stats);
    fill_thirds(codes, i1 + 1, i2, Some(c1), Some(c2.clone()), stats);
    fill_thirds(codes, i2 + 1, hi, Some(c2), right, stats);
}

/// CDQS-style compact bulk assignment — this is what earns CDQS its `F`
/// in the *Compact Enc.* column while keeping the QED algebra (and hence
/// the `F`s in *Persistent*/*Overflow*).
///
/// Valid codes (ending in 2/3) of length ≤ L number `3^L − 1`, and a
/// short code interleaves freely with longer ones under prefix-smaller
/// lexicographic order. The minimal-size selection of `n` codes is
/// therefore: **every** valid code of length < L (generated by a
/// recursive trie walk — CDQS, like QED, is a recursive labelling
/// algorithm, its `N` in Figure 7's Recursion column) plus `n − (3^(L−1)
/// − 1)` evenly-spread codes of length exactly L (the spreading divides,
/// keeping CDQS's `N` in the Division column measurable), merged in
/// lexicographic order.
pub fn bulk_cdqs(n: usize, stats: &mut SchemeStats) -> Vec<QCode> {
    if n == 0 {
        return Vec::new();
    }
    // Smallest L with 3^L − 1 ≥ n.
    let mut len = 1usize;
    let mut below: u128 = 0; // codes strictly shorter than `len`: 3^(len-1) − 1
    let mut total: u128 = 2; // codes of length ≤ len: 3^len − 1
    while total < n as u128 {
        len += 1;
        below = total;
        total = total * 3 + 2;
    }
    let mut shorter = Vec::with_capacity(below as usize);
    if len > 1 {
        gen_codes_lex(&mut QCode::empty(), len - 1, &mut shorter, stats);
        debug_assert_eq!(shorter.len() as u128, below);
    }
    let need = n - shorter.len();
    let cap_l: u128 = 2 * 3u128.pow(len as u32 - 1);
    let mut extras = Vec::with_capacity(need);
    for j in 0..need {
        stats.divisions += 1;
        let rank = (j as u128 * cap_l) / need as u128;
        extras.push(code_of_rank(rank, len));
    }
    // Merge the two lexicographically sorted runs.
    let mut out = Vec::with_capacity(n);
    let (mut i, mut j) = (0, 0);
    while i < shorter.len() || j < extras.len() {
        let take_short = match (shorter.get(i), extras.get(j)) {
            (Some(a), Some(b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_short {
            out.push(shorter[i].clone());
            i += 1;
        } else {
            out.push(extras[j].clone());
            j += 1;
        }
    }
    out
}

/// Recursively walk the `{1,2,3}` code trie to `depth`, emitting valid
/// codes (those ending in 2 or 3) in lexicographic (prefix-smaller) order.
fn gen_codes_lex(prefix: &mut QCode, depth: usize, out: &mut Vec<QCode>, stats: &mut SchemeStats) {
    stats.recursive_calls += 1;
    for d in 1..=3u8 {
        prefix.push(d);
        if d >= 2 {
            out.push(prefix.clone());
        }
        if depth > 1 {
            gen_codes_lex(prefix, depth - 1, out, stats);
        }
        prefix.digits.pop();
    }
}

/// The `rank`-th (0-based) valid code of exactly `len` symbols, in
/// lexicographic order over codes of that fixed length.
fn code_of_rank(rank: u128, len: usize) -> QCode {
    // First len-1 digits range over {1,2,3} (base 3), last digit over
    // {2,3} (base 2); lexicographic order of the tuple equals ranked
    // mixed-radix order.
    let mut digits = SmallBuf::new();
    for _ in 0..len {
        digits.push(0);
    }
    let mut r = rank;
    // last digit
    let last = (r % 2) as u8 + 2;
    r /= 2;
    digits[len - 1] = last;
    for pos in (0..len - 1).rev() {
        digits[pos] = (r % 3) as u8 + 1;
        r /= 3;
    }
    debug_assert_eq!(r, 0, "rank within capacity");
    QCode { digits }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> QCode {
        QCode::from_digits(s)
    }

    #[test]
    fn lexicographic_prefix_smaller_order() {
        assert!(q("1") < q("2"));
        assert!(q("2") < q("22"));
        assert!(q("12") < q("2"));
        assert!(q("22") < q("3"));
        assert!(QCode::empty() < q("1"));
    }

    #[test]
    fn successor_rules() {
        assert_eq!(q("2").successor(), q("3"));
        assert_eq!(q("3").successor(), q("32"));
        assert_eq!(q("12").successor(), q("13"));
        assert_eq!(q("223").successor(), q("2232"));
    }

    #[test]
    fn predecessor_rules() {
        assert_eq!(q("3").predecessor(), q("2"));
        assert_eq!(q("2").predecessor(), q("12"));
        assert_eq!(q("12").predecessor(), q("112"));
        assert_eq!(q("23").predecessor(), q("22"));
    }

    #[test]
    fn qbetween_cases() {
        let cases = [
            ("2", "3"),
            ("2", "22"),
            ("12", "2"),
            ("2", "212"),
            ("112", "12"),
            ("13", "2"),
            ("222", "223"),
            ("2", "3333"),
            ("1112", "1113"),
        ];
        for (l, r) in cases {
            let (l, r) = (q(l), q(r));
            let m = qbetween(&l, &r);
            assert!(l < m, "{l} < {m}");
            assert!(m < r, "{m} < {r}");
            assert!(m.is_valid_end(), "{m} ends in 2/3");
        }
    }

    #[test]
    fn infinite_insertions_between_two_codes_never_fail() {
        // The headline QED claim (§4): an infinite number of codes can be
        // inserted between any two consecutive labels, so no relabelling
        // is ever needed. Drive 200 repeated left-skewed insertions.
        let mut lo = q("2");
        let hi = q("3");
        for _ in 0..200 {
            let mid = qbetween(&lo, &hi);
            assert!(lo < mid && mid < hi);
            lo = mid;
        }
        // and 200 right-skewed
        let lo2 = q("2");
        let mut hi2 = q("3");
        for _ in 0..200 {
            let mid = qbetween(&lo2, &hi2);
            assert!(lo2 < mid && mid < hi2);
            hi2 = mid;
        }
    }

    #[test]
    fn separator_freedom() {
        // Symbol 0 never appears: digits stay in 1..=3, so the 2-bit `00`
        // separator can never occur inside a stored code.
        let mut stats = SchemeStats::default();
        for c in bulk_qed(50, &mut stats) {
            assert!(c.digits().iter().all(|&d| (1..=3).contains(&d)));
        }
    }

    #[test]
    fn bulk_qed_sorted_unique_valid() {
        let mut stats = SchemeStats::default();
        for n in 0..60 {
            let codes = bulk_qed(n, &mut stats);
            assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                assert!(w[0] < w[1], "sorted: {} < {}", w[0], w[1]);
            }
            for c in &codes {
                assert!(c.is_valid_end(), "{c}");
            }
        }
        assert!(stats.divisions > 0);
        assert!(stats.recursive_calls > 0);
    }

    #[test]
    fn bulk_cdqs_sorted_unique_valid_and_compact() {
        let mut stats = SchemeStats::default();
        for n in [0usize, 1, 2, 3, 5, 10, 100, 1000] {
            let codes = bulk_cdqs(n, &mut stats);
            assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                assert!(w[0] < w[1], "sorted: {} < {}", w[0], w[1]);
            }
            for c in &codes {
                assert!(c.is_valid_end());
            }
            if n > 0 {
                // Compactness: no code exceeds the minimal feasible
                // maximum length L (3^L − 1 ≥ n).
                let max_len = {
                    let mut len = 1usize;
                    let mut total: u128 = 2;
                    while total < n as u128 {
                        len += 1;
                        total = total * 3 + 2;
                    }
                    len
                };
                assert!(codes.iter().all(|c| c.len() <= max_len), "n={n}");
                assert!(codes.iter().any(|c| c.len() == max_len), "n={n}");
            }
        }
    }

    #[test]
    fn cdqs_is_more_compact_than_qed_bulk_at_scale() {
        // The CDQS compactness advantage (VLDB Journal 2008) shows at
        // realistic fanouts; tiny sibling lists can go either way.
        let mut s1 = SchemeStats::default();
        let mut s2 = SchemeStats::default();
        for n in [100usize, 1000, 10000] {
            let qed: u64 = bulk_qed(n, &mut s1).iter().map(|c| c.size_bits()).sum();
            let cdqs: u64 = bulk_cdqs(n, &mut s2).iter().map(|c| c.size_bits()).sum();
            assert!(cdqs <= qed, "n={n}: cdqs {cdqs} bits vs qed {qed} bits");
        }
    }

    #[test]
    fn size_bits_includes_separator() {
        assert_eq!(q("2").size_bits(), 4);
        assert_eq!(q("123").size_bits(), 8);
    }

    #[test]
    fn qinsert_open_bounds() {
        assert_eq!(qinsert(None, None), q("2"));
        assert_eq!(qinsert(Some(&q("2")), None), q("3"));
        assert_eq!(qinsert(None, Some(&q("2"))), q("12"));
    }
}
