//! The paper's §5.1 vocabulary: the ten desirable properties, compliance
//! levels, document-order kinds and encoding representations.

use std::fmt;

/// The ten framework properties of §5.1 (the columns of Figure 7, after
/// the two descriptive columns).
///
/// The first two Figure 7 columns — *Document Order* and *Encoding
/// Representation* — are descriptive classifications rather than graded
/// properties; they are carried by [`SchemeDescriptor::order`] and
/// [`SchemeDescriptor::encoding`] and also appear here so the matrix can be
/// iterated uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Property {
    /// Labels are persistent: no deletion or insertion ever affects an
    /// existing node's label.
    PersistentLabels,
    /// Ancestor-descendant, parent-child and sibling relationships are
    /// evaluable from label values alone.
    XPathEvaluations,
    /// The node's nesting depth is derivable from its label alone.
    LevelEncoding,
    /// The scheme is not subject to the overflow problem of §4 — it never
    /// requires relabelling under any update scenario.
    OverflowFree,
    /// The scheme's order codes can be applied to containment, prefix and
    /// prime-number host schemes alike.
    Orthogonal,
    /// Compact storage with constrained growth under frequent random,
    /// uniform and skewed updates.
    CompactEncoding,
    /// No division computations during initial labelling or updates
    /// (division risks floating-point error on very large values).
    NoDivision,
    /// No recursive multi-pass algorithm for initial labelling (a
    /// recursive labelling algorithm requires multiple passes of the tree).
    NonRecursive,
}

impl Property {
    /// All graded properties, in the column order of Figure 7.
    pub const ALL: [Property; 8] = [
        Property::PersistentLabels,
        Property::XPathEvaluations,
        Property::LevelEncoding,
        Property::OverflowFree,
        Property::Orthogonal,
        Property::CompactEncoding,
        Property::NoDivision,
        Property::NonRecursive,
    ];

    /// The Figure 7 column header for this property.
    pub fn column_header(self) -> &'static str {
        match self {
            Property::PersistentLabels => "Persistent Labels",
            Property::XPathEvaluations => "XPath Eval.",
            Property::LevelEncoding => "Level Enc.",
            Property::OverflowFree => "Overflow Prob.",
            Property::Orthogonal => "Orthogonal",
            Property::CompactEncoding => "Compact Enc.",
            Property::NoDivision => "Division Comp.",
            Property::NonRecursive => "Recursion Alg.",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.column_header())
    }
}

/// Degree of compliance with a [`Property`], as used throughout Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Compliance {
    /// No compliance (N).
    None,
    /// Partial compliance (P).
    Partial,
    /// Full compliance (F).
    Full,
}

impl Compliance {
    /// The single-letter code used in the paper's matrix.
    pub fn letter(self) -> char {
        match self {
            Compliance::Full => 'F',
            Compliance::Partial => 'P',
            Compliance::None => 'N',
        }
    }

    /// Parse the paper's single-letter code.
    pub fn from_letter(c: char) -> Option<Self> {
        match c {
            'F' => Some(Compliance::Full),
            'P' => Some(Compliance::Partial),
            'N' => Some(Compliance::None),
            _ => None,
        }
    }

    /// Score used for the §5.2 "satisfies the greatest number of
    /// properties" ranking: F = 2, P = 1, N = 0.
    pub fn score(self) -> u32 {
        match self {
            Compliance::Full => 2,
            Compliance::Partial => 1,
            Compliance::None => 0,
        }
    }
}

impl fmt::Display for Compliance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// How a scheme captures document order (§3.1): globally, locally relative
/// to siblings, or a hybrid of both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// Absolute position in the document.
    Global,
    /// Position relative to siblings only.
    Local,
    /// Local identifiers composed along the root path (global order
    /// recoverable), the approach most dynamic schemes take.
    Hybrid,
}

impl fmt::Display for OrderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrderKind::Global => "Global",
            OrderKind::Local => "Local",
            OrderKind::Hybrid => "Hybrid",
        })
    }
}

/// Whether the scheme's storage representation is fixed- or
/// variable-length (the second Figure 7 column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingRep {
    /// Fixed-length storage per label.
    Fixed,
    /// Variable-length storage per label.
    Variable,
}

impl fmt::Display for EncodingRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EncodingRep::Fixed => "Fixed",
            EncodingRep::Variable => "Variable",
        })
    }
}

/// A scheme's static self-description: name, classification, and its
/// declared compliance row (what the scheme's authors claim; for the twelve
/// surveyed schemes this is exactly the paper's Figure 7 row).
#[derive(Debug, Clone)]
pub struct SchemeDescriptor {
    /// Scheme name as it appears in Figure 7 (e.g. `"QED"`).
    pub name: &'static str,
    /// Literature reference tag (e.g. `"\[14\]"`).
    pub citation: &'static str,
    /// Document-order approach.
    pub order: OrderKind,
    /// Storage representation.
    pub encoding: EncodingRep,
    /// Declared compliance per graded property, in [`Property::ALL`] order.
    pub declared: [Compliance; 8],
    /// Whether this scheme appears in the paper's Figure 7 (the §6
    /// extensions — Prime, DDE, CDBS, Com-D — do not).
    pub in_figure7: bool,
}

impl SchemeDescriptor {
    /// Declared compliance for one property.
    pub fn declared_for(&self, p: Property) -> Compliance {
        // `Property::ALL` lists the variants in declaration order, so the
        // discriminant is the column index.
        self.declared[p as usize]
    }

    /// Build the declared row from the paper's letter string, e.g.
    /// `"FFFFFNNN"` for QED.
    ///
    /// The descriptor tables are compile-time constants, so a malformed
    /// row is a programming error: it trips the debug assertion under
    /// `cargo test`, and in release builds any unparsable letter falls
    /// back to `N` (which the Figure 7 golden tests would then catch).
    pub fn declared_from_letters(s: &str) -> [Compliance; 8] {
        debug_assert!(
            s.len() == 8 && s.chars().all(|c| Compliance::from_letter(c).is_some()),
            "declared row must be exactly eight of F/P/N: {s:?}"
        );
        let mut out = [Compliance::None; 8];
        for (slot, c) in out.iter_mut().zip(s.chars()) {
            if let Some(grade) = Compliance::from_letter(c) {
                *slot = grade;
            }
        }
        out
    }

    /// The §5.2 ranking score: the sum of compliance scores across the
    /// eight graded properties.
    pub fn declared_score(&self) -> u32 {
        self.declared.iter().map(|c| c.score()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliance_letters_round_trip() {
        for c in [Compliance::Full, Compliance::Partial, Compliance::None] {
            assert_eq!(Compliance::from_letter(c.letter()), Some(c));
        }
        assert_eq!(Compliance::from_letter('X'), None);
    }

    #[test]
    fn compliance_ordering_none_lt_partial_lt_full() {
        assert!(Compliance::None < Compliance::Partial);
        assert!(Compliance::Partial < Compliance::Full);
    }

    #[test]
    fn declared_from_letters_parses_qed_row() {
        let d = SchemeDescriptor::declared_from_letters("FFFFFNNN");
        assert_eq!(d[0], Compliance::Full);
        assert_eq!(d[5], Compliance::None);
    }

    #[test]
    #[should_panic(expected = "eight of F/P/N")]
    fn declared_from_letters_rejects_bad_letter() {
        SchemeDescriptor::declared_from_letters("FFFFFNNX");
    }

    #[test]
    fn property_all_has_stable_order() {
        assert_eq!(Property::ALL.len(), 8);
        assert_eq!(Property::ALL[0], Property::PersistentLabels);
        assert_eq!(Property::ALL[7], Property::NonRecursive);
        // declared_for indexes by discriminant, which must match the
        // column order of ALL.
        for (i, p) in Property::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }

    #[test]
    fn descriptor_scoring() {
        let d = SchemeDescriptor {
            name: "X",
            citation: "[0]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            declared: SchemeDescriptor::declared_from_letters("FFFFFFNN"),
            in_figure7: true,
        };
        assert_eq!(d.declared_score(), 12);
        assert_eq!(d.declared_for(Property::NoDivision), Compliance::None);
        assert_eq!(d.declared_for(Property::PersistentLabels), Compliance::Full);
    }
}
