//! A dependency-free small-vector: inline storage for short sequences,
//! spilling to a heap `Vec` only past the inline capacity.
//!
//! The ancestry-labelling literature (Fraigniaud & Korman; Dahlgaard,
//! Knudsen & Rotbart — see PAPERS.md) establishes that dynamic-tree
//! labels are Θ(log n) bits, a few dozen bytes in practice, so the code
//! algebras in this crate ([`crate::BitString`], [`crate::QCode`], the
//! QED symbol stream, vector-code paths) overwhelmingly fit on the
//! stack. Backing them with [`SmallVec`] removes the per-label heap
//! allocation from every bulk-labelling and per-insert hot path while
//! keeping behaviour identical: all comparisons and hashing go through
//! [`SmallVec::as_slice`], so an inline value and a spilled value with
//! the same contents are indistinguishable.
//!
//! The workspace forbids `unsafe` (lint rule R5), so the representation
//! is a safe enum over a fixed array and a `Vec` — `T: Copy + Default`
//! makes the unused tail of the inline array representable without
//! `MaybeUninit`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Inline capacity (in elements) of [`SmallBuf`]: 24 bytes covers every
/// label the P1–P4 workloads produce except adversarial growth tails.
pub const SMALLBUF_INLINE: usize = 24;

/// Byte buffer with 24 inline slots — the storage behind [`crate::BitString`],
/// [`crate::QCode`] and the QED [`crate::qstorage::SymbolStream`].
pub type SmallBuf = SmallVec<u8, SMALLBUF_INLINE>;

#[derive(Clone)]
enum Repr<T: Copy + Default, const N: usize> {
    /// Up to `N` elements stored in place; `buf[len..]` holds defaults.
    Inline { len: u8, buf: [T; N] },
    /// Spilled past the inline capacity.
    Heap(Vec<T>),
}

/// A vector of `T` with `N` elements of inline storage (`N ≤ 255`).
///
/// Equality, ordering and hashing are defined on the element slice, so
/// representation (inline vs spilled) never affects observable
/// behaviour.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    repr: Repr<T, N>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline).
    pub fn new() -> Self {
        debug_assert!(N <= u8::MAX as usize, "inline capacity must fit u8");
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                buf: [T::default(); N],
            },
        }
    }

    /// A vector holding a copy of `slice`.
    pub fn from_slice(slice: &[T]) -> Self {
        let mut v = SmallVec::new();
        v.extend_from_slice(slice);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }

    /// Has this vector spilled to the heap?
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Append one element, spilling to the heap at the `N` boundary.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let l = usize::from(*len);
                if l < N {
                    buf[l] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * N);
                    v.extend_from_slice(buf);
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Remove and return the last element. A spilled vector never moves
    /// back inline (stability over micro-optimisation).
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[usize::from(*len)])
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.as_slice().last()
    }

    /// Mutable access to the last element, if any.
    pub fn last_mut(&mut self) -> Option<&mut T> {
        self.as_mut_slice().last_mut()
    }

    /// Remove all elements. A spilled vector keeps its heap capacity, so
    /// a cleared scratch buffer can be refilled without reallocating.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Shorten to `new_len` elements (no-op when already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { len, .. } => {
                if usize::from(*len) > new_len {
                    *len = new_len as u8;
                }
            }
            Repr::Heap(v) => v.truncate(new_len),
        }
    }

    /// Append every element of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let l = usize::from(*len);
                if l + slice.len() <= N {
                    buf[l..l + slice.len()].copy_from_slice(slice);
                    *len = (l + slice.len()) as u8;
                } else {
                    let mut v = Vec::with_capacity((l + slice.len()).max(2 * N));
                    v.extend_from_slice(&buf[..l]);
                    v.extend_from_slice(slice);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.extend_from_slice(slice),
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialOrd, const N: usize> PartialOrd for SmallVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Ord, const N: usize> Ord for SmallVec<T, N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_testkit::prop::{ints, vecs, Config};
    use xupd_testkit::{prop_assert_eq, props};

    #[test]
    fn starts_inline_and_spills_past_capacity() {
        let mut v: SmallBuf = SmallBuf::new();
        for i in 0..SMALLBUF_INLINE as u8 {
            v.push(i);
            assert!(!v.spilled(), "len {} fits inline", v.len());
        }
        assert_eq!(v.len(), SMALLBUF_INLINE);
        v.push(99);
        assert!(v.spilled(), "push past N spills");
        assert_eq!(v.len(), SMALLBUF_INLINE + 1);
        assert_eq!(v[SMALLBUF_INLINE], 99);
    }

    #[test]
    fn boundary_lengths_23_24_25_match_vec_model() {
        // The satellite contract: push/extend/clone/Eq/Ord at the
        // inline/spill boundary agree with a plain Vec model.
        for n in [23usize, 24, 25] {
            let model: Vec<u8> = (0..n as u8).collect();
            // built by push
            let mut pushed = SmallBuf::new();
            for &b in &model {
                pushed.push(b);
            }
            assert_eq!(pushed.as_slice(), &model[..], "push n={n}");
            assert_eq!(pushed.spilled(), n > SMALLBUF_INLINE, "n={n}");
            // built by extend
            let mut extended = SmallBuf::new();
            extended.extend_from_slice(&model);
            assert_eq!(extended.as_slice(), &model[..], "extend n={n}");
            // built by from_slice / collect
            let collected: SmallBuf = model.iter().copied().collect();
            assert_eq!(SmallBuf::from_slice(&model), collected);
            // clone preserves contents and equality across representations
            let cloned = pushed.clone();
            assert_eq!(cloned, pushed);
            assert_eq!(cloned, extended);
            // Ord agrees with the slice order a Vec would give
            let mut bigger = pushed.clone();
            bigger.push(0);
            assert!(pushed < bigger, "prefix sorts first at n={n}");
        }
    }

    #[test]
    fn inline_and_spilled_values_compare_equal_by_contents() {
        // Same contents, different representations: a 10-byte value built
        // inline vs one that spilled and was truncated back.
        let inline = SmallBuf::from_slice(&[1, 2, 3]);
        let mut spilled = SmallBuf::from_slice(&[0u8; 30]);
        assert!(spilled.spilled());
        spilled.clear();
        spilled.extend_from_slice(&[1, 2, 3]);
        assert!(spilled.spilled(), "clear keeps the heap");
        assert_eq!(inline, spilled);
        assert_eq!(inline.cmp(&spilled), Ordering::Equal);
        let h = |v: &SmallBuf| {
            use std::hash::DefaultHasher;
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&inline), h(&spilled), "hash is contents-only");
    }

    #[test]
    fn pop_truncate_last_roundtrip() {
        let mut v = SmallBuf::from_slice(&[5, 6, 7]);
        assert_eq!(v.last(), Some(&7));
        *v.last_mut().unwrap() = 9;
        assert_eq!(v.pop(), Some(9));
        assert_eq!(v.pop(), Some(6));
        v.truncate(0);
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
        // spilled pop/truncate too
        let mut big = SmallBuf::from_slice(&[1u8; 30]);
        assert_eq!(big.pop(), Some(1));
        big.truncate(2);
        assert_eq!(big.as_slice(), &[1, 1]);
    }

    props! {
        config = Config::with_cases(200);

        /// Any operation sequence leaves SmallBuf identical to a Vec.
        fn smallbuf_matches_vec_model(ops in vecs(ints(0u32..600), 0, 64)) {
            let mut small = SmallBuf::new();
            let mut model: Vec<u8> = Vec::new();
            for op in ops {
                match op % 6 {
                    // weighted toward push so the boundary gets crossed
                    0 | 1 | 2 => {
                        let b = (op % 251) as u8;
                        small.push(b);
                        model.push(b);
                    }
                    3 => {
                        let chunk = [(op % 7) as u8; 5];
                        small.extend_from_slice(&chunk);
                        model.extend_from_slice(&chunk);
                    }
                    4 => prop_assert_eq!(small.pop(), model.pop()),
                    _ => {
                        let keep = (op as usize / 6) % (model.len() + 1);
                        small.truncate(keep);
                        model.truncate(keep);
                    }
                }
                prop_assert_eq!(small.as_slice(), &model[..]);
                prop_assert_eq!(small.len(), model.len());
                prop_assert_eq!(small.last().copied(), model.last().copied());
            }
            let clone = small.clone();
            prop_assert_eq!(clone.as_slice(), &model[..]);
        }
    }
}
