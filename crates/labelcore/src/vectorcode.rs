//! Vector order codes (Xu, Bao & Ling, DEXA 2007 — \[27\] in the paper).
//!
//! A vector code is a pair `(x, y)` ordered by the **gradient** `y/x`.
//! Division is never performed: `G(A) < G(B) ⟺ y_A·x_B < y_B·x_A`
//! (cross-multiplication), the property the paper highlights and the
//! reason Vector earns `F` in the *Division Comp.* column of Figure 7.
//!
//! Insertion between neighbours is the **mediant** `(x_A+x_B, y_A+y_B)`,
//! whose gradient always lies strictly between — by Stern–Brocot theory an
//! unbounded number of insertions fit between any two codes without
//! relabelling, and under *skewed* insertion (always at the same position)
//! components grow only linearly, which is why the paper reports Vector's
//! label growth is much slower than QED's under skewed insertions (§4).
//!
//! Components are stored as UTF-8-style varints ([`crate::varint`]);
//! arithmetic is checked so that exhaustion of the 64-bit component space
//! is surfaced as an overflow event instead of silent wrap-around —
//! mirroring the paper's open question about Vector's delimiter encoding
//! beyond 2²¹.

use crate::varint;
use std::cmp::Ordering;
use std::fmt;

/// A vector order code `(x, y)` compared by gradient `y/x`.
///
/// `Default` is `(0, 0)` — never a meaningful code; it exists so vector
/// paths can live in [`crate::SmallVec`] inline storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct VectorCode {
    /// Denominator component.
    pub x: u64,
    /// Numerator component.
    pub y: u64,
}

impl VectorCode {
    /// The virtual lower bound `(1, 0)` (gradient 0).
    pub const LOW: VectorCode = VectorCode { x: 1, y: 0 };
    /// The virtual upper bound `(0, 1)` (gradient ∞).
    pub const HIGH: VectorCode = VectorCode { x: 0, y: 1 };

    /// Construct a code.
    pub fn new(x: u64, y: u64) -> Self {
        VectorCode { x, y }
    }

    /// Gradient comparison via cross-multiplication (no division). The
    /// products are taken in 128 bits so comparison itself can never
    /// overflow.
    pub fn cmp_gradient(&self, other: &VectorCode) -> Ordering {
        let lhs = u128::from(self.y) * u128::from(other.x);
        let rhs = u128::from(other.y) * u128::from(self.x);
        lhs.cmp(&rhs)
    }

    /// The mediant `(x₁+x₂, y₁+y₂)`, strictly between the operands by
    /// gradient. Returns `None` if a component would exceed 64 bits —
    /// the component-space exhaustion the framework's overflow checker
    /// watches for.
    pub fn mediant(&self, other: &VectorCode) -> Option<VectorCode> {
        Some(VectorCode {
            x: self.x.checked_add(other.x)?,
            y: self.y.checked_add(other.y)?,
        })
    }

    /// Storage size in bits: both components as UTF-8-style varints.
    pub fn size_bits(&self) -> u64 {
        8 * (u64::from(varint::encoded_len(self.x)) + u64::from(varint::encoded_len(self.y)))
    }

    /// Does either component exceed the single-UTF-8-unit capacity (2²¹)
    /// the paper questions?
    pub fn exceeds_utf8(&self) -> bool {
        varint::exceeds_utf8(self.x) || varint::exceeds_utf8(self.y)
    }
}

impl fmt::Display for VectorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Assign `n` sibling codes between the virtual bounds by recursive
/// mediant splitting (the scheme's recursive `Labelling` algorithm —
/// Vector's `N` in the *Recursion Alg.* column). Increment
/// `recursive_calls` once per split.
pub fn bulk_vector(n: usize, recursive_calls: &mut u64) -> Vec<VectorCode> {
    let mut out = vec![VectorCode::LOW; n];
    split(
        &mut out,
        0,
        n,
        VectorCode::LOW,
        VectorCode::HIGH,
        recursive_calls,
    );
    out
}

fn split(
    out: &mut [VectorCode],
    lo: usize,
    hi: usize,
    left: VectorCode,
    right: VectorCode,
    recursive_calls: &mut u64,
) {
    if lo >= hi {
        return;
    }
    *recursive_calls += 1;
    let mid_idx = lo + (hi - lo) / 2;
    // Bulk splitting between the virtual bounds keeps every component
    // ≤ n + 1, far below u64 range for any allocatable n, so saturation
    // never actually engages — it just keeps the routine total.
    let mid = VectorCode {
        x: left.x.saturating_add(right.x),
        y: left.y.saturating_add(right.y),
    };
    out[mid_idx] = mid;
    split(out, lo, mid_idx, left, mid, recursive_calls);
    split(out, mid_idx + 1, hi, mid, right, recursive_calls);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_order() {
        assert_eq!(
            VectorCode::LOW.cmp_gradient(&VectorCode::HIGH),
            Ordering::Less
        );
    }

    #[test]
    fn mediant_is_strictly_between() {
        let a = VectorCode::new(2, 1);
        let b = VectorCode::new(1, 1);
        let m = a.mediant(&b).unwrap();
        assert_eq!(m, VectorCode::new(3, 2));
        assert_eq!(a.cmp_gradient(&m), Ordering::Less);
        assert_eq!(m.cmp_gradient(&b), Ordering::Less);
    }

    #[test]
    fn cross_multiplication_matches_float_gradients() {
        let codes = [
            VectorCode::new(1, 1),
            VectorCode::new(2, 1),
            VectorCode::new(1, 2),
            VectorCode::new(3, 2),
            VectorCode::new(5, 3),
        ];
        for a in codes {
            for b in codes {
                let by_cross = a.cmp_gradient(&b);
                let ga = a.y as f64 / a.x as f64;
                let gb = b.y as f64 / b.x as f64;
                let by_float = ga.partial_cmp(&gb).unwrap();
                assert_eq!(by_cross, by_float, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn comparison_never_overflows_even_at_u64_max() {
        let a = VectorCode::new(u64::MAX, u64::MAX - 1);
        let b = VectorCode::new(u64::MAX - 1, u64::MAX);
        assert_eq!(a.cmp_gradient(&b), Ordering::Less);
        assert_eq!(b.cmp_gradient(&a), Ordering::Greater);
        assert_eq!(a.cmp_gradient(&a), Ordering::Equal);
    }

    #[test]
    fn skewed_insertion_grows_linearly() {
        // Insert always before the current first sibling: after k
        // insertions the code is (k+1, y0) — linear component growth,
        // hence logarithmic bit growth. This is the paper's P3 claim seed.
        let first = VectorCode::new(1, 1);
        let mut cur = first;
        for k in 1..=1000u64 {
            cur = VectorCode::LOW.mediant(&cur).unwrap();
            assert_eq!(cur, VectorCode::new(1 + k, 1));
        }
        assert!(cur.size_bits() <= 40, "still tiny after 1000 inserts");
    }

    #[test]
    fn zigzag_insertion_grows_fibonacci_and_overflows_u64() {
        // Alternating nested insertion produces Fibonacci-growing
        // components: u64 exhausts after ~90 steps. The checked mediant
        // must report it rather than wrap.
        let mut a = VectorCode::new(1, 1);
        let mut b = VectorCode::new(1, 2);
        let mut steps = 0;
        loop {
            match a.mediant(&b) {
                Some(m) => {
                    a = b;
                    b = m;
                    steps += 1;
                    assert!(steps < 200, "must overflow well before 200 steps");
                }
                None => break,
            }
        }
        assert!(steps > 60, "u64 holds ~90 Fibonacci steps, got {steps}");
    }

    #[test]
    fn bulk_vector_sorted_unique() {
        let mut rc = 0;
        for n in [0usize, 1, 2, 3, 10, 100] {
            let codes = bulk_vector(n, &mut rc);
            assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                assert_eq!(w[0].cmp_gradient(&w[1]), Ordering::Less);
            }
        }
        assert!(rc > 0);
    }

    #[test]
    fn size_accounting_uses_varints() {
        assert_eq!(VectorCode::new(1, 1).size_bits(), 16);
        assert_eq!(VectorCode::new(200, 1).size_bits(), 24);
        assert!(VectorCode::new(1 << 22, 1).exceeds_utf8());
        assert!(!VectorCode::new((1 << 21) - 1, 1).exceeds_utf8());
    }
}
