//! Instrumentation counters read by the framework's empirical property
//! checkers.
//!
//! The *Division Computation* and *Recursive Labelling Algorithm*
//! properties of §5.1 are about what a scheme's algorithms *do*, not what
//! their output looks like — so scheme implementations count those
//! operations here, and the checkers read the counters after driving a
//! workload.

/// Counters accumulated by a [`crate::LabelingScheme`] implementation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Integer or floating-point division operations performed while
    /// assigning labels (bulk or update). The paper's *Division
    /// Computation* property is Full iff this stays zero.
    pub divisions: u64,
    /// Number of recursive labelling passes taken during bulk labelling.
    /// Zero for single-pass (streaming) schemes; the *Recursive Labelling
    /// Algorithm* property is Full iff this stays zero.
    pub recursive_calls: u64,
    /// Existing nodes whose label an update forced to change. The
    /// *Persistent Labels* property is Full iff this stays zero across all
    /// workloads.
    pub relabeled_nodes: u64,
    /// Overflow events: moments where the scheme's encoding was exhausted
    /// (gap consumed, fixed width exceeded, float precision exhausted,
    /// length-field saturated) and a relabelling pass was required. The
    /// *Overflow Problem* property is Full (not subject) iff this stays
    /// zero under every update scenario.
    pub overflow_events: u64,
    /// Total label storage emitted, in bits, across all labels currently
    /// assigned. Maintained incrementally where cheap; checkers that need
    /// exact figures recompute from the labelling.
    pub label_bits: u64,
}

impl SchemeStats {
    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = SchemeStats::default();
    }

    /// Merge another stats block into this one (used when a checker runs
    /// several workloads against fresh scheme instances).
    pub fn absorb(&mut self, other: &SchemeStats) {
        self.divisions += other.divisions;
        self.recursive_calls += other.recursive_calls;
        self.relabeled_nodes += other.relabeled_nodes;
        self.overflow_events += other.overflow_events;
        self.label_bits += other.label_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut s = SchemeStats {
            divisions: 1,
            recursive_calls: 2,
            relabeled_nodes: 3,
            overflow_events: 4,
            label_bits: 5,
        };
        s.reset();
        assert_eq!(s, SchemeStats::default());
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = SchemeStats {
            divisions: 1,
            ..Default::default()
        };
        let b = SchemeStats {
            divisions: 2,
            overflow_events: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.divisions, 3);
        assert_eq!(a.overflow_events, 7);
    }
}
