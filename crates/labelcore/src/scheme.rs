//! The [`LabelingScheme`] trait — the contract every surveyed scheme
//! implements, and the contract the framework's empirical checkers drive.

use crate::label::{Label, Labeling};
use crate::properties::SchemeDescriptor;
use crate::stats::SchemeStats;
use std::cmp::Ordering;
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// What happened to existing labels when a node was inserted.
#[derive(Debug, Clone, Default)]
pub struct InsertReport {
    /// Existing nodes whose labels had to change to accommodate the
    /// insertion. Empty for persistent schemes.
    pub relabeled: Vec<NodeId>,
    /// True when the scheme hit an encoding-exhaustion event (§4 overflow)
    /// while processing this insertion and had to fall back to
    /// relabelling.
    pub overflowed: bool,
}

impl InsertReport {
    /// An insertion that touched nothing but the new node.
    pub fn clean() -> Self {
        InsertReport::default()
    }
}

/// Structural relations evaluable from a pair of labels (the *XPath
/// Evaluations* property distinguishes ancestor-descendant, parent-child
/// and sibling support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// First label's node is an ancestor of the second's.
    AncestorDescendant,
    /// First label's node is the parent of the second's.
    ParentChild,
    /// The two labels' nodes share a parent.
    Sibling,
}

/// A dynamic labelling scheme for XML (Definition 1 + the update behaviour
/// of §3).
///
/// # Protocol
///
/// * [`label_tree`](LabelingScheme::label_tree) assigns labels to every
///   live node of a tree in one call (initial bulk labelling).
/// * On a structural **insert**, the driver first attaches the new node to
///   the [`XmlTree`], then calls
///   [`on_insert`](LabelingScheme::on_insert); the scheme reads the node's
///   parent/sibling labels from the labelling, stores a label for the new
///   node, and reports any relabels it was forced to perform.
/// * On a structural **delete**, the driver calls
///   [`on_delete`](LabelingScheme::on_delete) *before* detaching, so the
///   scheme can observe the node's position; the scheme removes labels of
///   the whole doomed subtree.
/// * Relation queries ([`cmp_doc`](LabelingScheme::cmp_doc),
///   [`relation`](LabelingScheme::relation),
///   [`level`](LabelingScheme::level)) must answer from label values
///   alone — no tree access — because that is precisely what the paper's
///   *XPath Evaluations* and *Level Encoding* properties measure.
///
/// Implementations keep instrumentation in a [`SchemeStats`] block
/// (divisions, recursive passes, relabels, overflows) which the framework
/// checkers read.
pub trait LabelingScheme {
    /// The scheme's label type.
    type Label: Label;

    /// Scheme name as in Figure 7.
    fn name(&self) -> &'static str;

    /// Static self-description including the declared Figure 7 row.
    fn descriptor(&self) -> SchemeDescriptor;

    /// Bulk-label every live node of `tree` (including the document root).
    ///
    /// Errors surface driver bugs (a node with no parent mid-walk, an
    /// unlabeled node a scheme expected to be labelled) as
    /// [`TreeError`] values instead of panicking — the workspace panic
    /// policy (lint rule R1) forbids panic paths in scheme code.
    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<Self::Label>, TreeError>;

    /// Assign a label to `node`, which has just been attached to `tree`.
    /// Every other live node already has a label in `labeling`.
    ///
    /// Errors indicate protocol violations by the driver (e.g. `node` not
    /// actually attached), never ordinary overflow — overflow is reported
    /// in-band via [`InsertReport::overflowed`].
    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<Self::Label>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError>;

    /// Remove labels for `node` and its entire subtree, which is about to
    /// be deleted from `tree` (still attached when called).
    fn on_delete(&mut self, tree: &XmlTree, labeling: &mut Labeling<Self::Label>, node: NodeId) {
        for d in tree.preorder_from(node) {
            labeling.remove(d);
        }
    }

    /// Document-order comparison from labels alone.
    fn cmp_doc(&self, a: &Self::Label, b: &Self::Label) -> Ordering;

    /// Decide `rel(a, b)` from labels alone; `None` when the scheme cannot
    /// answer that relation from labels.
    fn relation(&self, rel: Relation, a: &Self::Label, b: &Self::Label) -> Option<bool>;

    /// The node's nesting depth from its label alone (`None` when the
    /// scheme does not encode level). Depth is counted as in
    /// [`XmlTree::depth`]: document root = 0.
    fn level(&self, a: &Self::Label) -> Option<u32>;

    /// Instrumentation counters accumulated so far.
    fn stats(&self) -> &SchemeStats;

    /// Reset instrumentation counters.
    fn reset_stats(&mut self);

    /// True when the scheme's final labels and evidence counters depend
    /// only on the resulting document and the *set* of footprint-disjoint
    /// edits applied, never on the order those edits were interleaved.
    ///
    /// This is the capability the static batch analyzer
    /// (`xupd_framework::analysis`) consumes: a canonical reorder or
    /// parallel-shard certificate is only *byte-preserving* for schemes
    /// that answer `true` here. Schemes that derive labels from a
    /// temporal allocator (Prime's prime counter) or that relabel
    /// globally on overflow (ImprovedBinary's renumber sweeps, the
    /// interval renumbering of the containment family) must keep the
    /// conservative `false` default: for them the analyzer still
    /// partitions and detects conflicts, but applies ops in original
    /// order. Each `true` claim is pinned empirically by the
    /// reorder/parallel differential suite in
    /// `crates/framework/tests/analysis_differential.rs`.
    fn order_independent(&self) -> bool {
        false
    }

    /// True when inserting a node and later deleting its subtree
    /// restores every *other* node's label exactly — the scheme's
    /// insertion path never rewrites neighbour labels (no sibling
    /// renumbering, no interval respacing), so a statically-nil group
    /// of edits (create + delete of the same scratch subtree) can be
    /// skipped without any observable residue. This is strictly
    /// stronger than [`order_independent`](Self::order_independent)
    /// along a different axis: reordering keeps the edit *set* fixed,
    /// cancellation shrinks it. The batch optimizer only cancels nil
    /// components when a scheme claims **both** capabilities.
    /// Conservative default: `false`. Claims are pinned empirically by
    /// `crates/framework/tests/analysis_differential.rs`.
    fn cancellation_neutral(&self) -> bool {
        false
    }

    /// A variant of this scheme with its encoding budget tightened so
    /// that asymptotic overflow (§4) becomes reachable within a test-size
    /// workload — e.g. ORDPATH's compressed-encoding magnitude table
    /// shrunk, or ImprovedBinary's length field narrowed. `None` (the
    /// default) means either the scheme's standard budget is already
    /// reachable (DLN, CDBS, XRel gaps, QRS mantissa) or no finite budget
    /// exists at all (QED, CDQS — the overflow-free schemes).
    fn overflow_audit_instance(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{Compliance, EncodingRep, OrderKind};

    /// A minimal global-order scheme used to validate the trait protocol:
    /// labels are f64 positions, midpoint insertion (so: divisions and
    /// eventual precision exhaustion — handy to test the stats plumbing).
    #[derive(Debug, Clone, PartialEq)]
    struct Pos(f64);

    impl Eq for Pos {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for Pos {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.partial_cmp(&other.0).expect("finite")
        }
    }
    impl PartialOrd for Pos {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Label for Pos {
        fn size_bits(&self) -> u64 {
            64
        }
        fn display(&self) -> String {
            format!("{}", self.0)
        }
    }

    #[derive(Default)]
    struct Midpoint {
        stats: SchemeStats,
    }

    impl LabelingScheme for Midpoint {
        type Label = Pos;

        fn name(&self) -> &'static str {
            "Midpoint(test)"
        }

        fn descriptor(&self) -> SchemeDescriptor {
            SchemeDescriptor {
                name: "Midpoint(test)",
                citation: "[test]",
                order: OrderKind::Global,
                encoding: EncodingRep::Fixed,
                declared: [Compliance::None; 8],
                in_figure7: false,
            }
        }

        fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<Pos>, TreeError> {
            let mut l = Labeling::with_capacity_for(tree);
            for (i, id) in tree.preorder().enumerate() {
                l.set(id, Pos(i as f64));
            }
            Ok(l)
        }

        fn on_insert(
            &mut self,
            tree: &XmlTree,
            labeling: &mut Labeling<Pos>,
            node: NodeId,
        ) -> Result<InsertReport, TreeError> {
            // Position strictly between document-order neighbours, found
            // by local pointer walks (no full ids_in_doc_order
            // materialisation per insert): the preorder predecessor is
            // the previous sibling's deepest last descendant (or the
            // parent), the successor is the first child or the nearest
            // ancestor-or-self's next sibling.
            if !tree.is_alive(node) {
                return Err(TreeError::DanglingNodeId(node));
            }
            let doc_prev = match tree.prev_sibling(node) {
                Some(mut p) => {
                    while let Some(last) = tree.last_child(p) {
                        p = last;
                    }
                    Some(p)
                }
                None => tree.parent(node),
            };
            let doc_next = tree.first_child(node).or_else(|| {
                let mut cur = node;
                loop {
                    if let Some(sib) = tree.next_sibling(cur) {
                        break Some(sib);
                    }
                    match tree.parent(cur) {
                        Some(p) => cur = p,
                        None => break None,
                    }
                }
            });
            let before = match doc_prev {
                Some(n) => Some(labeling.req(n)?.0),
                None => None,
            };
            let after = match doc_next {
                Some(n) => Some(labeling.req(n)?.0),
                None => None,
            };
            self.stats.divisions += 1;
            let pos = match (before, after) {
                (Some(b), Some(a)) => (b + a) / 2.0,
                (Some(b), None) => b + 1.0,
                (None, Some(a)) => a - 1.0,
                (None, None) => 0.0,
            };
            labeling.set(node, Pos(pos));
            Ok(InsertReport::clean())
        }

        fn cmp_doc(&self, a: &Pos, b: &Pos) -> Ordering {
            a.cmp(b)
        }

        fn relation(&self, _rel: Relation, _a: &Pos, _b: &Pos) -> Option<bool> {
            None
        }

        fn level(&self, _a: &Pos) -> Option<u32> {
            None
        }

        fn stats(&self) -> &SchemeStats {
            &self.stats
        }

        fn reset_stats(&mut self) {
            self.stats.reset();
        }
    }

    #[test]
    fn protocol_round_trip() {
        use xupd_xmldom::NodeKind;
        let mut tree = XmlTree::new();
        let r = tree.root();
        let a = tree.create(NodeKind::element("a"));
        tree.append_child(r, a).unwrap();
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(a, b).unwrap();

        let mut scheme = Midpoint::default();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        assert_eq!(labeling.len(), 3);

        // insert between a and b in document order (as first child of a)
        let c = tree.create(NodeKind::element("c"));
        tree.prepend_child(a, c).unwrap();
        let report = scheme.on_insert(&tree, &mut labeling, c).unwrap();
        assert!(report.relabeled.is_empty());
        assert_eq!(scheme.stats().divisions, 1);

        // labels sort in document order
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }

        // delete subtree removes labels
        scheme.on_delete(&tree, &mut labeling, a);
        tree.remove_subtree(a).unwrap();
        assert_eq!(labeling.len(), 1);
        scheme.reset_stats();
        assert_eq!(scheme.stats().divisions, 0);
    }
}
