//! Property-based tests for the shared label algebras: the strictly-
//! between constructions are the heart of every persistent scheme, so
//! they get adversarial random coverage here — on the hermetic
//! `xupd-testkit` harness (256 cases per property, seed-replayable).

use xupd_testkit::prop::{any_u64, bools, from_slice, ints, map, u64s_from, vecs, Gen};
use xupd_testkit::rng::TestRng;
use xupd_testkit::{prop_assert, prop_assert_eq, prop_assume, props};

use xupd_labelcore::bitstring::{between as bbetween, middle, BitString};
use xupd_labelcore::quaternary::{bulk_cdqs, bulk_qed, qbetween, qinsert, QCode};
use xupd_labelcore::varint;
use xupd_labelcore::vectorcode::{bulk_vector, VectorCode};
use xupd_labelcore::{biguint::BigUint, SchemeStats};

// ---------- generators ----------------------------------------------

/// A valid ImprovedBinary code: a bitstring ending in 1.
fn arb_bin_code() -> impl Gen<Value = BitString> {
    map(vecs(bools(), 0, 16), |bits| {
        let mut b = BitString::empty();
        for bit in bits {
            b.push(u8::from(bit));
        }
        b.push(1);
        b
    })
}

/// A valid QED code: digits in {1,2,3}, ending in 2 or 3.
fn arb_qcode() -> impl Gen<Value = QCode> {
    map(
        (vecs(ints(1u8..4), 0, 12), from_slice(&[2u8, 3u8])),
        |(mut digits, last)| {
            digits.push(last);
            let s: String = digits.iter().map(|d| d.to_string()).collect();
            QCode::from_digits(&s)
        },
    )
}

/// 64 left/right descent directions for the exhaustion chains.
fn arb_dirs() -> impl Gen<Value = Vec<bool>> {
    vecs(bools(), 64, 64)
}

// ---------- binary middle codes --------------------------------------

props! {
    fn binary_middle_is_strictly_between(a in arb_bin_code(), b in arb_bin_code()) {
        prop_assume!(a != b);
        let (l, r) = if a < b { (a, b) } else { (b, a) };
        let m = middle(&l, &r);
        prop_assert!(l < m, "{l} < {m}");
        prop_assert!(m < r, "{m} < {r}");
        prop_assert_eq!(m.last(), Some(1));
    }

    fn binary_between_with_open_bounds(a in arb_bin_code()) {
        let after = bbetween(Some(&a), None);
        prop_assert!(a < after);
        let before = bbetween(None, Some(&a));
        prop_assert!(before < a);
        prop_assert_eq!(after.last(), Some(1));
        prop_assert_eq!(before.last(), Some(1));
    }

    /// Chains of middles never get stuck: 64 nested splits always succeed.
    fn binary_middle_chain_never_exhausts(a in arb_bin_code(), b in arb_bin_code(), dirs in arb_dirs()) {
        prop_assume!(a != b);
        let (mut l, mut r) = if a < b { (a, b) } else { (b, a) };
        for go_left in dirs {
            let m = middle(&l, &r);
            prop_assert!(l < m && m < r);
            if go_left { r = m; } else { l = m; }
        }
    }
}

// ---------- quaternary codes ------------------------------------------

props! {
    fn qbetween_is_strictly_between(a in arb_qcode(), b in arb_qcode()) {
        prop_assume!(a != b);
        let (l, r) = if a < b { (a, b) } else { (b, a) };
        let m = qbetween(&l, &r);
        prop_assert!(l < m, "{l} < {m}");
        prop_assert!(m < r, "{m} < {r}");
        prop_assert!(m.is_valid_end(), "{m}");
    }

    fn qinsert_open_bounds(a in arb_qcode()) {
        let succ = qinsert(Some(&a), None);
        let pred = qinsert(None, Some(&a));
        prop_assert!(pred < a && a < succ);
        prop_assert!(succ.is_valid_end() && pred.is_valid_end());
    }

    fn qbetween_chain_never_exhausts(a in arb_qcode(), b in arb_qcode(), dirs in arb_dirs()) {
        prop_assume!(a != b);
        let (mut l, mut r) = if a < b { (a, b) } else { (b, a) };
        for go_left in dirs {
            let m = qbetween(&l, &r);
            prop_assert!(l < m && m < r);
            if go_left { r = m; } else { l = m; }
        }
    }

    fn bulk_generators_sorted_unique(n in ints(0usize..400)) {
        let mut stats = SchemeStats::default();
        for codes in [bulk_qed(n, &mut stats), bulk_cdqs(n, &mut stats)] {
            prop_assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for c in &codes {
                prop_assert!(c.is_valid_end());
                prop_assert!(c.digits().iter().all(|&d| (1..=3).contains(&d)),
                    "separator symbol 0 never appears");
            }
        }
    }

    /// CDQS bulk is never larger than QED bulk at realistic fanouts.
    fn cdqs_bulk_no_larger_than_qed(n in ints(30usize..400)) {
        let mut s = SchemeStats::default();
        let qed: u64 = bulk_qed(n, &mut s).iter().map(|c| c.size_bits()).sum();
        let cdqs: u64 = bulk_cdqs(n, &mut s).iter().map(|c| c.size_bits()).sum();
        prop_assert!(cdqs <= qed, "n={n}: {cdqs} > {qed}");
    }
}

// ---------- vector codes ----------------------------------------------

props! {
    fn mediant_strictly_between(ax in ints(1u64..1000), ay in ints(0u64..1000), bx in ints(0u64..1000), by in ints(1u64..1000)) {
        let a = VectorCode::new(ax, ay);
        let b = VectorCode::new(bx, by);
        prop_assume!(a.cmp_gradient(&b) == std::cmp::Ordering::Less);
        let m = a.mediant(&b).expect("small components");
        prop_assert_eq!(a.cmp_gradient(&m), std::cmp::Ordering::Less);
        prop_assert_eq!(m.cmp_gradient(&b), std::cmp::Ordering::Less);
    }

    fn gradient_order_is_total_and_antisymmetric(ax in ints(1u64..10_000), ay in ints(0u64..10_000), bx in ints(1u64..10_000), by in ints(0u64..10_000)) {
        let a = VectorCode::new(ax, ay);
        let b = VectorCode::new(bx, by);
        let ab = a.cmp_gradient(&b);
        let ba = b.cmp_gradient(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    fn bulk_vector_sorted(n in ints(0usize..200)) {
        let mut rc = 0;
        let codes = bulk_vector(n, &mut rc);
        for w in codes.windows(2) {
            prop_assert_eq!(w[0].cmp_gradient(&w[1]), std::cmp::Ordering::Less);
        }
    }
}

// ---------- varint -----------------------------------------------------

props! {
    fn varint_round_trip(v in any_u64()) {
        let mut buf = xupd_labelcore::SmallBuf::new();
        varint::encode(v, &mut buf);
        let (back, used) = varint::decode(&buf).expect("well-formed");
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
        // the size-model schedule never undercounts the wire bytes
        prop_assert!(buf.len() as u32 <= varint::encoded_len(v));
    }

    fn varint_streams_self_delimit(vs in vecs(any_u64(), 1, 19)) {
        let mut buf = xupd_labelcore::SmallBuf::new();
        for &v in &vs {
            varint::encode(v, &mut buf);
        }
        let mut off = 0;
        for &v in &vs {
            let (back, used) = varint::decode(&buf[off..]).expect("well-formed");
            prop_assert_eq!(back, v);
            off += used;
        }
        prop_assert_eq!(off, buf.len());
    }
}

// ---------- biguint vs u128 oracle -------------------------------------

props! {
    fn biguint_mul_matches_u128(a in any_u64(), b in any_u64()) {
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        prop_assert_eq!(prod.to_string(), (u128::from(a) * u128::from(b)).to_string());
    }

    fn biguint_divrem_matches_u128(a in any_u64(), b in u64s_from(1)) {
        let (q, r) = BigUint::from_u64(a).divrem(&BigUint::from_u64(b));
        prop_assert_eq!(q.to_string(), (a / b).to_string());
        prop_assert_eq!(r.to_string(), (a % b).to_string());
    }

    fn biguint_add_sub_round_trip(a in any_u64(), b in any_u64()) {
        let big = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        prop_assert_eq!(big.checked_sub(&BigUint::from_u64(b)).unwrap(), BigUint::from_u64(a));
    }

    fn biguint_divisibility(a in ints(1u64..100_000), b in ints(1u64..100_000)) {
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        prop_assert!(prod.is_multiple_of(&BigUint::from_u64(a)));
        prop_assert!(prod.is_multiple_of(&BigUint::from_u64(b)));
    }

    fn biguint_rem_u64_matches(a in any_u64(), b in any_u64(), m in u64s_from(1)) {
        let big = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expect = ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64;
        prop_assert_eq!(big.rem_u64(m), expect);
    }
}

// ---------- the generators themselves are deterministic ----------------

#[test]
fn generators_are_seed_replayable() {
    let gen = (arb_bin_code(), arb_qcode());
    let mut a = TestRng::seed_from_u64(11);
    let mut b = TestRng::seed_from_u64(11);
    for _ in 0..64 {
        assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
    }
}
