//! A hand-rolled Rust token scanner — just enough lexical structure for
//! the rule engine: identifiers, punctuation, literals, and the
//! `// lint:allow(...)` suppression comments.
//!
//! The scanner is deliberately not a full Rust lexer. It understands the
//! parts that matter for sound pattern matching: line and (nested) block
//! comments, string/raw-string/byte-string/char literals (so that a
//! forbidden name inside a string or comment is never a finding), and the
//! lifetime-vs-char-literal ambiguity of `'`.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `impl`, `unsafe`, ...).
    Ident,
    /// A single punctuation byte (`.`, `!`, `{`, `(`, `#`, ...).
    Punct,
    /// A string, raw-string, byte-string, char or numeric literal.
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Byte range into the scanned source.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
}

impl Token {
    /// The lexeme text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// A `// lint:allow(<rule>): <justification>` suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id, e.g. `R1`.
    pub rule: String,
    /// The justification text after the colon.
    pub justification: String,
    /// 1-based line the comment sits on. The suppression covers findings
    /// on this line and the next.
    pub line: u32,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens in source order (comments and whitespace dropped).
    pub tokens: Vec<Token>,
    /// Suppression comments found, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Tokenize `src`. Never fails: unrecognized bytes are skipped, an
/// unterminated literal or comment simply ends the scan at end of input.
pub fn scan(src: &str) -> Scan {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Scan::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Scan,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Scan {
        while self.pos < self.bytes.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.advance();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Literal, start, line, col);
                }
                b'\'' => self.quote(start, line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Literal, start, line, col);
                }
                _ if is_ident_start(b) => {
                    self.ident();
                    // r"..." / r#"..."# / b"..." / b'x' / br#"..."# prefixes
                    let text = &self.src[start..self.pos];
                    if matches!(text, "r" | "b" | "br" | "rb")
                        && matches!(self.cur(), Some(b'"') | Some(b'#') | Some(b'\''))
                    {
                        let raw = text.contains('r');
                        match self.cur() {
                            Some(b'\'') => {
                                self.advance(); // consume the quote
                                self.char_literal_body();
                            }
                            _ => self.raw_or_plain_string(raw),
                        }
                        self.push(TokKind::Literal, start, line, col);
                    } else {
                        self.push(TokKind::Ident, start, line, col);
                    }
                }
                _ if b < 0x80 => {
                    self.advance();
                    self.push(TokKind::Punct, start, line, col);
                }
                _ => {
                    // non-ASCII outside literals: skip the whole char
                    self.advance();
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    #[inline]
    fn cur(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn peek(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.pos + n).copied()
    }

    fn advance(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.cur().is_some_and(|b| b != b'\n') {
            self.advance();
        }
        let body = &self.src[start..self.pos];
        if let Some(sup) = parse_suppression(body, line) {
            self.out.suppressions.push(sup);
        }
    }

    fn block_comment(&mut self) {
        // nested, as in Rust
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.cur() == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance();
                self.advance();
            } else if self.cur() == Some(b'*') && self.peek(1) == Some(b'/') {
                self.advance();
                self.advance();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.advance();
            }
        }
    }

    fn string_literal(&mut self) {
        self.advance(); // opening quote
        while let Some(b) = self.cur() {
            match b {
                b'\\' => {
                    self.advance();
                    if self.cur().is_some() {
                        self.advance();
                    }
                }
                b'"' => {
                    self.advance();
                    return;
                }
                _ => self.advance(),
            }
        }
    }

    /// After an `r`/`b`/`br`/`rb` prefix: either `#*"..."#*` (raw, when
    /// the prefix contains `r`) or a plain escaped string body (`b"..."`).
    fn raw_or_plain_string(&mut self, raw: bool) {
        let mut hashes = 0usize;
        while self.cur() == Some(b'#') {
            hashes += 1;
            self.advance();
        }
        if self.cur() != Some(b'"') {
            return; // `#` that wasn't a raw string after all
        }
        if !raw {
            // b"..." — ordinary escapes apply
            self.string_literal();
            return;
        }
        self.advance(); // opening quote
        // raw body: ends at `"` followed by `hashes` hashes (no escapes)
        'outer: while self.cur().is_some() {
            if self.cur() == Some(b'"') {
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        self.advance();
                        continue 'outer;
                    }
                }
                self.advance();
                for _ in 0..hashes {
                    self.advance();
                }
                return;
            }
            self.advance();
        }
    }

    /// A `'`: lifetime or char literal.
    fn quote(&mut self, start: usize, line: u32, col: u32) {
        self.advance(); // the quote
        match self.cur() {
            Some(b'\\') => {
                // escaped char literal: '\n', '\'', '\\', '\u{..}'
                self.char_literal_body();
                self.push(TokKind::Literal, start, line, col);
            }
            Some(b) if is_ident_start(b) || b >= 0x80 => {
                // Could be 'a' (char) or 'a / 'static (lifetime): consume
                // the ident run, then check for a closing quote.
                while self.cur().is_some_and(|c| is_ident_char(c) || c >= 0x80) {
                    self.advance();
                }
                if self.cur() == Some(b'\'') {
                    self.advance();
                    self.push(TokKind::Literal, start, line, col);
                } else {
                    self.push(TokKind::Lifetime, start, line, col);
                }
            }
            Some(_) => {
                // ',' or similar single-char literal
                self.char_literal_body();
                self.push(TokKind::Literal, start, line, col);
            }
            None => {}
        }
    }

    /// Consume a char-literal body up to and including the closing `'`
    /// (the opening quote is already consumed).
    fn char_literal_body(&mut self) {
        while let Some(b) = self.cur() {
            match b {
                b'\\' => {
                    self.advance();
                    if self.cur().is_some() {
                        self.advance();
                    }
                }
                b'\'' => {
                    self.advance();
                    return;
                }
                _ => self.advance(),
            }
        }
    }

    fn number(&mut self) {
        while self
            .cur()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.advance();
        }
        // fraction: `.` followed by a digit (not `..` range, not method)
        if self.cur() == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.advance();
            while self
                .cur()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.advance();
            }
        }
    }

    fn ident(&mut self) {
        while self.cur().is_some_and(is_ident_char) {
            self.advance();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parse a suppression of the form `lint:allow(R1): justification` from a
/// line-comment body. The directive must be the first thing in the
/// comment (so prose and doc comments that merely *mention* the syntax
/// are not suppressions). Returns `None` for ordinary comments or
/// malformed suppressions (a malformed suppression simply does not
/// suppress).
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let body = comment.strip_prefix("//")?.trim_start();
    let rest = body.strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    let after = &rest[close + 1..];
    let justification = after.strip_prefix(':')?.trim().to_string();
    if justification.is_empty() {
        return None; // a suppression must say why
    }
    Some(Suppression {
        rule,
        justification,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // unwrap in a comment
            /* panic! in /* a nested */ block */
            let s = "call .unwrap() here";
            let r = r#"also panic!()"#;
            let ok = value;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(ids.contains(&"value".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let s = scan(src);
        let lifetimes: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let lits = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2, "'x' and '\\n'");
    }

    #[test]
    fn positions_are_one_based() {
        let src = "a\n  b";
        let s = scan(src);
        assert_eq!((s.tokens[0].line, s.tokens[0].col), (1, 1));
        assert_eq!((s.tokens[1].line, s.tokens[1].col), (2, 3));
    }

    #[test]
    fn suppression_comments_parsed() {
        let src = "// lint:allow(R1): invariant upheld by caller\nx.unwrap();";
        let s = scan(src);
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(s.suppressions[0].rule, "R1");
        assert_eq!(s.suppressions[0].line, 1);
        assert!(s.suppressions[0].justification.contains("invariant"));
    }

    #[test]
    fn suppression_without_justification_ignored() {
        let s = scan("// lint:allow(R1):\nx.unwrap();");
        assert!(s.suppressions.is_empty());
        let s = scan("// lint:allow(R1)\nx.unwrap();");
        assert!(s.suppressions.is_empty());
    }

    #[test]
    fn byte_and_raw_strings() {
        let src = r##"let a = b"unsafe"; let c = br#"unwrap"#; let d = b'u';"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }
}
