//! Workspace walking, report assembly and serialization (text + JSON).

use crate::rules::{check_source, rule_name, FileCtx, Finding, ALL_RULES};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A finding plus the source line it sits on, for terminal rendering.
#[derive(Debug, Clone)]
pub struct RenderedFinding {
    /// The finding itself.
    pub finding: Finding,
    /// The full source line (trailing newline stripped).
    pub source_line: String,
}

/// A `lint:allow` comment that covered no finding — stale, or the rule id
/// is misspelled.
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule id named by the comment.
    pub rule: String,
}

/// Everything one lint run learned about the workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, suppressed ones included (see
    /// [`Finding::is_unsuppressed`]).
    pub findings: Vec<RenderedFinding>,
    /// Stale suppression comments.
    pub unused_suppressions: Vec<UnusedSuppression>,
}

impl WorkspaceReport {
    /// Findings not covered by a suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &RenderedFinding> {
        self.findings.iter().filter(|f| f.finding.is_unsuppressed())
    }

    /// Count of findings not covered by a suppression.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.unsuppressed_count()
    }

    /// Per-rule `(unsuppressed, suppressed)` counts, in `ALL_RULES` order.
    pub fn per_rule(&self) -> Vec<(&'static str, usize, usize)> {
        ALL_RULES
            .iter()
            .map(|r| {
                let un = self
                    .findings
                    .iter()
                    .filter(|f| f.finding.rule == *r && f.finding.is_unsuppressed())
                    .count();
                let sup = self
                    .findings
                    .iter()
                    .filter(|f| f.finding.rule == *r && !f.finding.is_unsuppressed())
                    .count();
                (*r, un, sup)
            })
            .collect()
    }

    /// Human-readable report: unsuppressed findings with source context,
    /// then the suppression ledger, then a per-rule summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            let fd = &f.finding;
            let _ = writeln!(
                out,
                "{}:{}:{}: {} {}: {}",
                fd.path,
                fd.line,
                fd.col,
                fd.rule,
                rule_name(fd.rule),
                fd.message
            );
            let _ = writeln!(out, "    | {}", f.source_line.trim_end());
            let caret_pad = " ".repeat((fd.col as usize).saturating_sub(1));
            let _ = writeln!(out, "    | {caret_pad}^");
        }
        let suppressed: Vec<_> = self
            .findings
            .iter()
            .filter(|f| !f.finding.is_unsuppressed())
            .collect();
        if !suppressed.is_empty() {
            let _ = writeln!(out, "suppressed findings ({}):", suppressed.len());
            for f in &suppressed {
                let fd = &f.finding;
                let why = fd.suppressed_by.as_deref().unwrap_or("");
                let _ = writeln!(
                    out,
                    "  {}:{}: {} {} — allowed: {}",
                    fd.path, fd.line, fd.rule, fd.message, why
                );
            }
        }
        for u in &self.unused_suppressions {
            let _ = writeln!(
                out,
                "warning: {}:{}: lint:allow({}) matched no finding (stale?)",
                u.path, u.line, u.rule
            );
        }
        let _ = writeln!(
            out,
            "xupd-lint: {} file(s) scanned, {} unsuppressed finding(s), {} suppressed",
            self.files_scanned,
            self.unsuppressed_count(),
            self.suppressed_count()
        );
        for (rule, un, sup) in self.per_rule() {
            let _ = writeln!(
                out,
                "  {rule} {:<26} unsuppressed {un:>3}   suppressed {sup:>3}",
                rule_name(rule)
            );
        }
        out
    }

    /// Deterministic machine-readable summary (hand-rolled JSON — the
    /// workspace is dependency-free by design).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"findings_unsuppressed\": {},",
            self.unsuppressed_count()
        );
        let _ = writeln!(
            out,
            "  \"findings_suppressed\": {},",
            self.suppressed_count()
        );
        let _ = writeln!(
            out,
            "  \"suppressions_unused\": {},",
            self.unused_suppressions.len()
        );
        out.push_str("  \"rules\": {\n");
        let per_rule = self.per_rule();
        for (i, (rule, un, sup)) in per_rule.iter().enumerate() {
            let comma = if i + 1 < per_rule.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{rule}\": {{\"name\": \"{}\", \"unsuppressed\": {un}, \"suppressed\": {sup}}}{comma}",
                rule_name(rule)
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"findings\": [\n");
        let unsup: Vec<_> = self.unsuppressed().collect();
        for (i, f) in unsup.iter().enumerate() {
            let fd = &f.finding;
            let comma = if i + 1 < unsup.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}{comma}",
                json_escape(&fd.path),
                fd.line,
                fd.col,
                fd.rule,
                json_escape(&fd.message),
                json_escape(f.source_line.trim_end())
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "node_modules"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted —
/// the scan order (and therefore the report) is deterministic.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint one file that is already in memory. `rel_path` decides which
/// rules apply (see [`FileCtx::classify`]).
pub fn check_file_source(src: &str, rel_path: &str, report: &mut WorkspaceReport) {
    let ctx = FileCtx::classify(rel_path);
    let (findings, unused) = check_source(src, &ctx);
    let lines: Vec<&str> = src.lines().collect();
    for f in findings {
        let source_line = lines
            .get((f.line as usize).saturating_sub(1))
            .copied()
            .unwrap_or("")
            .to_string();
        report.findings.push(RenderedFinding {
            finding: f,
            source_line,
        });
    }
    for s in unused {
        report.unused_suppressions.push(UnusedSuppression {
            path: ctx.path.clone(),
            line: s.line,
            rule: s.rule,
        });
    }
    report.files_scanned += 1;
}

/// Lint every `.rs` file in the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for path in collect_rs_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        check_file_source(&src, &rel, &mut report);
    }
    // Deterministic ordering regardless of filesystem quirks.
    report
        .findings
        .sort_by(|a, b| {
            (&a.finding.path, a.finding.line, a.finding.col, a.finding.rule).cmp(&(
                &b.finding.path,
                b.finding.line,
                b.finding.col,
                b.finding.rule,
            ))
        });
    report
        .unused_suppressions
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Climb from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_json_shape() {
        let mut rep = WorkspaceReport::default();
        check_file_source(
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
            "crates/xmldom/src/a.rs",
            &mut rep,
        );
        assert_eq!(rep.files_scanned, 1);
        assert_eq!(rep.unsuppressed_count(), 1);
        let json = rep.render_json();
        assert!(json.contains("\"findings_unsuppressed\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"R1\""), "{json}");
        assert!(
            json.contains("\"snippet\": \"fn f(x: Option<u8>) -> u8 { x.unwrap() }\""),
            "machine-readable findings carry the source line: {json}"
        );
        let text = rep.render_text();
        assert!(text.contains("no-panic-paths"), "{text}");
        assert!(text.contains("x.unwrap()"), "source context: {text}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn workspace_root_discovery() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the workspace");
        assert!(root.join("crates").is_dir());
    }
}
