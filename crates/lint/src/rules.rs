//! The rule engine: walks a token stream produced by [`crate::lexer`] and
//! reports findings for the workspace's five static invariants.
//!
//! | id | name                       | invariant |
//! |----|----------------------------|-----------|
//! | R1 | no-panic-paths             | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code of the result-producing crates |
//! | R2 | deterministic-collections  | no `HashMap`/`HashSet` in crates that feed `results/*` (iteration order is unspecified) |
//! | R3 | no-ambient-entropy         | no `Instant::now`/`SystemTime`/`thread_rng`-style ambient clocks or RNGs outside `testkit::bench` |
//! | R4 | scheme-completeness        | no `todo!`/`unimplemented!` inside a `LabelingScheme` impl in `xupd-schemes` |
//! | R5 | forbid-unsafe              | no `unsafe` anywhere in the workspace |
//! | R6 | no-per-op-preorder-rebuild | no `.preorder()` full-tree scan inside a per-op replay loop (a `for` loop whose header mentions `ops`) — rebuildable state must be maintained incrementally |
//! | R7 | no-raw-thread-spawn        | no `thread::spawn`/`scope.spawn` callees outside `crates/exec` — all fan-out goes through the `xupd-exec` pool so `XUPD_THREADS` governs every worker |
//! | R8 | no-direct-batch-mutation   | no direct structural tree mutation (`append_child`, `detach`, `remove_subtree`, ...) inside a per-op replay loop outside the update driver and the mutation-log module — multi-op edits must flow through `MutationLog` so validation and atomicity cannot be bypassed |
//! | R9 | no-unanalyzed-reorder      | no hand permutation or splitting (`.sort*`, `.swap`, `.reverse`, `.rotate_*`, `.retain`, `.drain`, `.split_off`, `.shuffle`) of a mutation-log op vector (receiver named `ops`/`log`/`mutations`) outside `framework::analysis` and the mutations module — reordering is only sound under an `AnalyzedPlan` certificate |
//! | R10 | no-uncached-reevaluate    | no `.evaluate(` call inside a query-batch loop (a `for` loop whose header mentions `queries`/`exprs`) outside `framework::querycache` and its bench baseline — registered query sets must be served through the incremental `QueryCache`, not re-evaluated wholesale per batch |
//! | R11 | no-bypass-writer-lane     | no `.doc_mut(` call outside `crates/store` — the store's raw slot handle mutates a fleet document without its shard writer lane, forfeiting the per-document op ordering the differential suite pins; go through `Store::apply_script` / `serve_query` / `query_now` |
//! | R12 | no-raw-script-in-tests    | no hand-built `ScriptOp` variants in test code of the `results/*`-feeding crates — ad-hoc op lists silently drift from the generated-workload distributions the differential suites certify; drive tests through `Script::generate` or a flux DSL program (the reference differential drivers are path-exempt) |

use crate::lexer::{scan, Suppression, TokKind, Token};

/// Crates whose library code must be panic-free (R1): everything on the
/// path from a parsed document to a `results/*` byte.
pub const R1_CRATES: &[&str] = &[
    "xmldom",
    "labelcore",
    "schemes",
    "encoding",
    "framework",
    "store",
    "flux",
];

/// Crates whose code must iterate deterministically (R2): the R1 set plus
/// the workload generators and the bench/report drivers that serialize
/// `results/*`.
pub const R2_CRATES: &[&str] = &[
    "xmldom",
    "labelcore",
    "schemes",
    "encoding",
    "framework",
    "workloads",
    "bench",
    "store",
    "flux",
    "xml-update-props",
];

/// All rule ids, in report order.
pub const ALL_RULES: &[&str] = &[
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12",
];

/// Structural tree mutators that R8 forbids calling directly inside a
/// per-op replay loop — the batch API (`MutationLog`) is the only
/// sanctioned multi-op edit path outside the driver/mutations modules.
/// Single-sourced from [`xupd_xmldom::STRUCTURAL_MUTATORS`] so the lint
/// and the analyzer's footprint table can never drift from the tree's
/// actual mutator surface.
pub const R8_MUTATORS: &[&str] = xupd_xmldom::STRUCTURAL_MUTATORS;

/// The two modules allowed to mutate the tree per-op: the update driver
/// (it *is* the per-op reference path) and the mutation-log machinery
/// (it applies validated batches).
pub const R8_EXEMPT_PATHS: &[&str] = &[
    "crates/framework/src/driver.rs",
    "crates/framework/src/mutations.rs",
];

/// Slice permuters/splitters that R9 forbids calling on a mutation-log
/// op vector: anything that changes op order or removes ops without an
/// analyzer certificate silently forfeits the byte-identical-replay
/// guarantee the differential suite pins.
pub const R9_PERMUTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "swap",
    "reverse",
    "rotate_left",
    "rotate_right",
    "retain",
    "drain",
    "split_off",
    "shuffle",
];

/// Receiver idents R9 treats as mutation-log op vectors.
pub const R9_RECEIVERS: &[&str] = &["ops", "log", "mutations"];

/// The two modules allowed to reorder or split logs: the analyzer (it
/// *produces* the reorder/partition certificates) and the mutation-log
/// machinery (rollback rewinds its own op vector).
pub const R9_EXEMPT_PATHS: &[&str] = &[
    "crates/framework/src/analysis.rs",
    "crates/framework/src/mutations.rs",
];

/// The reference differential drivers allowed to hand-build `ScriptOp`
/// lists (R12): they *are* the executable specification of op
/// addressing, so their op construction is the oracle, not a drift
/// hazard. Everything else drives tests through `Script::generate` or
/// a flux DSL program.
pub const R12_EXEMPT_PATHS: &[&str] = &[
    "crates/framework/tests/driver_differential.rs",
    "tests/determinism.rs",
    "tests/properties.rs",
];

/// Loop-header idents R10 treats as registered query batches.
pub const R10_RECEIVERS: &[&str] = &["queries", "exprs"];

/// The two modules allowed to evaluate inside a query-batch loop: the
/// query cache (rebuild/repair *is* its sanctioned evaluation path) and
/// the incremental-maintenance bench (its re-evaluate client is the
/// measured counter-example the cache is compared against).
pub const R10_EXEMPT_PATHS: &[&str] = &[
    "crates/framework/src/querycache.rs",
    "crates/bench/src/bin/bench_incremental_queries.rs",
];

/// Human name for a rule id.
pub fn rule_name(id: &str) -> &'static str {
    match id {
        "R1" => "no-panic-paths",
        "R2" => "deterministic-collections",
        "R3" => "no-ambient-entropy",
        "R4" => "scheme-completeness",
        "R5" => "forbid-unsafe",
        "R6" => "no-per-op-preorder-rebuild",
        "R7" => "no-raw-thread-spawn",
        "R8" => "no-direct-batch-mutation",
        "R9" => "no-unanalyzed-reorder",
        "R10" => "no-uncached-reevaluate",
        "R11" => "no-bypass-writer-lane",
        "R12" => "no-raw-script-in-tests",
        _ => "unknown-rule",
    }
}

/// Where a file sits in the workspace — drives which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (used in reports).
    pub path: String,
    /// Owning crate (`xmldom`, `schemes`, ... or `xml-update-props` for
    /// the root package). Empty when outside any crate.
    pub crate_name: String,
    /// True for test/bench/bin/example code, where R1 and R2 do not
    /// apply: `tests/`, `benches/`, `examples/`, `src/bin/`, `src/main.rs`
    /// and `build.rs` paths.
    pub is_test_code: bool,
    /// True only for `crates/testkit/src/bench.rs`, the single module
    /// allowed to read the wall clock (R3).
    pub is_bench_harness: bool,
}

impl FileCtx {
    /// Classify a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileCtx {
        let path = rel_path.replace('\\', "/");
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            ["src", ..] | ["tests", ..] | ["examples", ..] => "xml-update-props".to_string(),
            _ => String::new(),
        };
        let in_dir = |d: &str| parts.iter().any(|p| *p == d);
        let is_test_code = in_dir("tests")
            || in_dir("benches")
            || in_dir("examples")
            || path.contains("src/bin/")
            || path.ends_with("src/main.rs")
            || path.ends_with("build.rs");
        FileCtx {
            is_bench_harness: path == "crates/testkit/src/bench.rs",
            path,
            crate_name,
            is_test_code,
        }
    }
}

/// One rule violation (before suppression matching).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`R1` ... `R5`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What was found, e.g. `.unwrap() call in library code`.
    pub message: String,
    /// Justification text when a `lint:allow` covered this finding.
    pub suppressed_by: Option<String>,
}

impl Finding {
    /// True when no suppression covered this finding.
    pub fn is_unsuppressed(&self) -> bool {
        self.suppressed_by.is_none()
    }
}

/// Scan one file's source and return all findings (suppressed ones
/// included, marked). Also returns the suppressions that matched nothing,
/// so the caller can report stale `lint:allow` comments.
pub fn check_source(src: &str, ctx: &FileCtx) -> (Vec<Finding>, Vec<Suppression>) {
    let scanned = scan(src);
    let toks = &scanned.tokens;
    let in_cfg_test = cfg_test_mask(toks, src);
    let in_scheme_impl = labeling_scheme_impl_mask(toks, src);
    let in_ops_loop = for_loop_mask(toks, src, &["ops"]);
    let in_query_loop = for_loop_mask(toks, src, R10_RECEIVERS);

    let mut findings: Vec<Finding> = Vec::new();
    let r1_applies =
        !ctx.is_test_code && R1_CRATES.iter().any(|c| *c == ctx.crate_name.as_str());
    let r2_applies =
        !ctx.is_test_code && R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str());
    let r3_applies = !ctx.is_bench_harness;
    let r4_applies = ctx.crate_name == "schemes";
    // R6 applies to test code too (differential/reference drivers live in
    // tests/ and must opt out explicitly via lint:allow).
    let r6_applies = R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str());
    // R7 applies everywhere except the pool crate itself, test code
    // included: a raw spawn in a test escapes XUPD_THREADS just the same.
    let r7_applies = ctx.crate_name != "exec";
    // R8 applies to test code too (reference drivers replay per-op by
    // design and must opt out explicitly via lint:allow), but not to the
    // two modules that implement the sanctioned edit paths, and not to
    // xmldom itself (the tree's own test/doc code exercises its API).
    let r8_applies = R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str())
        && ctx.crate_name != "xmldom"
        && !R8_EXEMPT_PATHS.iter().any(|p| ctx.path == *p);
    // R9 applies to test code too — the differential suite's value rests
    // on never hand-permuting op vectors, so even tests must go through
    // analyzer certificates (or opt out explicitly via lint:allow).
    let r9_applies = R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str())
        && !R9_EXEMPT_PATHS.iter().any(|p| ctx.path == *p);
    // R10 applies to test code too — oracle/differential drivers that
    // legitimately pay full re-evaluation opt out via lint:allow — but
    // not to the cache itself or to its measured re-evaluate baseline.
    let r10_applies = R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str())
        && !R10_EXEMPT_PATHS.iter().any(|p| ctx.path == *p);
    // R11 applies everywhere but the store crate itself, test code
    // included: a lane bypass in a test silently voids the differential
    // suite's byte-identical-state guarantee, so it must opt out
    // explicitly via lint:allow.
    let r11_applies = ctx.crate_name != "store";
    // R12 applies ONLY to test code of the results-feeding crates —
    // library code (the workloads generator, the driver, the mutation
    // batcher) legitimately matches on ScriptOp — and not to the
    // reference differential drivers, which are the executable spec.
    let r12_applies = ctx.is_test_code
        && ctx.crate_name != "workloads"
        && R2_CRATES.iter().any(|c| *c == ctx.crate_name.as_str())
        && !R12_EXEMPT_PATHS.iter().any(|p| ctx.path == *p);

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        let lib_code = !in_cfg_test[i];

        // R1 — panic paths in library code.
        if r1_applies && lib_code {
            match text {
                "unwrap" | "expect" => {
                    let method_call = i > 0
                        && toks[i - 1].kind == TokKind::Punct
                        && toks[i - 1].text(src) == "."
                        && next_is(toks, src, i, "(");
                    if method_call {
                        push(&mut findings, "R1", ctx, t, format!(".{text}() call"));
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    if next_is(toks, src, i, "!") {
                        push(&mut findings, "R1", ctx, t, format!("{text}! macro"));
                    }
                }
                _ => {}
            }
        }

        // R2 — nondeterministic hash collections.
        if r2_applies && lib_code && (text == "HashMap" || text == "HashSet") {
            push(
                &mut findings,
                "R2",
                ctx,
                t,
                format!("{text} has unspecified iteration order; use BTree{}", &text[4..]),
            );
        }

        // R3 — ambient clocks / entropy (applies to test code too: the
        // suite must be reproducible end to end).
        if r3_applies
            && matches!(
                text,
                "Instant" | "SystemTime" | "thread_rng" | "ThreadRng" | "from_entropy"
            )
        {
            push(
                &mut findings,
                "R3",
                ctx,
                t,
                format!("ambient clock/entropy source `{text}`"),
            );
        }

        // R4 — incomplete LabelingScheme impls.
        if r4_applies
            && in_scheme_impl[i]
            && matches!(text, "todo" | "unimplemented")
            && next_is(toks, src, i, "!")
        {
            push(
                &mut findings,
                "R4",
                ctx,
                t,
                format!("{text}! inside a LabelingScheme impl"),
            );
        }

        // R5 — unsafe, everywhere, no exemptions for test code.
        if text == "unsafe" {
            push(&mut findings, "R5", ctx, t, "unsafe block or fn".to_string());
        }

        // R6 — full-tree `.preorder()` rebuild inside a per-op replay
        // loop. `.preorder_from(subtree)` is a different ident and stays
        // legal: subtree-proportional work is what delete paths need.
        if r6_applies
            && in_ops_loop[i]
            && text == "preorder"
            && i > 0
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text(src) == "."
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R6",
                ctx,
                t,
                ".preorder() full-tree scan inside a per-op loop; maintain the state incrementally"
                    .to_string(),
            );
        }

        // R8 — direct structural mutation inside a per-op replay loop.
        // The method-call shape (`.name(`) keeps definitions and doc
        // words legal; the for-ops mask scopes the rule to replay loops,
        // where bypassing `MutationLog` skips validation and atomicity.
        if r8_applies
            && in_ops_loop[i]
            && R8_MUTATORS.contains(&text)
            && i > 0
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text(src) == "."
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R8",
                ctx,
                t,
                format!(".{text}() in a per-op loop; batch the edits through MutationLog"),
            );
        }

        // R9 — hand permutation/splitting of a mutation-log op vector.
        // The shape `ops.sort(`/`log.drain(`/`mutations.retain(` — an
        // identifier receiver, so field accesses like `plan.ops.sort(`
        // are caught too (the receiver ident before the dot is `ops`).
        if r9_applies
            && R9_PERMUTERS.contains(&text)
            && i > 1
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text(src) == "."
            && toks[i - 2].kind == TokKind::Ident
            && R9_RECEIVERS.contains(&toks[i - 2].text(src))
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R9",
                ctx,
                t,
                format!(
                    ".{text}() permutes a mutation-log op vector; reorder only \
                     through a framework::analysis certificate"
                ),
            );
        }

        // R10 — wholesale re-evaluation of a registered query batch.
        // The method-call shape (`.evaluate(`) inside a for loop whose
        // header names a query collection is the discard-and-recompute
        // anti-pattern the incremental QueryCache replaces: footprint
        // classification keeps/repairs results instead.
        if r10_applies
            && in_query_loop[i]
            && text == "evaluate"
            && i > 0
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text(src) == "."
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R10",
                ctx,
                t,
                ".evaluate() re-runs a whole query batch; serve registered queries \
                 through framework::querycache"
                    .to_string(),
            );
        }

        // R11 — writer-lane bypass outside the store crate. The
        // method-call shape (`.doc_mut(`) is the store's only raw slot
        // handle; everything else on `Store` routes mutation through a
        // shard lane.
        if r11_applies
            && text == "doc_mut"
            && i > 0
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text(src) == "."
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R11",
                ctx,
                t,
                ".doc_mut() bypasses the shard writer lane; mutate through \
                 Store::apply_script / serve_query"
                    .to_string(),
            );
        }

        // R12 — hand-built ScriptOp variants in test code. The path
        // shape (`ScriptOp ::`) catches construction and matching of
        // raw op lists in ordinary tests; generated workloads
        // (`Script::generate`) or flux DSL programs keep test inputs on
        // the certified distributions.
        if r12_applies
            && text == "ScriptOp"
            && next_is(toks, src, i, ":")
        {
            push(
                &mut findings,
                "R12",
                ctx,
                t,
                "raw ScriptOp in test code; generate scripts via Script::generate \
                 or compile a flux DSL program"
                    .to_string(),
            );
        }

        // R7 — raw thread spawns outside the pool crate. `::` lexes as
        // two `:` puncts, so `thread::spawn` has `:` as the previous
        // token and `scope.spawn` has `.`.
        if r7_applies
            && text == "spawn"
            && i > 0
            && toks[i - 1].kind == TokKind::Punct
            && matches!(toks[i - 1].text(src), "." | ":")
            && next_is(toks, src, i, "(")
        {
            push(
                &mut findings,
                "R7",
                ctx,
                t,
                "raw thread spawn; route fan-out through xupd_exec::par_map".to_string(),
            );
        }
    }

    let unused = apply_suppressions(&mut findings, scanned.suppressions);
    (findings, unused)
}

fn push(out: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, t: &Token, what: String) {
    out.push(Finding {
        rule,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: what,
        suppressed_by: None,
    });
}

fn next_is(toks: &[Token], src: &str, i: usize, punct: &str) -> bool {
    toks.get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text(src) == punct)
}

/// Match findings against `// lint:allow(<rule>): ...` comments. A
/// suppression covers findings of its rule on its own line and the next
/// source line. Returns the suppressions that covered nothing.
fn apply_suppressions(findings: &mut [Finding], sups: Vec<Suppression>) -> Vec<Suppression> {
    let mut used = vec![false; sups.len()];
    for f in findings.iter_mut() {
        for (si, s) in sups.iter().enumerate() {
            if s.rule == f.rule && (f.line == s.line || f.line == s.line + 1) {
                f.suppressed_by = Some(s.justification.clone());
                used[si] = true;
                break;
            }
        }
    }
    sups.into_iter()
        .zip(used)
        .filter_map(|(s, u)| (!u).then_some(s))
        .collect()
}

/// Mask of tokens that sit inside a `#[cfg(test)]`-gated item (the
/// attribute itself included). The scanner skips such regions for R1/R2:
/// test-only code may panic and may hash.
fn cfg_test_mask(toks: &[Token], src: &str) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(attr_end) = match_cfg_test_attr(toks, src, i) {
            // Absorb any further attributes on the same item.
            let mut j = attr_end;
            while let Some(e) = match_any_attr(toks, src, j + 1) {
                j = e;
            }
            // Skip the gated item: to the matching `}` of its first brace,
            // or to a `;` for brace-less items (`use`, `mod x;`).
            let mut k = j + 1;
            let mut end = toks.len().saturating_sub(1);
            while k < toks.len() {
                let tt = toks[k].text(src);
                if toks[k].kind == TokKind::Punct && tt == "{" {
                    end = match_close(toks, src, k, "{", "}");
                    break;
                }
                if toks[k].kind == TokKind::Punct && tt == ";" {
                    end = k;
                    break;
                }
                k += 1;
            }
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If the tokens at `i` begin a `#[cfg(...test...)]` attribute (and it is
/// not `cfg(not(...))`), return the index of its closing `]`.
fn match_cfg_test_attr(toks: &[Token], src: &str, i: usize) -> Option<usize> {
    if !(toks[i].kind == TokKind::Punct && toks[i].text(src) == "#") {
        return None;
    }
    let open = toks.get(i + 1)?;
    if !(open.kind == TokKind::Punct && open.text(src) == "[") {
        return None;
    }
    let close = match_close(toks, src, i + 1, "[", "]");
    let span = &toks[i + 2..close];
    let has = |name: &str| {
        span.iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == name)
    };
    if has("cfg") && has("test") && !has("not") {
        Some(close)
    } else {
        None
    }
}

/// If the tokens at `i` begin any `#[...]` attribute, return the index of
/// its closing `]`.
fn match_any_attr(toks: &[Token], src: &str, i: usize) -> Option<usize> {
    let hash = toks.get(i)?;
    let open = toks.get(i + 1)?;
    if hash.kind == TokKind::Punct
        && hash.text(src) == "#"
        && open.kind == TokKind::Punct
        && open.text(src) == "["
    {
        Some(match_close(toks, src, i + 1, "[", "]"))
    } else {
        None
    }
}

/// Index of the bracket matching the opener at `open_idx` (returns the
/// last token when unbalanced — the region then runs to end of file,
/// which is the conservative choice for a skip mask).
fn match_close(toks: &[Token], src: &str, open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            let tt = t.text(src);
            if tt == open {
                depth += 1;
            } else if tt == close {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Mask of tokens inside the body of any `for` loop whose header (the
/// tokens between `for` and the body `{`) mentions one of `needles` —
/// e.g. `ops` for the driver-style per-op replay shape
/// (`for (i, op) in script.ops...`), or `queries`/`exprs` for a
/// query-batch loop.
fn for_loop_mask(toks: &[Token], src: &str, needles: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(src) == "for" {
            let mut saw_needle = false;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct && t.text(src) == "{" {
                    break;
                }
                if t.kind == TokKind::Ident && needles.contains(&t.text(src)) {
                    saw_needle = true;
                }
                j += 1;
            }
            if saw_needle && j < toks.len() {
                let end = match_close(toks, src, j, "{", "}");
                for m in mask.iter_mut().take(end + 1).skip(j) {
                    *m = true;
                }
                // do not jump past `end`: nested needle loops inside the
                // body would be re-masked identically anyway
            }
        }
        i += 1;
    }
    mask
}

/// Mask of tokens inside `impl ... LabelingScheme for ... { ... }` bodies.
fn labeling_scheme_impl_mask(toks: &[Token], src: &str) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(src) == "impl" {
            // Look at the header: tokens up to the body `{`.
            let mut saw_trait = false;
            let mut saw_for = false;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                let tt = t.text(src);
                if t.kind == TokKind::Punct && tt == "{" {
                    break;
                }
                if t.kind == TokKind::Ident && tt == "LabelingScheme" {
                    saw_trait = true;
                }
                if t.kind == TokKind::Ident && tt == "for" && saw_trait {
                    saw_for = true;
                }
                j += 1;
            }
            if saw_trait && saw_for && j < toks.len() {
                let end = match_close(toks, src, j, "{", "}");
                for m in mask.iter_mut().take(end + 1).skip(j) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileCtx {
        FileCtx::classify(path)
    }

    fn unsuppressed(src: &str, path: &str) -> Vec<Finding> {
        let (f, _) = check_source(src, &lib_ctx(path));
        f.into_iter().filter(|f| f.is_unsuppressed()).collect()
    }

    #[test]
    fn classify_paths() {
        let c = FileCtx::classify("crates/xmldom/src/tree.rs");
        assert_eq!(c.crate_name, "xmldom");
        assert!(!c.is_test_code);
        assert!(FileCtx::classify("crates/xmldom/tests/t.rs").is_test_code);
        assert!(FileCtx::classify("crates/bench/src/bin/figure7.rs").is_test_code);
        assert!(FileCtx::classify("tests/matrix.rs").is_test_code);
        assert!(FileCtx::classify("examples/quickstart.rs").is_test_code);
        assert!(FileCtx::classify("crates/testkit/src/bench.rs").is_bench_harness);
        assert_eq!(FileCtx::classify("src/lib.rs").crate_name, "xml-update-props");
    }

    #[test]
    fn r1_flags_panics_in_library_code_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(unsuppressed(src, "crates/xmldom/src/a.rs").len(), 1);
        // not an R1 crate
        assert!(unsuppressed(src, "crates/testkit/src/a.rs").is_empty());
        // test path
        assert!(unsuppressed(src, "crates/xmldom/tests/a.rs").is_empty());
    }

    #[test]
    fn r1_ignores_cfg_test_blocks() {
        let src = r#"
            pub fn ok() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("boom"); }
            }
        "#;
        assert!(unsuppressed(src, "crates/schemes/src/a.rs").is_empty());
    }

    #[test]
    fn r1_unwrap_or_else_is_fine() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }";
        assert!(unsuppressed(src, "crates/xmldom/src/a.rs").is_empty());
    }

    #[test]
    fn r2_flags_hash_collections() {
        let src = "use std::collections::HashMap; pub struct S { m: HashMap<u8, u8> }";
        let f = unsuppressed(src, "crates/encoding/src/a.rs");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "R2"));
        // BTreeMap is the endorsed replacement
        let ok = "use std::collections::BTreeMap; pub struct S { m: BTreeMap<u8, u8> }";
        assert!(unsuppressed(ok, "crates/encoding/src/a.rs").is_empty());
    }

    #[test]
    fn r3_flags_clocks_everywhere_but_bench_harness() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(unsuppressed(src, "crates/framework/src/a.rs").len(), 1);
        assert_eq!(unsuppressed(src, "tests/a.rs").len(), 1, "tests too");
        assert!(unsuppressed(src, "crates/testkit/src/bench.rs").is_empty());
    }

    #[test]
    fn r4_flags_todo_in_scheme_impls() {
        let src = r#"
            impl LabelingScheme for Foo {
                fn level(&self, _a: &L) -> Option<u32> { todo!() }
            }
        "#;
        let f = unsuppressed(src, "crates/schemes/src/foo.rs");
        // R1 fires on todo! in library code, and R4 on todo! in the impl.
        assert!(f.iter().any(|f| f.rule == "R4"), "{f:?}");
        // outside a LabelingScheme impl no R4
        let other = "fn f() { todo!() }";
        let f = unsuppressed(other, "crates/schemes/src/foo.rs");
        assert!(f.iter().all(|f| f.rule != "R4"));
    }

    #[test]
    fn r5_flags_unsafe_even_in_tests() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        assert_eq!(
            unsuppressed(src, "crates/testkit/tests/a.rs")
                .iter()
                .filter(|f| f.rule == "R5")
                .count(),
            1
        );
    }

    #[test]
    fn r6_flags_preorder_rebuild_in_per_op_loops() {
        let src = r#"
            fn run(tree: &XmlTree, script: &Script) {
                for (i, op) in script.ops.iter().enumerate() {
                    let pool: Vec<NodeId> = tree.preorder().collect();
                }
            }
        "#;
        let f = unsuppressed(src, "crates/framework/src/driver.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R6").count(), 1, "{f:?}");
        // applies to test code too — reference drivers must opt out
        let f = unsuppressed(src, "crates/framework/tests/t.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R6").count(), 1);
        // but not outside the R2 crate set
        assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
    }

    #[test]
    fn r6_leaves_legitimate_traversals_alone() {
        // preorder_from is subtree-proportional: legal in delete paths
        let sub = r#"
            fn run(script: &Script) {
                for op in script.ops.iter() {
                    for d in tree.preorder_from(node) { remove(d); }
                }
            }
        "#;
        assert!(unsuppressed(sub, "crates/framework/src/driver.rs").is_empty());
        // a .preorder() outside any per-op loop is fine (one-time build)
        let build = "fn build(tree: &XmlTree) { let v: Vec<_> = tree.preorder().collect(); }";
        assert!(unsuppressed(build, "crates/framework/src/driver.rs").is_empty());
        // a for loop without `ops` in its header is not a replay loop
        let other = "fn f() { for x in items { let v: Vec<_> = tree.preorder().collect(); } }";
        assert!(unsuppressed(other, "crates/framework/src/driver.rs").is_empty());
    }

    #[test]
    fn r7_flags_raw_spawns_outside_the_pool_crate() {
        let free = "fn f() { std::thread::spawn(|| {}); }";
        let f = unsuppressed(free, "crates/framework/src/a.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R7").count(), 1, "{f:?}");
        // scoped-spawn method calls are raw spawns too
        let scoped = "fn f(s: &Scope) { s.spawn(|| {}); }";
        let f = unsuppressed(scoped, "tests/a.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R7").count(), 1);
        // test code gets no exemption — a raw spawn escapes XUPD_THREADS
        let f = unsuppressed(free, "crates/bench/src/bin/b.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R7").count(), 1);
    }

    #[test]
    fn r11_flags_writer_lane_bypass_outside_the_store_crate() {
        let src = "fn f(store: &Store<Qed>) { let slot = store.doc_mut(3).unwrap(); }";
        for path in ["crates/framework/src/a.rs", "tests/a.rs", "crates/bench/src/bin/b.rs"] {
            let f = unsuppressed(src, path);
            assert_eq!(
                f.iter().filter(|f| f.rule == "R11").count(),
                1,
                "{path}: {f:?}"
            );
        }
        // the store crate itself owns the seam — lib and test code
        assert!(unsuppressed(src, "crates/store/src/store.rs")
            .iter()
            .all(|f| f.rule != "R11"));
        assert!(unsuppressed(src, "crates/store/tests/t.rs")
            .iter()
            .all(|f| f.rule != "R11"));
        // `doc_mut` as a plain ident (fn definition) is not a call site
        let def = "fn doc_mut(n: usize) { let doc_mut = n; }";
        assert!(unsuppressed(def, "crates/framework/src/a.rs").is_empty());
    }

    #[test]
    fn r7_leaves_the_pool_crate_and_non_calls_alone() {
        let free = "fn f() { std::thread::spawn(|| {}); }";
        assert!(unsuppressed(free, "crates/exec/src/lib.rs").is_empty());
        assert!(unsuppressed(free, "crates/exec/tests/pool.rs").is_empty());
        // `spawn` as a plain ident (fn name, doc word) is not a call site
        let def = "fn spawn_workers(n: usize) { let spawn = n; }";
        assert!(unsuppressed(def, "crates/framework/src/a.rs").is_empty());
    }

    #[test]
    fn r8_flags_direct_mutation_in_per_op_loops() {
        let src = r#"
            fn run(tree: &mut XmlTree, script: &Script) {
                for (i, op) in script.ops.iter().enumerate() {
                    let n = tree.create(NodeKind::element("x"));
                    tree.append_child(parent, n).unwrap();
                }
            }
        "#;
        let f = unsuppressed(src, "crates/framework/src/checkers.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R8").count(), 1, "{f:?}");
        // test code gets no exemption — reference drivers opt out via
        // lint:allow instead
        let f = unsuppressed(src, "crates/framework/tests/t.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R8").count(), 1);
        // the sanctioned edit paths are exempt
        assert!(unsuppressed(src, "crates/framework/src/driver.rs")
            .iter()
            .all(|f| f.rule != "R8"));
        assert!(unsuppressed(src, "crates/framework/src/mutations.rs")
            .iter()
            .all(|f| f.rule != "R8"));
        // so is the tree crate itself and everything outside the R2 set
        assert!(unsuppressed(src, "crates/xmldom/src/tree.rs")
            .iter()
            .all(|f| f.rule != "R8"));
        assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
    }

    #[test]
    fn r8_leaves_non_loop_and_non_call_uses_alone() {
        // one-off edits outside a replay loop are not batch bypasses
        let build = "fn f(tree: &mut XmlTree) { tree.append_child(p, n); }";
        assert!(unsuppressed(build, "crates/framework/src/checkers.rs")
            .iter()
            .all(|f| f.rule != "R8"));
        // a for loop without `ops` in its header is not a replay loop
        let other = "fn f() { for x in items { tree.remove_subtree(x); } }";
        assert!(unsuppressed(other, "crates/framework/src/checkers.rs")
            .iter()
            .all(|f| f.rule != "R8"));
        // `detach` as a plain ident (fn name) is not a call site
        let def = "fn detach_all(n: usize) { let detach = n; }";
        assert!(unsuppressed(def, "crates/framework/src/checkers.rs").is_empty());
    }

    #[test]
    fn r8_mutator_list_is_single_sourced() {
        // the lint's list IS the tree crate's list — drift is impossible,
        // and this pins the expected surface so an accidental rename in
        // xmldom is noticed here too
        assert_eq!(R8_MUTATORS, xupd_xmldom::STRUCTURAL_MUTATORS);
        assert_eq!(R8_MUTATORS.len(), 6);
        assert!(R8_MUTATORS.contains(&"append_child"));
        assert!(R8_MUTATORS.contains(&"remove_subtree"));
    }

    #[test]
    fn r9_flags_permutation_of_op_vectors() {
        let src = "fn f(log: &mut MutationLog) { log.ops.sort_by_key(|m| m.rank()); }";
        let f = unsuppressed(src, "crates/framework/src/checkers.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R9").count(), 1, "{f:?}");
        // applies to test code too — differential tests must only use
        // analyzer-certified orders
        let f = unsuppressed(src, "crates/framework/tests/t.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R9").count(), 1);
        // every permuter in the list is caught
        for m in ["swap", "reverse", "rotate_left", "retain", "drain", "split_off"] {
            let src = format!("fn f() {{ ops.{m}(0); }}");
            let f = unsuppressed(&src, "crates/framework/src/checkers.rs");
            assert_eq!(f.iter().filter(|f| f.rule == "R9").count(), 1, "{m}");
        }
        // the analyzer and the mutation-log machinery are exempt — they
        // implement the certified paths
        assert!(unsuppressed(src, "crates/framework/src/analysis.rs")
            .iter()
            .all(|f| f.rule != "R9"));
        assert!(unsuppressed(src, "crates/framework/src/mutations.rs")
            .iter()
            .all(|f| f.rule != "R9"));
        // outside the R2 crate set the rule does not apply
        assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
    }

    #[test]
    fn r9_leaves_other_receivers_and_non_calls_alone() {
        // sorting something that is not an op vector is fine
        let other = "fn f(mut v: Vec<u32>) { v.sort(); names.sort_by_key(|n| n.len()); }";
        assert!(unsuppressed(other, "crates/framework/src/checkers.rs").is_empty());
        // `sort` as a plain ident (fn name, local) is not a call site
        let def = "fn sort_plans(n: usize) { let sort = n; }";
        assert!(unsuppressed(def, "crates/framework/src/checkers.rs").is_empty());
        // iterating or indexing the op vector is fine — only permuters fire
        let read = "fn f(log: &MutationLog) { for m in log.ops.iter() { use_op(m); } }";
        assert!(unsuppressed(read, "crates/framework/src/checkers.rs")
            .iter()
            .all(|f| f.rule != "R9"));
    }

    #[test]
    fn r10_flags_reevaluation_of_query_batches() {
        let src = r#"
            fn serve(doc: &Doc, queries: &[XPathExpr]) {
                for e in queries {
                    let rows = doc.evaluate(e);
                }
            }
        "#;
        let f = unsuppressed(src, "crates/framework/src/checkers.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R10").count(), 1, "{f:?}");
        // `exprs` is a query-batch receiver too, test code included
        let alt = "fn f() { for e in &exprs { doc.evaluate(e); } }";
        let f = unsuppressed(alt, "crates/encoding/tests/t.rs");
        assert_eq!(f.iter().filter(|f| f.rule == "R10").count(), 1);
        // the cache itself and its measured baseline are exempt
        assert!(unsuppressed(src, "crates/framework/src/querycache.rs")
            .iter()
            .all(|f| f.rule != "R10"));
        assert!(
            unsuppressed(src, "crates/bench/src/bin/bench_incremental_queries.rs")
                .iter()
                .all(|f| f.rule != "R10")
        );
        // outside the R2 crate set the rule does not apply
        assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
    }

    #[test]
    fn r10_leaves_single_evaluations_and_other_loops_alone() {
        // a one-off evaluation outside a query-batch loop is fine
        let single = "fn f() { let rows = doc.evaluate(&expr); }";
        assert!(unsuppressed(single, "crates/framework/src/checkers.rs").is_empty());
        // a loop over something else is not a query batch
        let other = "fn f() { for x in items { doc.evaluate(&x.expr); } }";
        assert!(unsuppressed(other, "crates/framework/src/checkers.rs").is_empty());
        // `evaluate` as a plain ident (fn name, local) is not a call site
        let def = "fn evaluate_all(queries: &[Q]) { for q in queries { run(q); } }";
        assert!(unsuppressed(def, "crates/framework/src/checkers.rs").is_empty());
        // an explicit lint:allow covers an oracle that must pay full cost
        let allowed = "fn f() { for e in &exprs {\n    // lint:allow(R10): oracle\n    doc.evaluate(e);\n} }";
        let (f, unused) = check_source(allowed, &lib_ctx("crates/framework/tests/t.rs"));
        assert!(f.iter().all(|f| !f.is_unsuppressed()), "{f:?}");
        assert!(unused.is_empty());
    }

    #[test]
    fn r12_flags_raw_script_ops_in_test_code_only() {
        let src = "fn t() { let op = ScriptOp::InsertBefore(3); }";
        // ordinary test code in the R2 crate set is flagged
        for path in ["crates/framework/tests/a.rs", "crates/flux/tests/a.rs", "tests/a.rs"] {
            let f = unsuppressed(src, path);
            assert_eq!(f.iter().filter(|f| f.rule == "R12").count(), 1, "{path}: {f:?}");
        }
        // library code may construct and match ops — that is its job
        assert!(unsuppressed(src, "crates/workloads/src/script.rs").is_empty());
        assert!(unsuppressed(src, "crates/framework/src/driver.rs").is_empty());
        // the workloads crate's own tests exercise the generator surface
        assert!(unsuppressed(src, "crates/workloads/tests/t.rs").is_empty());
        // the reference differential drivers are the executable spec
        for path in R12_EXEMPT_PATHS {
            assert!(unsuppressed(src, path).iter().all(|f| f.rule != "R12"), "{path}");
        }
        // outside the R2 crate set the rule does not apply
        assert!(unsuppressed(src, "crates/testkit/tests/t.rs").is_empty());
        // `ScriptOp` as a bare ident (imports, type positions) is fine
        let import = "use xupd_workloads::{Script, ScriptOp}; fn t(op: &ScriptOp) {}";
        assert!(unsuppressed(import, "crates/framework/tests/a.rs").is_empty());
    }

    #[test]
    fn flux_is_in_the_result_feeding_crate_sets() {
        assert!(R1_CRATES.contains(&"flux"));
        assert!(R2_CRATES.contains(&"flux"));
        // and therefore R1 fires on panic paths in its library code
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(unsuppressed(src, "crates/flux/src/a.rs").len(), 1);
    }

    #[test]
    fn suppression_covers_next_line_and_is_counted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(R1): caller checked is_some\n    x.unwrap()\n}";
        let (f, unused) = check_source(src, &lib_ctx("crates/xmldom/src/a.rs"));
        assert_eq!(f.len(), 1);
        assert!(!f[0].is_unsuppressed());
        assert!(unused.is_empty());
    }

    #[test]
    fn wrong_rule_suppression_does_not_cover() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(R2): wrong rule\n    x.unwrap()\n}";
        let (f, unused) = check_source(src, &lib_ctx("crates/xmldom/src/a.rs"));
        assert!(f[0].is_unsuppressed());
        assert_eq!(unused.len(), 1);
    }
}
