//! `xupd-lint` — in-repo static analysis for the xml-update-props
//! workspace.
//!
//! The reproduction's currency is exact, seed-deterministic agreement
//! with the paper's matrix and figures. This crate *statically* enforces
//! the invariants that make that possible, in the spirit of Flux-style
//! static checking of XML updates (Cheney 2008): rather than observing
//! nondeterminism or panics at runtime, the tree is scanned for the
//! constructs that could introduce them.
//!
//! Nine rules (see [`rules`] for the table): no panic paths in library
//! code (R1), no hash-ordered collections in result-producing crates
//! (R2), no ambient clocks or entropy outside `testkit::bench` (R3), no
//! incomplete `LabelingScheme` impls (R4), no `unsafe` anywhere (R5), no
//! per-op full-tree `.preorder()` rebuilds (R6), no raw thread spawns
//! outside the `xupd-exec` pool crate (R7), no direct structural tree
//! mutation inside per-op replay loops (R8), and no hand permutation of
//! mutation-log op vectors outside the analyzer's certified paths (R9).
//!
//! A finding can be acknowledged in place with a justified suppression:
//!
//! ```text
//! // lint:allow(R1): length checked two lines above
//! ```
//!
//! The suppression must name the rule and give a justification; it covers
//! its own line and the next. The tool counts and prints every
//! suppression, and warns about stale ones.
//!
//! Run it over the whole workspace with:
//!
//! ```text
//! cargo run -p xupd-lint -- --workspace
//! ```
//!
//! which also writes a machine-readable summary to `results/LINT.json`
//! and exits non-zero if any unsuppressed finding remains.

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{check_workspace, find_workspace_root, WorkspaceReport};
pub use rules::{check_source, FileCtx, Finding};
