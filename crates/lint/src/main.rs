//! CLI for `xupd-lint`.
//!
//! ```text
//! xupd-lint --workspace             lint every .rs file in the workspace,
//!                                   write results/LINT.json, exit 1 on
//!                                   any unsuppressed finding
//! xupd-lint [--json PATH] FILES...  lint specific files
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use xupd_lint::report::{check_file_source, check_workspace, find_workspace_root, WorkspaceReport};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut workspace = false;
    let mut json_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: xupd-lint --workspace | xupd-lint [--json PATH] FILES...");
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => {
                eprintln!("error: unknown flag {a}");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(a)),
        }
    }

    let report = if workspace {
        let cwd = match env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot determine current directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        match check_workspace(&root) {
            Ok(rep) => {
                if json_path.is_none() {
                    json_path = Some(root.join("results").join("LINT.json"));
                }
                rep
            }
            Err(e) => {
                eprintln!("error: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("usage: xupd-lint --workspace | xupd-lint [--json PATH] FILES...");
        return ExitCode::from(2);
    } else {
        let mut rep = WorkspaceReport::default();
        for f in &files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            };
            check_file_source(&src, &f.to_string_lossy().replace('\\', "/"), &mut rep);
        }
        rep
    };

    print!("{}", report.render_text());
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, report.render_json()) {
            eprintln!("error: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", p.display());
    }

    if report.unsuppressed_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
