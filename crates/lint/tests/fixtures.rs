//! Fixture tests for every lint rule: a positive fixture that must
//! produce a finding, a suppressed fixture that must be covered by its
//! `lint:allow`, and a clean fixture that must pass — plus end-to-end
//! runs of the `xupd-lint` binary and a self-check that the workspace
//! itself is lint-clean.
//!
//! The fixtures live in string literals, not on-disk `.rs` files: the
//! lexer never looks inside strings, so the violating constructs here
//! are invisible to the workspace scan that the self-check performs.

use std::path::Path;
use std::process::Command;
use xupd_lint::{check_source, check_workspace, find_workspace_root, FileCtx, Finding};

/// A library path in an R1+R2 crate — the strictest context.
const LIB_PATH: &str = "crates/xmldom/src/fixture.rs";
/// A test path — R1/R2 exempt, R3/R5 still apply.
const TEST_PATH: &str = "crates/testkit/tests/fixture.rs";

fn all(src: &str, path: &str) -> Vec<Finding> {
    check_source(src, &FileCtx::classify(path)).0
}

fn unsuppressed(src: &str, path: &str) -> Vec<Finding> {
    all(src, path)
        .into_iter()
        .filter(Finding::is_unsuppressed)
        .collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_positive_unwrap_in_library_code() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let f = unsuppressed(src, LIB_PATH);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "R1");
    assert_eq!(f[0].line, 1);
}

#[test]
fn r1_positive_panic_macro() {
    let src = "pub fn f() { panic!(\"boom\") }";
    let f = unsuppressed(src, LIB_PATH);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "R1");
}

#[test]
fn r1_suppressed() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    // lint:allow(R1): caller guarantees is_some\n    x.unwrap()\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(LIB_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed(), "covered by the allow");
    assert_eq!(
        findings[0].suppressed_by.as_deref(),
        Some("caller guarantees is_some")
    );
    assert!(unused.is_empty(), "the suppression is not stale");
}

#[test]
fn r1_clean() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }";
    assert!(unsuppressed(src, LIB_PATH).is_empty());
    // the same panic is fine in test code
    let panicky = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    assert!(unsuppressed(panicky, TEST_PATH).is_empty());
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_positive_hashmap() {
    let src = "use std::collections::HashMap;\npub struct S { m: HashMap<u8, u8> }";
    let f = unsuppressed(src, LIB_PATH);
    assert_eq!(f.len(), 2, "use + field: {f:?}");
    assert!(f.iter().all(|f| f.rule == "R2"));
}

#[test]
fn r2_suppressed() {
    let src = "// lint:allow(R2): never iterated, lookup only\nuse std::collections::HashSet;";
    let (findings, unused) = check_source(src, &FileCtx::classify(LIB_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r2_clean() {
    let src = "use std::collections::BTreeMap;\npub struct S { m: BTreeMap<u8, u8> }";
    assert!(unsuppressed(src, LIB_PATH).is_empty());
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_positive_instant_even_in_tests() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    for path in [LIB_PATH, TEST_PATH] {
        let f = unsuppressed(src, path);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert_eq!(f[0].rule, "R3");
    }
}

#[test]
fn r3_suppressed() {
    let src = "fn f() {\n    // lint:allow(R3): coarse timeout, not in any result\n    let t = std::time::Instant::now();\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(LIB_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r3_clean_in_bench_harness() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(unsuppressed(src, "crates/testkit/src/bench.rs").is_empty());
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_positive_todo_in_scheme_impl() {
    let src = "impl LabelingScheme for Foo {\n    fn level(&self, _a: &L) -> Option<u32> { todo!() }\n}";
    let f = unsuppressed(src, "crates/schemes/src/foo.rs");
    assert!(f.iter().any(|f| f.rule == "R4"), "{f:?}");
}

#[test]
fn r4_suppressed() {
    // todo! in a scheme impl fires both R4 and R1, so it needs one allow
    // per rule: R4 on the line above, R1 trailing on the line itself
    // (a suppression covers its own line and the next).
    let src = "impl LabelingScheme for Foo {\n    // lint:allow(R4): stub pending follow-up issue\n    fn level(&self, _a: &L) -> Option<u32> { todo!() } // lint:allow(R1): same stub\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify("crates/schemes/src/foo.rs"));
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings.iter().all(|f| !f.is_unsuppressed()),
        "both rules covered: {findings:?}"
    );
    assert!(unused.is_empty());
}

#[test]
fn r4_clean_outside_scheme_impl() {
    let src = "impl Display for Foo { fn fmt(&self) { } }";
    assert!(all(src, "crates/schemes/src/foo.rs")
        .iter()
        .all(|f| f.rule != "R4"));
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_positive_unsafe_even_in_tests() {
    let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
    for path in [LIB_PATH, TEST_PATH] {
        let f = unsuppressed(src, path);
        assert!(
            f.iter().any(|f| f.rule == "R5"),
            "{path}: unsafe must always flag: {f:?}"
        );
    }
}

#[test]
fn r5_suppressed() {
    let src = "// lint:allow(R5): audited, required for FFI\nfn f() { unsafe { } }";
    let (findings, unused) = check_source(src, &FileCtx::classify(TEST_PATH));
    let r5: Vec<_> = findings.iter().filter(|f| f.rule == "R5").collect();
    assert_eq!(r5.len(), 1);
    assert!(!r5[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r5_clean() {
    let src = "pub fn f() -> u8 { 7 }";
    assert!(unsuppressed(src, TEST_PATH).is_empty());
}

// ---------------------------------------------------------------- R6

/// A framework path: R6 applies even under tests/ (reference replay
/// drivers must opt out explicitly).
const DRIVER_TEST_PATH: &str = "crates/framework/tests/fixture.rs";

#[test]
fn r6_positive_preorder_rebuild_in_per_op_loop() {
    let src = "fn run(script: &Script) {\n    for op in script.ops.iter() {\n        let pool: Vec<NodeId> = tree.preorder().collect();\n    }\n}";
    for path in ["crates/framework/src/driver.rs", DRIVER_TEST_PATH] {
        let f = unsuppressed(src, path);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert_eq!(f[0].rule, "R6");
    }
}

#[test]
fn r6_suppressed() {
    let src = "fn run(script: &Script) {\n    for op in script.ops.iter() {\n        // lint:allow(R6): reference driver kept for differential testing\n        let pool: Vec<NodeId> = tree.preorder().collect();\n    }\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(DRIVER_TEST_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r6_clean() {
    // subtree-proportional traversal inside the loop is legal
    let sub = "fn run(script: &Script) {\n    for op in script.ops.iter() {\n        for d in tree.preorder_from(node) { labeling.remove(d); }\n    }\n}";
    assert!(unsuppressed(sub, DRIVER_TEST_PATH).is_empty());
    // one-time pool build outside any per-op loop is legal
    let build = "fn build(tree: &XmlTree) { let v: Vec<_> = tree.preorder().collect(); }";
    assert!(unsuppressed(build, "crates/framework/src/driver.rs").is_empty());
    // outside the R2 crate set the rule does not apply at all
    let src = "fn run(script: &Script) {\n    for op in script.ops.iter() {\n        let pool: Vec<NodeId> = tree.preorder().collect();\n    }\n}";
    assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
}

// ---------------------------------------------------------------- R9

#[test]
fn r9_positive_sorting_an_op_vector() {
    let src = "fn canonical(log: &mut MutationLog) {\n    log.ops.sort_by_key(|m| rank(m));\n}";
    for path in ["crates/framework/src/planner.rs", DRIVER_TEST_PATH] {
        let f = unsuppressed(src, path);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert_eq!(f[0].rule, "R9");
        assert_eq!(f[0].line, 2);
    }
}

#[test]
fn r9_positive_splitting_an_op_vector() {
    let src = "fn shard(mut ops: Vec<Mutation>) -> Vec<Mutation> { ops.split_off(4) }";
    let f = unsuppressed(src, "crates/bench/src/lib.rs");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "R9");
}

#[test]
fn r9_suppressed() {
    let src = "fn scramble(mut ops: Vec<Mutation>) {\n    // lint:allow(R9): adversarial fixture exercising divergence on purpose\n    ops.reverse();\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(DRIVER_TEST_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r9_clean() {
    // the analyzer itself implements the certified reorder — exempt
    let src = "fn canonical(log: &mut MutationLog) {\n    log.ops.sort_by_key(|m| rank(m));\n}";
    assert!(unsuppressed(src, "crates/framework/src/analysis.rs").is_empty());
    assert!(unsuppressed(src, "crates/framework/src/mutations.rs").is_empty());
    // reading the op vector is always fine
    let read = "fn f(log: &MutationLog) { let n = log.ops.len(); }";
    assert!(unsuppressed(read, "crates/framework/src/planner.rs").is_empty());
    // permuting a non-log vector is always fine
    let other = "fn f(mut names: Vec<String>) { names.sort(); }";
    assert!(unsuppressed(other, "crates/framework/src/planner.rs").is_empty());
}

// ---------------------------------------------------------------- R10

#[test]
fn r10_positive_reevaluating_a_query_batch() {
    let src = "fn serve(doc: &Doc) {\n    for e in &queries {\n        let rows = doc.evaluate(e);\n    }\n}";
    for path in ["crates/framework/src/planner.rs", DRIVER_TEST_PATH] {
        let f = unsuppressed(src, path);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert_eq!(f[0].rule, "R10");
        assert_eq!(f[0].line, 3);
    }
}

#[test]
fn r10_suppressed() {
    let src = "fn oracle(doc: &Doc) {\n    for e in &exprs {\n        // lint:allow(R10): differential oracle must pay full re-evaluation\n        let rows = doc.evaluate(e);\n    }\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(DRIVER_TEST_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r10_clean() {
    let src = "fn serve(doc: &Doc) {\n    for e in &queries {\n        let rows = doc.evaluate(e);\n    }\n}";
    // the cache itself implements the sanctioned evaluation path
    assert!(unsuppressed(src, "crates/framework/src/querycache.rs").is_empty());
    // the bench's re-evaluate client is the measured counter-example
    assert!(unsuppressed(src, "crates/bench/src/bin/bench_incremental_queries.rs").is_empty());
    // a single evaluation outside a query-batch loop is fine
    let single = "fn f(doc: &Doc) { let rows = doc.evaluate(&expr); }";
    assert!(unsuppressed(single, "crates/framework/src/planner.rs").is_empty());
    // a loop over something else is not a query batch
    let other = "fn f(doc: &Doc) { for s in &shards { doc.evaluate(&s.expr); } }";
    assert!(unsuppressed(other, "crates/framework/src/planner.rs").is_empty());
    // outside the R2 crate set the rule does not apply at all
    assert!(unsuppressed(src, "crates/testkit/src/x.rs").is_empty());
}

// ---------------------------------------------------------------- R11

#[test]
fn r11_positive_writer_lane_bypass() {
    let src = "fn poke(store: &Store<Qed>) {\n    let slot = store.doc_mut(3);\n}";
    for path in ["crates/framework/src/planner.rs", DRIVER_TEST_PATH, "tests/fixture.rs"] {
        let f = unsuppressed(src, path);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert_eq!(f[0].rule, "R11");
        assert_eq!(f[0].line, 2);
    }
}

#[test]
fn r11_suppressed() {
    let src = "fn poke(store: &Store<Qed>) {\n    // lint:allow(R11): white-box assertion on slot internals\n    let slot = store.doc_mut(3);\n}";
    let (findings, unused) = check_source(src, &FileCtx::classify(DRIVER_TEST_PATH));
    assert_eq!(findings.len(), 1);
    assert!(!findings[0].is_unsuppressed());
    assert!(unused.is_empty());
}

#[test]
fn r11_clean() {
    // the store crate itself owns the seam
    let src = "fn poke(store: &Store<Qed>) {\n    let slot = store.doc_mut(3);\n}";
    assert!(unsuppressed(src, "crates/store/src/replay.rs").is_empty());
    assert!(unsuppressed(src, "crates/store/tests/t.rs").is_empty());
    // the lane APIs are the sanctioned mutation path
    let lane = "fn run(store: &Store<Qed>) { store.apply_script(3, &script); store.serve_query(3, 0); }";
    assert!(unsuppressed(lane, "crates/framework/src/planner.rs").is_empty());
    // `doc_mut` as a definition or plain ident is not a call site
    let def = "fn doc_mut(n: usize) -> usize { n }";
    assert!(unsuppressed(def, "crates/framework/src/planner.rs").is_empty());
}

// ------------------------------------------------- JSON findings shape

/// The machine-readable findings schema is stable: file/line/col/rule/
/// message/snippet, in that key order, one object per line.
#[test]
fn json_findings_schema_is_stable() {
    use xupd_lint::report::{check_file_source, WorkspaceReport};
    let mut rep = WorkspaceReport::default();
    check_file_source(
        "fn f(mut ops: Vec<Mutation>) { ops.reverse(); }",
        "crates/framework/src/planner.rs",
        &mut rep,
    );
    assert_eq!(rep.unsuppressed_count(), 1);
    let json = rep.render_json();
    let expected = "    {\"file\": \"crates/framework/src/planner.rs\", \"line\": 1, \
                    \"col\": 36, \"rule\": \"R9\", \"message\": \".reverse() permutes a \
                    mutation-log op vector; reorder only through a framework::analysis \
                    certificate\", \"snippet\": \"fn f(mut ops: Vec<Mutation>) { ops.reverse(); }\"}";
    assert!(
        json.contains(expected),
        "stable finding object shape:\n{json}"
    );
    assert!(json.contains("\"R9\": {\"name\": \"no-unanalyzed-reorder\""), "{json}");
}

// -------------------------------------------------- stale suppressions

#[test]
fn stale_suppression_is_reported_not_silently_dropped() {
    let src = "// lint:allow(R1): nothing here panics anymore\npub fn f() -> u8 { 7 }";
    let (findings, unused) = check_source(src, &FileCtx::classify(LIB_PATH));
    assert!(findings.is_empty());
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].rule, "R1");
}

// ------------------------------------------------- binary end-to-end

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xupd-lint"))
}

fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).expect("target tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn binary_fails_on_seeded_violation() {
    // R5 applies regardless of path classification, so a seeded unsafe
    // block must make the tool exit non-zero.
    let bad = tmp_file("seeded_violation.rs", "pub fn f() { unsafe { } }\n");
    let out = lint_bin().arg(&bad).output().expect("run xupd-lint");
    assert!(
        !out.status.success(),
        "seeded violation must fail the lint: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R5"), "{stdout}");
    assert!(stdout.contains("1 unsuppressed finding"), "{stdout}");
}

#[test]
fn binary_passes_clean_file() {
    let ok = tmp_file("seeded_clean.rs", "pub fn f() -> u8 { 7 }\n");
    let out = lint_bin().arg(&ok).output().expect("run xupd-lint");
    assert!(
        out.status.success(),
        "clean file must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_passes_suppressed_finding_and_prints_ledger() {
    let sup = tmp_file(
        "seeded_suppressed.rs",
        "// lint:allow(R5): fixture exercising the suppression ledger\npub fn f() { unsafe { } }\n",
    );
    let out = lint_bin().arg(&sup).output().expect("run xupd-lint");
    assert!(
        out.status.success(),
        "suppressed finding must not fail the lint: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("suppressed findings (1)"), "{stdout}");
    assert!(
        stdout.contains("fixture exercising the suppression ledger"),
        "justification is printed: {stdout}"
    );
}

// -------------------------------------------------------- self-check

/// The workspace itself must be lint-clean: zero unsuppressed findings
/// and zero stale suppressions. This is the in-tree twin of the
/// `scripts/ci.sh` gating step.
#[test]
fn workspace_self_check_is_clean() {
    let root =
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("inside the workspace");
    let report = check_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "sanity: whole tree was scanned");
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "unsuppressed findings:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_suppressions.is_empty(),
        "stale lint:allow comments:\n{}",
        report.render_text()
    );
}

/// The binary agrees with the library self-check: `--workspace` exits 0
/// on this tree and writes the JSON summary where it is told to.
#[test]
fn binary_workspace_run_is_green() {
    let root =
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("inside the workspace");
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_selfcheck.json");
    let out = lint_bin()
        .arg("--workspace")
        .arg("--json")
        .arg(&json)
        .current_dir(&root)
        .output()
        .expect("run xupd-lint --workspace");
    assert!(
        out.status.success(),
        "workspace must be lint-clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let summary = std::fs::read_to_string(&json).expect("JSON summary written");
    assert!(summary.contains("\"findings_unsuppressed\": 0"), "{summary}");
}
