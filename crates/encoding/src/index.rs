//! A name index over the encoding table — the classic accompaniment to a
//! labelling scheme in an XML repository (§2.3: the encoding scheme
//! stores whatever "extra information" the workload justifies, trading
//! update cost for query speed).
//!
//! The index maps element/attribute names to their rows in document
//! order, so a `//name` query becomes one hash lookup plus an ancestry
//! filter over the scheme's label algebra — instead of a full table
//! scan. It must be rebuilt (or maintained) across updates, which is
//! precisely the "slower update performance" §2.3 warns the designer
//! about; the benchmarks quantify the other side of the trade.

use crate::table::EncodedDocument;
use std::collections::BTreeMap;
use xupd_labelcore::LabelingScheme;
use xupd_xmldom::NodeKind;

/// Element and attribute name index: name → row indices in document
/// order.
/// `BTreeMap` rather than `HashMap` so that iteration over the index is
/// deterministic (lint rule R2) — anything feeding golden outputs must
/// not depend on hash order.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    elements: BTreeMap<String, Vec<usize>>,
    attributes: BTreeMap<String, Vec<usize>>,
}

impl NameIndex {
    /// Build the index over an encoded document in one pass.
    pub fn build<S: LabelingScheme>(doc: &EncodedDocument<S>) -> Self {
        Self::from_kinds((0..doc.len()).map(|i| &doc.row(i).kind))
    }

    /// Build the index from per-row node kinds in document order — the
    /// form [`EncodedDocument::encode`] uses so the table can carry its
    /// own index.
    pub fn from_kinds<'a>(kinds: impl Iterator<Item = &'a NodeKind>) -> Self {
        let mut idx = NameIndex::default();
        for (i, kind) in kinds.enumerate() {
            if let Some(name) = kind.name() {
                if kind.is_element() {
                    idx.elements.entry(name.to_string()).or_default().push(i);
                } else if kind.is_attribute() {
                    idx.attributes.entry(name.to_string()).or_default().push(i);
                }
            }
        }
        idx
    }

    /// All element rows with this name, in document order.
    pub fn elements(&self, name: &str) -> &[usize] {
        self.elements.get(name).map_or(&[], Vec::as_slice)
    }

    /// All attribute rows with this name, in document order.
    pub fn attributes(&self, name: &str) -> &[usize] {
        self.attributes.get(name).map_or(&[], Vec::as_slice)
    }

    /// `//name` under a context row: the indexed rows intersected with
    /// the context's pre-order extent range via two binary searches —
    /// a point lookup plus O(log bucket + answer), no table scan.
    pub fn descendants_named<S: LabelingScheme>(
        &self,
        doc: &EncodedDocument<S>,
        context: usize,
        name: &str,
    ) -> Vec<usize> {
        let bucket = self.elements(name);
        let range = doc.descendant_range(context);
        let lo = bucket.partition_point(|&i| i < range.start);
        let hi = bucket.partition_point(|&i| i < range.end);
        bucket[lo..hi].to_vec()
    }

    /// The element rows named `name` inside the half-open row range
    /// `start..end` — the bucket∩extent intersection as a borrowed
    /// slice, two binary searches, no allocation. This is the primitive
    /// the incremental query cache's impact analysis runs per touched
    /// extent.
    pub fn elements_in_range(&self, name: &str, start: usize, end: usize) -> &[usize] {
        Self::slice_in_range(self.elements(name), start, end)
    }

    /// The attribute rows named `name` inside `start..end`.
    pub fn attributes_in_range(&self, name: &str, start: usize, end: usize) -> &[usize] {
        Self::slice_in_range(self.attributes(name), start, end)
    }

    fn slice_in_range(bucket: &[usize], start: usize, end: usize) -> &[usize] {
        let lo = bucket.partition_point(|&i| i < start);
        let hi = bucket.partition_point(|&i| i < end);
        &bucket[lo..hi]
    }

    /// Number of distinct indexed element names.
    pub fn distinct_element_names(&self) -> usize {
        self.elements.len()
    }

    /// Every indexed element name with its occurrence count, in the
    /// index's iteration order — lexicographic, because the backing map
    /// is a `BTreeMap` (pinned by a golden test; lint rule R2).
    pub fn element_names(&self) -> impl Iterator<Item = (&str, usize)> {
        self.elements.iter().map(|(k, v)| (k.as_str(), v.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xpath;
    use crate::table::EncodedDocument;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::docs;

    #[test]
    fn index_matches_scan() {
        let tree = docs::xmark_like(11, 60);
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let idx = NameIndex::build(&doc);
        // indexed //item == evaluator //item
        let via_index = idx.descendants_named(&doc, doc.root(), "item");
        let via_xpath = parse_xpath("//item").unwrap().evaluate(&doc);
        assert_eq!(via_index, via_xpath);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn scoped_lookup_filters_by_ancestry() {
        let tree = docs::xmark_like(11, 60);
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let idx = NameIndex::build(&doc);
        // names exist under both /site/regions items and /site/people
        let all_names = idx.elements("name").len();
        let people = parse_xpath("/site/people").unwrap().evaluate(&doc)[0];
        let people_names = idx.descendants_named(&doc, people, "name");
        assert!(!people_names.is_empty());
        assert!(people_names.len() < all_names, "scoping filtered some");
        // agreement with the evaluator on the scoped query
        let via_xpath = parse_xpath("/site/people//name").unwrap().evaluate(&doc);
        assert_eq!(people_names, via_xpath);
    }

    #[test]
    fn iteration_order_golden() {
        // The index iterates in BTreeMap (lexicographic) order — never
        // hash order. Pin the exact sequence for the Figure 1 document so
        // any regression to an order-unspecified map fails loudly.
        let tree = docs::book();
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let idx = NameIndex::build(&doc);
        let names: Vec<(&str, usize)> = idx.element_names().collect();
        assert_eq!(
            names,
            vec![
                ("address", 1),
                ("author", 1),
                ("book", 1),
                ("edition", 1),
                ("editor", 1),
                ("name", 1),
                ("publisher", 1),
                ("title", 1),
            ]
        );
    }

    #[test]
    fn range_lookups_match_filtering() {
        let tree = docs::xmark_like(11, 60);
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let idx = NameIndex::build(&doc);
        let all = idx.elements("name");
        assert!(!all.is_empty());
        let mid = doc.len() / 2;
        for (start, end) in [(0, doc.len()), (0, mid), (mid, doc.len()), (7, 9), (5, 5)] {
            let expect: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| start <= i && i < end)
                .collect();
            assert_eq!(idx.elements_in_range("name", start, end), expect);
        }
        assert!(idx.elements_in_range("missing", 0, doc.len()).is_empty());
        let attrs = idx.attributes("id");
        if let (Some(&first), Some(&last)) = (attrs.first(), attrs.last()) {
            assert_eq!(idx.attributes_in_range("id", first, last + 1), attrs);
        }
    }

    #[test]
    fn attribute_lookup() {
        let tree = docs::book();
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let idx = NameIndex::build(&doc);
        assert_eq!(idx.attributes("genre").len(), 1);
        assert_eq!(idx.attributes("year").len(), 1);
        assert!(idx.attributes("missing").is_empty());
        assert!(idx.elements("missing").is_empty());
        assert_eq!(idx.distinct_element_names(), 8);
    }
}
