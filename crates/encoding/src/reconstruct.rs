//! Reconstruction of the textual document from the encoding alone —
//! Definition 2 requires that "the XML encoding scheme should also permit
//! the full reconstruction of the textual XML document".

use crate::table::EncodedDocument;
use xupd_labelcore::LabelingScheme;
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Rebuild an [`XmlTree`] from the node table. Rows are in document
/// order, so a single forward pass with parent references reproduces the
/// exact tree; combined with [`xupd_xmldom::serialize_compact`] this
/// yields the textual document.
///
/// Errors only on a corrupt table (a parent reference that does not
/// precede its child); any table produced by
/// [`EncodedDocument::encode`] reconstructs cleanly.
pub fn reconstruct<S: LabelingScheme>(enc: &EncodedDocument<S>) -> Result<XmlTree, TreeError> {
    let mut tree = XmlTree::new();
    let mut id_of: Vec<NodeId> = Vec::with_capacity(enc.len());
    for i in 0..enc.len() {
        let row = enc.row(i);
        match row.parent {
            None => {
                // the document root row; already exists
                id_of.push(tree.root());
            }
            Some(p) => {
                let node = tree.create(row.kind.clone());
                tree.append_child(id_of[p], node)?;
                id_of.push(node);
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::EncodedDocument;
    use xupd_schemes::prefix::ordpath::OrdPath;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::docs;
    use xupd_xmldom::{parse, serialize_compact};

    #[test]
    fn figure1_round_trip() {
        let tree = docs::book();
        let original = serialize_compact(&tree);
        let enc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let back = reconstruct(&enc).unwrap();
        assert_eq!(serialize_compact(&back), original);
        back.validate().unwrap();
    }

    #[test]
    fn textual_parse_encode_reconstruct_round_trip() {
        let src = "<a x=\"1\"><b>text &amp; more</b><!--c--><d><e y='2'/></d></a>";
        let tree = parse(src).unwrap();
        let enc = EncodedDocument::encode(OrdPath::new(), &tree).unwrap();
        let back = reconstruct(&enc).unwrap();
        let out = serialize_compact(&back);
        assert_eq!(parse(&out).unwrap().len(), tree.len());
        assert_eq!(out, serialize_compact(&tree));
    }

    #[test]
    fn xmark_round_trip() {
        let tree = docs::xmark_like(3, 60);
        let enc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let back = reconstruct(&enc).unwrap();
        assert_eq!(serialize_compact(&back), serialize_compact(&tree));
    }
}
