//! A parser and evaluator for the XPath 1.0 subset the reproduction's
//! examples and benchmarks use.
//!
//! Supported grammar (location paths only):
//!
//! ```text
//! path     := '/'? step ( '/' step | '//' step )*   |  '//' step ...
//! step     := axis '::' test preds | '@' name preds | '..' | '.' | test preds
//! axis     := child | descendant | descendant-or-self | parent | ancestor
//!           | following | preceding | following-sibling | preceding-sibling
//!           | attribute | self
//! test     := name | '*' | 'text()' | 'node()'
//! preds    := ( '[' pred ']' )*
//! pred     := integer                (1-based position)
//!           | '@' name '=' '"' v '"' (attribute equality)
//! ```
//!
//! `//` between steps abbreviates `descendant-or-self::node()/` as in the
//! XPath spec. Results are node sets in document order with duplicates
//! eliminated — the behaviour §2.2 of the paper derives the uniqueness
//! requirement for labels from.

use crate::table::EncodedDocument;
use crate::topology::row_in_extents;
use std::fmt;
use xupd_labelcore::LabelingScheme;

/// XPath axes supported by the evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `following::`
    Following,
    /// `preceding::`
    Preceding,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `attribute::`
    Attribute,
    /// `self::`
    SelfAxis,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test (element or attribute name).
    Name(String),
    /// `*` — any element (or any attribute on the attribute axis).
    Any,
    /// `text()`.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// Step predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// `[k]` — 1-based position within the step's result for one context
    /// node.
    Position(usize),
    /// `[@name="value"]`.
    AttrEq(String, String),
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub preds: Vec<Pred>,
}

/// A parsed XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathExpr {
    steps: Vec<Step>,
}

/// XPath parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

fn err(m: impl Into<String>) -> XPathError {
    XPathError { message: m.into() }
}

/// Parse an absolute XPath location path.
pub fn parse_xpath(input: &str) -> Result<XPathExpr, XPathError> {
    let input = input.trim();
    if input.is_empty() {
        return Err(err("empty expression"));
    }
    if !input.starts_with('/') {
        return Err(err("only absolute paths are supported"));
    }
    let mut steps = Vec::new();
    let mut rest = input;
    while !rest.is_empty() {
        let descendant = if let Some(r) = rest.strip_prefix("//") {
            rest = r;
            true
        } else if let Some(r) = rest.strip_prefix('/') {
            rest = r;
            false
        } else {
            return Err(err(format!("expected '/' at '{rest}'")));
        };
        if rest.is_empty() {
            return Err(err("trailing '/'"));
        }
        let end = step_end(rest);
        let (raw_step, tail) = rest.split_at(end);
        rest = tail;
        if descendant {
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                preds: Vec::new(),
            });
        }
        steps.push(parse_step(raw_step)?);
    }
    Ok(XPathExpr { steps })
}

fn parse_step(raw: &str) -> Result<Step, XPathError> {
    let (head, preds) = split_predicates(raw)?;
    let preds = preds
        .into_iter()
        .map(|p| parse_pred(&p))
        .collect::<Result<Vec<_>, _>>()?;
    if head == ".." {
        return Ok(Step {
            axis: Axis::Parent,
            test: NodeTest::AnyNode,
            preds,
        });
    }
    if head == "." {
        return Ok(Step {
            axis: Axis::SelfAxis,
            test: NodeTest::AnyNode,
            preds,
        });
    }
    if let Some(name) = head.strip_prefix('@') {
        return Ok(Step {
            axis: Axis::Attribute,
            test: if name == "*" {
                NodeTest::Any
            } else {
                NodeTest::Name(name.to_string())
            },
            preds,
        });
    }
    let (axis, test_str) = match head.split_once("::") {
        Some((a, t)) => {
            let axis = match a {
                "child" => Axis::Child,
                "descendant" => Axis::Descendant,
                "descendant-or-self" => Axis::DescendantOrSelf,
                "parent" => Axis::Parent,
                "ancestor" => Axis::Ancestor,
                "following" => Axis::Following,
                "preceding" => Axis::Preceding,
                "following-sibling" => Axis::FollowingSibling,
                "preceding-sibling" => Axis::PrecedingSibling,
                "attribute" => Axis::Attribute,
                "self" => Axis::SelfAxis,
                other => return Err(err(format!("unknown axis '{other}'"))),
            };
            (axis, t)
        }
        None => (Axis::Child, head),
    };
    let test = match test_str {
        "*" => NodeTest::Any,
        "text()" => NodeTest::Text,
        "node()" => NodeTest::AnyNode,
        name if !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.') =>
        {
            NodeTest::Name(name.to_string())
        }
        other => return Err(err(format!("bad node test '{other}'"))),
    };
    Ok(Step { axis, test, preds })
}

/// Byte length of the leading location step of `rest`: everything up to
/// the first `/` that is neither inside a `[...]` predicate nor inside a
/// quoted predicate value (so `//item[@href="a/b"]/name` splits after
/// the closing `]`, not inside the URL).
fn step_end(rest: &str) -> usize {
    let mut quote: Option<char> = None;
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '"' | '\'' if depth > 0 => quote = Some(c),
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '/' if depth == 0 => return i,
                _ => {}
            },
        }
    }
    rest.len()
}

/// Index of the first unquoted `]` in `s` — a `]` inside a `"..."` or
/// `'...'` predicate value (e.g. `[@id="a]b"]`) is literal content, not
/// the predicate terminator.
fn find_closing_bracket(s: &str) -> Option<usize> {
    let mut quote: Option<char> = None;
    for (i, c) in s.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '"' | '\'' => quote = Some(c),
                ']' => return Some(i),
                _ => {}
            },
        }
    }
    None
}

fn split_predicates(raw: &str) -> Result<(&str, Vec<String>), XPathError> {
    match raw.find('[') {
        None => Ok((raw, Vec::new())),
        Some(i) => {
            let head = &raw[..i];
            let mut preds = Vec::new();
            let mut rest = &raw[i..];
            while !rest.is_empty() {
                if !rest.starts_with('[') {
                    return Err(err(format!("expected '[' at '{rest}'")));
                }
                let close = find_closing_bracket(rest).ok_or_else(|| err("missing ']'"))?;
                preds.push(rest[1..close].to_string());
                rest = &rest[close + 1..];
            }
            Ok((head, preds))
        }
    }
}

fn parse_pred(raw: &str) -> Result<Pred, XPathError> {
    let raw = raw.trim();
    if let Ok(k) = raw.parse::<usize>() {
        if k == 0 {
            return Err(err("positions are 1-based"));
        }
        return Ok(Pred::Position(k));
    }
    if let Some(rest) = raw.strip_prefix('@') {
        let (name, value) = rest
            .split_once('=')
            .ok_or_else(|| err(format!("bad predicate '{raw}'")))?;
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .or_else(|| value.strip_prefix('\'').and_then(|v| v.strip_suffix('\'')))
            .ok_or_else(|| err("predicate value must be quoted"))?;
        return Ok(Pred::AttrEq(name.trim().to_string(), value.to_string()));
    }
    Err(err(format!("unsupported predicate '{raw}'")))
}

impl XPathExpr {
    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Evaluate against an encoded document, returning row indices in
    /// document order, duplicates eliminated (§2.2: XPath operators
    /// "eliminate duplicate nodes from their result sequences based on
    /// node identity" and return document order).
    ///
    /// The evaluator streams: name-test steps on the `descendant`,
    /// `descendant-or-self` and `child` axes intersect [`NameIndex`]
    /// buckets with the context's pre-order extent range via binary
    /// search instead of enumerating the axis; every axis fills one
    /// reused scratch buffer per step (no per-context allocation); and
    /// the per-step `sort`+`dedup` is skipped whenever the contexts
    /// emitted their candidates in strictly increasing document order —
    /// the common case for downward axes over disjoint subtrees.
    ///
    /// [`NameIndex`]: crate::index::NameIndex
    pub fn evaluate<S: LabelingScheme>(&self, doc: &EncodedDocument<S>) -> Vec<usize> {
        eval_plan(&fuse_steps(&self.steps), doc, None)
    }

    /// Compile the reusable evaluation form: the fused step plan plus
    /// the static access pattern (distinct name tests, axis shape,
    /// predicate shape) that both the evaluator and the incremental
    /// query cache's impact analysis consume. Compiling once amortizes
    /// the per-call step fusion and name collection
    /// [`evaluate`](Self::evaluate) redoes on every invocation.
    pub fn access_pattern(&self) -> AccessPattern {
        AccessPattern::compile(&self.steps)
    }
}

/// The compiled, reusable form of an [`XPathExpr`]: the fused
/// evaluation plan plus the statically-derived facts a cache
/// invalidation layer needs — which element/attribute names the query
/// can ever touch, whether every step is downward (subtree-confined),
/// and whether a scoped re-evaluation inside touched extents is a sound
/// repair strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPattern {
    plan: Vec<Step>,
    element_names: Vec<String>,
    attribute_names: Vec<String>,
    downward_only: bool,
    repair_safe: bool,
    fully_named: bool,
    has_positional: bool,
}

impl AccessPattern {
    fn compile(steps: &[Step]) -> AccessPattern {
        let plan = fuse_steps(steps);
        let mut element_names = Vec::new();
        let mut attribute_names = Vec::new();
        let mut downward_only = true;
        let mut repair_safe = true;
        let mut fully_named = true;
        let mut has_positional = false;
        for step in &plan {
            if !matches!(
                step.axis,
                Axis::Child
                    | Axis::Descendant
                    | Axis::DescendantOrSelf
                    | Axis::Attribute
                    | Axis::SelfAxis
            ) {
                downward_only = false;
            }
            match (&step.test, step.axis) {
                (NodeTest::Name(n), Axis::Attribute) => attribute_names.push(n.clone()),
                (NodeTest::Name(n), _) => element_names.push(n.clone()),
                _ => fully_named = false,
            }
            for p in &step.preds {
                match p {
                    Pred::Position(_) => {
                        has_positional = true;
                        if matches!(step.axis, Axis::Descendant | Axis::DescendantOrSelf) {
                            // A `[k]` on a subtree-wide axis couples the
                            // selection to every matching descendant of
                            // the context: an edit inside a touched
                            // region can move the k-th pick to a node
                            // outside it, so scoped re-evaluation is not
                            // a sound repair for this query.
                            repair_safe = false;
                        }
                    }
                    Pred::AttrEq(name, _) => attribute_names.push(name.clone()),
                }
            }
        }
        repair_safe &= downward_only;
        element_names.sort();
        element_names.dedup();
        attribute_names.sort();
        attribute_names.dedup();
        AccessPattern {
            plan,
            element_names,
            attribute_names,
            downward_only,
            repair_safe,
            fully_named,
            has_positional,
        }
    }

    /// The fused evaluation plan.
    pub fn plan(&self) -> &[Step] {
        &self.plan
    }

    /// Distinct element names tested anywhere in the plan, sorted.
    pub fn element_names(&self) -> &[String] {
        &self.element_names
    }

    /// Distinct attribute names the plan reads (attribute-axis name
    /// tests and `[@name="v"]` predicates), sorted.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// Every step stays inside the context's subtree (child /
    /// descendant / descendant-or-self / attribute / self axes only).
    pub fn downward_only(&self) -> bool {
        self.downward_only
    }

    /// Is [`evaluate_within`](Self::evaluate_within) a sound repair for
    /// this query? True when the plan is downward-only and carries no
    /// positional predicate on a subtree-wide axis.
    pub fn repair_safe(&self) -> bool {
        self.repair_safe
    }

    /// Every plan step carries a concrete name test — the precondition
    /// for deciding impact from name occurrence alone.
    pub fn fully_named(&self) -> bool {
        self.fully_named
    }

    /// Any step carries a positional `[k]` predicate.
    pub fn has_positional(&self) -> bool {
        self.has_positional
    }

    /// Evaluate the compiled plan — identical results to
    /// [`XPathExpr::evaluate`], without re-fusing the steps.
    pub fn evaluate<S: LabelingScheme>(&self, doc: &EncodedDocument<S>) -> Vec<usize> {
        eval_plan(&self.plan, doc, None)
    }

    /// Evaluate the plan scoped to the sorted, disjoint half-open row
    /// intervals `extents`: returns exactly the members of the full
    /// result that fall inside `extents`, pruning every context whose
    /// subtree misses all of them.
    ///
    /// Sound only for [`repair_safe`](Self::repair_safe) patterns: with
    /// downward axes the chain from the root to any result inside an
    /// extent passes only through contexts whose subtrees overlap that
    /// extent, and per-context predicate scratch stays complete because
    /// pruning never drops candidates within one context's step.
    pub fn evaluate_within<S: LabelingScheme>(
        &self,
        doc: &EncodedDocument<S>,
        extents: &[(usize, usize)],
    ) -> Vec<usize> {
        if extents.is_empty() {
            return Vec::new();
        }
        eval_plan(&self.plan, doc, Some(extents))
    }
}

/// The streaming evaluator core shared by [`XPathExpr::evaluate`],
/// [`AccessPattern::evaluate`] and [`AccessPattern::evaluate_within`].
/// With `within` set, contexts whose subtree misses every interval are
/// pruned after each step and the final result keeps only rows inside
/// the intervals.
fn eval_plan<S: LabelingScheme>(
    plan: &[Step],
    doc: &EncodedDocument<S>,
    within: Option<&[(usize, usize)]>,
) -> Vec<usize> {
    {
        let topo = doc.topology();
        let index = doc.name_index();
        let mut context: Vec<usize> = vec![doc.root()];
        let mut scratch: Vec<usize> = Vec::new();
        for (si, step) in plan.iter().enumerate() {
            let mut next: Vec<usize> = Vec::new();
            let mut ordered = true;
            for &ctx in &context {
                scratch.clear();
                let mut pre_tested = false;
                match (step.axis, &step.test) {
                    // Indexed fast paths: the bucket holds exactly the
                    // element rows with this name, in document order.
                    (Axis::Descendant | Axis::DescendantOrSelf, NodeTest::Name(name)) => {
                        if step.axis == Axis::DescendantOrSelf
                            && test_matches(doc, ctx, step.axis, &step.test)
                        {
                            scratch.push(ctx);
                        }
                        let bucket = index.elements(name);
                        let range = topo.descendant_range(ctx);
                        let lo = bucket.partition_point(|&i| i < range.start);
                        let hi = bucket.partition_point(|&i| i < range.end);
                        scratch.extend_from_slice(&bucket[lo..hi]);
                        pre_tested = true;
                    }
                    (Axis::Child, NodeTest::Name(name)) => {
                        let bucket = index.elements(name);
                        let range = topo.descendant_range(ctx);
                        let lo = bucket.partition_point(|&i| i < range.start);
                        let hi = bucket.partition_point(|&i| i < range.end);
                        let kids = topo.children(ctx);
                        // Walk whichever side is smaller: the name
                        // bucket restricted to the subtree, or the CSR
                        // children slice.
                        if hi - lo <= kids.len() {
                            scratch.extend(
                                bucket[lo..hi]
                                    .iter()
                                    .copied()
                                    .filter(|&i| topo.parent(i) == Some(ctx)),
                            );
                            pre_tested = true;
                        } else {
                            scratch.extend_from_slice(kids);
                        }
                    }
                    _ => match step.axis {
                        Axis::Child => scratch.extend_from_slice(topo.children(ctx)),
                        Axis::Descendant => scratch.extend(topo.descendant_range(ctx)),
                        Axis::DescendantOrSelf => {
                            scratch.push(ctx);
                            scratch.extend(topo.descendant_range(ctx));
                        }
                        Axis::Parent => scratch.extend(topo.parent(ctx)),
                        Axis::Ancestor => {
                            // Root first = ascending row order.
                            let mut cur = topo.parent(ctx);
                            while let Some(p) = cur {
                                scratch.push(p);
                                cur = topo.parent(p);
                            }
                            scratch.reverse();
                        }
                        Axis::Following => scratch.extend(topo.extent(ctx)..doc.len()),
                        Axis::Preceding => {
                            scratch.extend((0..ctx).filter(|&j| topo.extent(j) <= ctx));
                        }
                        Axis::FollowingSibling => {
                            scratch.extend_from_slice(doc.following_siblings(ctx));
                        }
                        Axis::PrecedingSibling => {
                            scratch.extend_from_slice(doc.preceding_siblings(ctx));
                        }
                        Axis::Attribute => {
                            scratch.extend(
                                topo.children(ctx)
                                    .iter()
                                    .copied()
                                    .filter(|&j| doc.row(j).kind.is_attribute()),
                            );
                        }
                        Axis::SelfAxis => scratch.push(ctx),
                    },
                }
                if !pre_tested {
                    scratch.retain(|&i| test_matches(doc, i, step.axis, &step.test));
                }
                for pred in &step.preds {
                    match pred {
                        Pred::Position(k) => {
                            let kept = scratch.get(*k - 1).copied();
                            scratch.clear();
                            scratch.extend(kept);
                        }
                        Pred::AttrEq(name, value) => {
                            scratch
                                .retain(|&i| doc.attribute_value(i, name) == Some(value.as_str()));
                        }
                    }
                }
                for &c in &scratch {
                    if ordered {
                        if let Some(&last) = next.last() {
                            if c <= last {
                                ordered = false;
                            }
                        }
                    }
                    next.push(c);
                }
            }
            if !ordered {
                next.sort_unstable();
                next.dedup();
            }
            if let Some(extents) = within {
                if si + 1 == plan.len() {
                    next.retain(|&i| row_in_extents(extents, i));
                } else {
                    next.retain(|&i| topo.subtree_intersects(i, extents));
                }
            }
            context = next;
        }
        context
    }
}

/// Fuse the `//` shorthand's step pair for evaluation: a
/// `descendant-or-self::node()` step (no predicates) directly followed
/// by a `child::T` step collapses to `descendant::T` — the classic
/// XPath identity. A node's parent lies in *subtree-or-self* of some
/// context `c` exactly when the node lies in the strict subtree of `c`,
/// so the result set, document order and duplicates all match the
/// two-step form.
///
/// The fusion is skipped when the child step carries a positional
/// predicate: `[k]` counts within each parent's children, which the
/// fused form cannot reproduce. Attribute-equality predicates are
/// per-node and fuse safely. The parsed [`XPathExpr::steps`] are left
/// untouched — this is an evaluation plan, not a rewrite.
fn fuse_steps(steps: &[Step]) -> Vec<Step> {
    let mut plan = Vec::with_capacity(steps.len());
    let mut i = 0;
    while i < steps.len() {
        let s = &steps[i];
        if s.axis == Axis::DescendantOrSelf
            && s.test == NodeTest::AnyNode
            && s.preds.is_empty()
            && i + 1 < steps.len()
        {
            let next = &steps[i + 1];
            if next.axis == Axis::Child
                && !next.preds.iter().any(|p| matches!(p, Pred::Position(_)))
            {
                plan.push(Step {
                    axis: Axis::Descendant,
                    test: next.test.clone(),
                    preds: next.preds.clone(),
                });
                i += 2;
                continue;
            }
        }
        plan.push(s.clone());
        i += 1;
    }
    plan
}

fn test_matches<S: LabelingScheme>(
    doc: &EncodedDocument<S>,
    i: usize,
    axis: Axis,
    test: &NodeTest,
) -> bool {
    let kind = &doc.row(i).kind;
    match test {
        NodeTest::AnyNode => true,
        NodeTest::Text => kind.is_text(),
        NodeTest::Any => {
            if axis == Axis::Attribute {
                kind.is_attribute()
            } else {
                kind.is_element()
            }
        }
        NodeTest::Name(name) => {
            if axis == Axis::Attribute {
                kind.is_attribute() && kind.name() == Some(name)
            } else {
                kind.is_element() && kind.name() == Some(name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::EncodedDocument;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_workloads::docs;

    fn book() -> EncodedDocument<DeweyId> {
        EncodedDocument::encode(DeweyId::new(), &docs::book()).unwrap()
    }

    fn names<S: LabelingScheme>(doc: &EncodedDocument<S>, rows: &[usize]) -> Vec<String> {
        rows.iter()
            .map(|&i| doc.row(i).kind.name().unwrap_or("#text").to_string())
            .collect()
    }

    #[test]
    fn simple_child_path() {
        let doc = book();
        let r = parse_xpath("/book/publisher/editor/name")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["name"]);
        assert_eq!(doc.string_value(r[0]), "Destiny Image");
    }

    #[test]
    fn descendant_shorthand() {
        let doc = book();
        let r = parse_xpath("//name").unwrap().evaluate(&doc);
        assert_eq!(names(&doc, &r), ["name"]);
        let all = parse_xpath("//*").unwrap().evaluate(&doc);
        assert_eq!(all.len(), 8, "eight elements in the sample document");
    }

    #[test]
    fn attribute_axis_and_shorthand() {
        let doc = book();
        let r = parse_xpath("/book/title/@genre").unwrap().evaluate(&doc);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.row(r[0]).kind.value(), Some("Fantasy"));
        let r2 = parse_xpath("/book/title/attribute::*")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(r, r2);
    }

    #[test]
    fn predicates() {
        let doc = book();
        let r = parse_xpath("/book/publisher/editor/*[2]")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["address"]);
        let r = parse_xpath("//edition[@year=\"2004\"]")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["edition"]);
        let r = parse_xpath("//edition[@year=\"1999\"]")
            .unwrap()
            .evaluate(&doc);
        assert!(r.is_empty());
    }

    #[test]
    fn parent_ancestor_sibling_axes() {
        let doc = book();
        let r = parse_xpath("//address/..").unwrap().evaluate(&doc);
        assert_eq!(names(&doc, &r), ["editor"]);
        let r = parse_xpath("//address/ancestor::*").unwrap().evaluate(&doc);
        assert_eq!(names(&doc, &r), ["book", "publisher", "editor"]);
        let r = parse_xpath("//name/following-sibling::*")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["address"]);
        let r = parse_xpath("//address/preceding-sibling::*")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["name"]);
    }

    #[test]
    fn following_preceding_axes() {
        let doc = book();
        let r = parse_xpath("//author/following::*").unwrap().evaluate(&doc);
        assert_eq!(
            names(&doc, &r),
            ["publisher", "editor", "name", "address", "edition"]
        );
        let r = parse_xpath("//publisher/preceding::*")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["title", "author"]);
    }

    #[test]
    fn text_test() {
        let doc = book();
        let r = parse_xpath("/book/title/text()").unwrap().evaluate(&doc);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.row(r[0]).kind.value(), Some("Wayfarer"));
    }

    #[test]
    fn results_in_document_order_without_duplicates() {
        let doc = book();
        // both steps can reach the same nodes; dedup must apply
        let r = parse_xpath("//*/descendant-or-self::name")
            .unwrap()
            .evaluate(&doc);
        assert_eq!(names(&doc, &r), ["name"]);
        let r = parse_xpath("//*").unwrap().evaluate(&doc);
        for w in r.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bracket_inside_quoted_predicate_value() {
        // A ']' inside a quoted value is literal content, not the
        // predicate terminator (regression: it used to truncate the
        // predicate at 'a').
        let e = parse_xpath("//item[@id=\"a]b\"]").unwrap();
        let step = e.steps().last().unwrap();
        assert_eq!(step.preds, [Pred::AttrEq("id".into(), "a]b".into())]);
        let e = parse_xpath("//item[@id='x]y']").unwrap();
        let step = e.steps().last().unwrap();
        assert_eq!(step.preds, [Pred::AttrEq("id".into(), "x]y".into())]);
        // unterminated predicate still errors
        assert!(parse_xpath("//item[@id=\"a]b\"").is_err());
        assert!(parse_xpath("//item[@id=\"a]").is_err(), "quote never closes");
    }

    #[test]
    fn slash_inside_quoted_predicate_value() {
        // A '/' inside a quoted value or inside a predicate must not
        // split the step.
        let e = parse_xpath("//itemref[@href=\"a/b\"]/name").unwrap();
        let names: Vec<_> = e
            .steps()
            .iter()
            .filter_map(|s| match &s.test {
                NodeTest::Name(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["itemref", "name"]);
        let step = &e.steps()[e.steps().len() - 2];
        assert_eq!(step.preds, [Pred::AttrEq("href".into(), "a/b".into())]);
    }

    #[test]
    fn quoted_bracket_predicate_evaluates() {
        // End to end: an attribute value containing ']' is matchable.
        let mut tree = xupd_xmldom::XmlTree::new();
        let root = tree.create(xupd_xmldom::NodeKind::element("root"));
        tree.append_child(tree.root(), root).unwrap();
        let item = tree.create(xupd_xmldom::NodeKind::element("item"));
        tree.append_child(root, item).unwrap();
        let attr = tree.create(xupd_xmldom::NodeKind::attribute("id", "a]b"));
        tree.append_child(item, attr).unwrap();
        let doc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        let r = parse_xpath("//item[@id=\"a]b\"]").unwrap().evaluate(&doc);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.row(r[0]).kind.name(), Some("item"));
        let none = parse_xpath("//item[@id=\"a\"]").unwrap().evaluate(&doc);
        assert!(none.is_empty());
    }

    #[test]
    fn access_pattern_classification() {
        let p = parse_xpath("//item[@id=\"a\"]/name").unwrap().access_pattern();
        assert!(p.downward_only() && p.repair_safe() && p.fully_named());
        assert_eq!(p.element_names(), ["item", "name"]);
        assert_eq!(p.attribute_names(), ["id"]);
        assert!(!p.has_positional());

        let p = parse_xpath("//address/ancestor::*").unwrap().access_pattern();
        assert!(!p.downward_only() && !p.repair_safe());
        assert!(!p.fully_named(), "wildcard step");

        let p = parse_xpath("/book/publisher/editor/*[2]")
            .unwrap()
            .access_pattern();
        assert!(p.downward_only() && p.repair_safe() && p.has_positional());
        assert!(!p.fully_named());

        let p = parse_xpath("/book/descendant::editor[1]")
            .unwrap()
            .access_pattern();
        assert!(p.downward_only());
        assert!(!p.repair_safe(), "positional on a subtree-wide axis");
    }

    #[test]
    fn compiled_pattern_evaluates_identically_and_scopes() {
        let doc = book();
        for q in [
            "//name",
            "/book/publisher/editor/*[2]",
            "//edition[@year=\"2004\"]",
            "/book/title/text()",
            "//*",
            "//address/ancestor::*",
        ] {
            let e = parse_xpath(q).unwrap();
            assert_eq!(e.access_pattern().evaluate(&doc), e.evaluate(&doc), "{q}");
        }
        // scoped evaluation == full result intersected with the extents
        let e = parse_xpath("//name").unwrap();
        let pat = e.access_pattern();
        let full = e.evaluate(&doc);
        assert_eq!(pat.evaluate_within(&doc, &[(0, doc.len())]), full);
        assert!(pat.evaluate_within(&doc, &[]).is_empty());
        let topo = doc.topology();
        for &r in &full {
            assert_eq!(pat.evaluate_within(&doc, &[(r, topo.extent(r))]), [r]);
        }
        // an extent that misses every match scopes to nothing
        let title = parse_xpath("//title").unwrap().evaluate(&doc)[0];
        assert!(pat
            .evaluate_within(&doc, &[(title, topo.extent(title))])
            .is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("book").is_err(), "relative paths unsupported");
        assert!(parse_xpath("/book/").is_err());
        assert!(parse_xpath("/book/unknown-axis::x").is_err());
        assert!(parse_xpath("/book[0]").is_err(), "positions are 1-based");
        assert!(parse_xpath("/book[@a=b]").is_err(), "unquoted value");
        assert!(parse_xpath("/book[").is_err());
    }
}
