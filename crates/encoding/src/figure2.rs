//! The paper's Figure 2: the encoding table of the Figure 1 sample
//! document.
//!
//! Figure 2's rows cover only the ten labelled (element/attribute) nodes;
//! text leaves are folded into their parent's `Value` column — "Leaf
//! nodes will always contain content values and not structural
//! information and are thus, considered by the XML encoding scheme and
//! not the labelling scheme" (§3.1.1).

use xupd_xmldom::{NodeId, NodeKind, XmlTree};

/// One Figure 2 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure2Row {
    /// Preorder rank among labelled nodes.
    pub pre: u64,
    /// Postorder rank among labelled nodes.
    pub post: u64,
    /// `Element` or `Attribute`.
    pub node_type: String,
    /// Parent's preorder rank (None for the document element).
    pub parent_pre: Option<u64>,
    /// Element/attribute name.
    pub name: String,
    /// Folded text content (or attribute value).
    pub value: String,
}

/// Build the Figure 2 table for a document: pre/post ranks over the
/// labelled (element + attribute) nodes, direct text folded into `value`.
pub fn figure2_table(tree: &XmlTree) -> Vec<Figure2Row> {
    let labelled: Vec<NodeId> = tree
        .preorder()
        .filter(|&n| {
            let k = tree.kind(n);
            k.is_element() || k.is_attribute()
        })
        .collect();
    let is_labelled = |n: NodeId| {
        let k = tree.kind(n);
        k.is_element() || k.is_attribute()
    };
    let post_seq: Vec<NodeId> = tree.postorder().filter(|&n| is_labelled(n)).collect();
    // Dense rank tables (every labelled node appears in both sequences).
    let mut pre_rank = vec![0u64; tree.id_bound()];
    for (i, &id) in labelled.iter().enumerate() {
        pre_rank[id.index()] = i as u64;
    }
    let mut post_rank = vec![0u64; tree.id_bound()];
    for (i, &id) in post_seq.iter().enumerate() {
        post_rank[id.index()] = i as u64;
    }
    let pre_of = |n: NodeId| pre_rank[n.index()];
    let post_of = |n: NodeId| post_rank[n.index()];

    labelled
        .iter()
        .map(|&n| {
            let kind = tree.kind(n);
            let value = match kind {
                NodeKind::Attribute { value, .. } => value.clone(),
                _ => {
                    // fold DIRECT text children only (Figure 2 gives
                    // publisher an empty value even though its subtree
                    // contains text)
                    let mut v = String::new();
                    for c in tree.children(n) {
                        if let NodeKind::Text { value } = tree.kind(c) {
                            v.push_str(value);
                        }
                    }
                    v
                }
            };
            let parent_pre = tree.parent(n).filter(|&p| is_labelled(p)).map(pre_of);
            Figure2Row {
                pre: pre_of(n),
                post: post_of(n),
                node_type: kind.type_tag().to_string(),
                parent_pre,
                name: kind.name().unwrap_or("").to_string(),
                value,
            }
        })
        .collect()
}

/// Render the table in the paper's column layout.
pub fn render_figure2(rows: &[Figure2Row]) -> String {
    let mut out = String::new();
    out.push_str("Pre  Post  Node Type  Parent(Pre)  Name       Value\n");
    out.push_str("----------------------------------------------------------------\n");
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<5} {:<10} {:<12} {:<10} {}\n",
            r.pre,
            r.post,
            r.node_type,
            r.parent_pre.map(|p| p.to_string()).unwrap_or_default(),
            r.name,
            r.value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::{figure1_document, FIGURE2_ROWS};

    #[test]
    fn figure2_golden() {
        let tree = figure1_document();
        let rows = figure2_table(&tree);
        assert_eq!(rows.len(), 10);
        for (row, &(pre, post, ty, parent, name, value)) in rows.iter().zip(&FIGURE2_ROWS) {
            assert_eq!(row.pre, pre, "{name}");
            assert_eq!(row.post, post, "{name}");
            assert_eq!(row.node_type, ty, "{name}");
            assert_eq!(row.parent_pre, parent, "{name}");
            assert_eq!(row.name, name);
            assert_eq!(row.value, value, "{name}");
        }
    }

    #[test]
    fn render_contains_headline_cells() {
        let tree = figure1_document();
        let rows = figure2_table(&tree);
        let s = render_figure2(&rows);
        assert!(s.contains("book"));
        assert!(s.contains("Destiny Image"));
        assert!(s.contains("Attribute"));
    }
}
