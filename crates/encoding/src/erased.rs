//! Object-safe encoded documents and the scheme→document registry.
//!
//! [`EncodedDocument`] is generic over its scheme's label type, which
//! keeps every axis call statically dispatched — but means a battery
//! that encodes one document per roster scheme can't hold the results
//! in one collection. [`DynDocument`] erases the label type behind a
//! row-index-addressed surface (the same `usize` handles the typed API
//! uses), and [`document_registry`] / [`document_registry_figure7`]
//! expose one `fn(&XmlTree) -> Result<Box<dyn DynDocument>, TreeError>`
//! encoder per roster scheme — what the query benches, the CLI and the
//! topology differential suite fan out over.
//!
//! This module lives in `xupd-encoding` (not `xupd-schemes`) because
//! the encoding crate already depends on the schemes crate; the
//! document registry is generated from the same
//! `xupd_schemes::with_scheme_roster!` roster macro the scheme registry
//! uses, so the two can never drift.

use crate::reconstruct::reconstruct;
use crate::table::EncodedDocument;
use crate::xpath::XPathExpr;
use std::cmp::Ordering;
use xupd_labelcore::{Label, LabelingScheme, SchemeDescriptor};
use xupd_schemes::with_scheme_roster;
use xupd_xmldom::{NodeKind, TreeError, XmlTree};

/// Object-safe view of an encoded document. Node handles are row
/// indices in document order — identical to the typed
/// [`EncodedDocument`] API, so answers can be compared across schemes.
///
/// The `*_via_labels` / `*_via_scan` methods are the label-algebra
/// reference paths; the plain methods go through the `Topology`
/// sidecar. Differential suites diff the two.
pub trait DynDocument: Send {
    /// Name of the scheme this document is labelled under.
    fn scheme_name(&self) -> &'static str;
    /// Number of rows (nodes).
    fn len(&self) -> usize;
    /// True when the document has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The document root's row index (always 0).
    fn root(&self) -> usize;
    /// The node kind stored in row `i`.
    fn kind(&self, i: usize) -> &NodeKind;
    /// Parent row, `None` for the root.
    fn parent(&self, i: usize) -> Option<usize>;
    /// Depth from the root.
    fn depth(&self, i: usize) -> u32;
    /// Document-order comparison from the two rows' labels.
    fn cmp_doc(&self, a: usize, b: usize) -> Ordering;
    /// Ancestor test via the topology sidecar.
    fn is_ancestor(&self, a: usize, b: usize) -> bool;
    /// Ancestor test via the scheme's label algebra (parent-chain
    /// fallback when unsupported).
    fn is_ancestor_via_labels(&self, a: usize, b: usize) -> bool;
    /// Child rows (CSR slice).
    fn children(&self, i: usize) -> &[usize];
    /// Child rows via parent-column scan (reference path).
    fn children_via_scan(&self, i: usize) -> Vec<usize>;
    /// Descendant rows via the topology extent.
    fn descendants(&self, i: usize) -> Vec<usize>;
    /// Descendant rows via the label algebra (reference path).
    fn descendants_via_labels(&self, i: usize) -> Vec<usize>;
    /// Ancestor rows, root first.
    fn ancestors(&self, i: usize) -> Vec<usize>;
    /// Following rows via the topology extent.
    fn following(&self, i: usize) -> Vec<usize>;
    /// Following rows via the label algebra (reference path).
    fn following_via_labels(&self, i: usize) -> Vec<usize>;
    /// Preceding rows via the topology extent.
    fn preceding(&self, i: usize) -> Vec<usize>;
    /// Preceding rows via the label algebra (reference path).
    fn preceding_via_labels(&self, i: usize) -> Vec<usize>;
    /// Following-sibling rows (CSR slice).
    fn following_siblings(&self, i: usize) -> &[usize];
    /// Preceding-sibling rows (CSR slice).
    fn preceding_siblings(&self, i: usize) -> &[usize];
    /// Attribute rows of element `i`.
    fn attributes(&self, i: usize) -> Vec<usize>;
    /// Concatenated descendant text.
    fn string_value(&self, i: usize) -> String;
    /// Value of the named attribute on element `i`.
    fn attribute_value(&self, i: usize, name: &str) -> Option<&str>;
    /// Human-readable rendering of row `i`'s label.
    fn label_display(&self, i: usize) -> String;
    /// Storage footprint of row `i`'s label in bits.
    fn label_bits(&self, i: usize) -> u64;
    /// Total label storage across all rows.
    fn total_label_bits(&self) -> u64;
    /// Evaluate a parsed XPath expression; matching rows in document
    /// order.
    fn evaluate(&self, expr: &XPathExpr) -> Vec<usize>;
    /// Rebuild an [`XmlTree`] from the encoding alone.
    fn reconstruct(&self) -> Result<XmlTree, TreeError>;
}

impl<S: LabelingScheme + Send> DynDocument for EncodedDocument<S>
where
    S::Label: Send,
{
    fn scheme_name(&self) -> &'static str {
        self.scheme().name()
    }
    fn len(&self) -> usize {
        EncodedDocument::len(self)
    }
    fn root(&self) -> usize {
        EncodedDocument::root(self)
    }
    fn kind(&self, i: usize) -> &NodeKind {
        &self.row(i).kind
    }
    fn parent(&self, i: usize) -> Option<usize> {
        EncodedDocument::parent(self, i)
    }
    fn depth(&self, i: usize) -> u32 {
        EncodedDocument::depth(self, i)
    }
    fn cmp_doc(&self, a: usize, b: usize) -> Ordering {
        EncodedDocument::cmp_doc(self, a, b)
    }
    fn is_ancestor(&self, a: usize, b: usize) -> bool {
        EncodedDocument::is_ancestor(self, a, b)
    }
    fn is_ancestor_via_labels(&self, a: usize, b: usize) -> bool {
        EncodedDocument::is_ancestor_via_labels(self, a, b)
    }
    fn children(&self, i: usize) -> &[usize] {
        EncodedDocument::children(self, i)
    }
    fn children_via_scan(&self, i: usize) -> Vec<usize> {
        EncodedDocument::children_via_scan(self, i)
    }
    fn descendants(&self, i: usize) -> Vec<usize> {
        EncodedDocument::descendants(self, i)
    }
    fn descendants_via_labels(&self, i: usize) -> Vec<usize> {
        EncodedDocument::descendants_via_labels(self, i)
    }
    fn ancestors(&self, i: usize) -> Vec<usize> {
        EncodedDocument::ancestors(self, i)
    }
    fn following(&self, i: usize) -> Vec<usize> {
        EncodedDocument::following(self, i)
    }
    fn following_via_labels(&self, i: usize) -> Vec<usize> {
        EncodedDocument::following_via_labels(self, i)
    }
    fn preceding(&self, i: usize) -> Vec<usize> {
        EncodedDocument::preceding(self, i)
    }
    fn preceding_via_labels(&self, i: usize) -> Vec<usize> {
        EncodedDocument::preceding_via_labels(self, i)
    }
    fn following_siblings(&self, i: usize) -> &[usize] {
        EncodedDocument::following_siblings(self, i)
    }
    fn preceding_siblings(&self, i: usize) -> &[usize] {
        EncodedDocument::preceding_siblings(self, i)
    }
    fn attributes(&self, i: usize) -> Vec<usize> {
        EncodedDocument::attributes(self, i)
    }
    fn string_value(&self, i: usize) -> String {
        EncodedDocument::string_value(self, i)
    }
    fn attribute_value(&self, i: usize, name: &str) -> Option<&str> {
        EncodedDocument::attribute_value(self, i, name)
    }
    fn label_display(&self, i: usize) -> String {
        self.row(i).label.display()
    }
    fn label_bits(&self, i: usize) -> u64 {
        self.row(i).label.size_bits()
    }
    fn total_label_bits(&self) -> u64 {
        EncodedDocument::total_label_bits(self)
    }
    fn evaluate(&self, expr: &XPathExpr) -> Vec<usize> {
        expr.evaluate(self)
    }
    fn reconstruct(&self) -> Result<XmlTree, TreeError> {
        reconstruct(self)
    }
}

/// One roster row of the document registry: the scheme's descriptor
/// plus an encoder producing an erased document over any tree.
#[derive(Clone)]
pub struct DocSchemeEntry {
    /// The scheme's declared Figure 7 row and metadata.
    pub descriptor: SchemeDescriptor,
    /// Encode `tree` under a fresh instance of the scheme.
    pub encode: fn(&XmlTree) -> Result<Box<dyn DynDocument>, TreeError>,
}

impl DocSchemeEntry {
    /// The scheme's Figure 7 name.
    pub fn name(&self) -> &'static str {
        self.descriptor.name
    }
}

impl std::fmt::Debug for DocSchemeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocSchemeEntry")
            .field("descriptor", &self.descriptor)
            .finish_non_exhaustive()
    }
}

macro_rules! doc_entries_vec {
    ($($ty:ty),+ $(,)?) => {
        vec![
            $(
                DocSchemeEntry {
                    descriptor: <$ty>::new().descriptor(),
                    encode: |tree| {
                        EncodedDocument::encode(<$ty>::new(), tree)
                            .map(|doc| Box::new(doc) as Box<dyn DynDocument>)
                    },
                },
            )+
        ]
    };
}

/// Per-scheme document encoders for the twelve Figure 7 schemes, in the
/// paper's row order.
pub fn document_registry_figure7() -> Vec<DocSchemeEntry> {
    with_scheme_roster!(figure7, doc_entries_vec)
}

/// Per-scheme document encoders for the full roster (Figure 7 + §6
/// extensions).
pub fn document_registry() -> Vec<DocSchemeEntry> {
    with_scheme_roster!(all, doc_entries_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_workloads::docs;

    #[test]
    fn registries_cover_the_rosters_in_order() {
        let f7: Vec<&str> = document_registry_figure7()
            .iter()
            .map(|e| e.name())
            .collect();
        assert_eq!(f7, xupd_schemes::FIGURE7_ORDER);
        assert_eq!(document_registry().len(), 17);
    }

    #[test]
    fn erased_document_answers_match_names() {
        let tree = docs::book();
        for entry in document_registry_figure7() {
            let doc = (entry.encode)(&tree).unwrap();
            assert_eq!(doc.scheme_name(), entry.name());
            assert_eq!(doc.len(), tree.len());
            assert_eq!(doc.root(), 0);
            assert!(doc.total_label_bits() > 0);
            let rebuilt = doc.reconstruct().unwrap();
            assert_eq!(rebuilt.len(), tree.len());
        }
    }

    #[test]
    fn erased_evaluate_matches_typed_evaluate() {
        use crate::parse_xpath;
        use xupd_schemes::prefix::qed::Qed;
        let tree = docs::xmark_like(5, 60);
        let expr = parse_xpath("//item").unwrap();
        let typed = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let erased: &dyn DynDocument = &typed;
        assert_eq!(erased.evaluate(&expr), expr.evaluate(&typed));
        assert!(!erased.is_empty());
    }
}
