//! # xupd-encoding — the XML encoding scheme (Definition 2 of the paper)
//!
//! "An XML encoding scheme codifies the structure of the node sequence in
//! the XML tree and the properties and content of each node" (§2.3). It
//! is built **on top of** a labelling scheme and augments labels with the
//! node type, names and content that no labelling scheme captures, so
//! that (a) full XPath query evaluation and (b) full reconstruction of
//! the textual document become possible.
//!
//! * [`table`] — [`EncodedDocument`]: the node table (one [`Row`] per
//!   node: label, kind, parent reference), generic over any
//!   [`xupd_labelcore::LabelingScheme`]; axes run on the [`topology`]
//!   sidecar (O(1) interval ancestry, CSR children, answer-proportional
//!   range scans) while the raw label-algebra path survives as the
//!   `*_via_labels` reference methods the framework checkers and the
//!   differential property suite exercise;
//! * [`topology`] — [`Topology`]: the structural sidecar index built at
//!   encode time (pre-order subtree extents, CSR children arrays, depth
//!   and parent vectors);
//! * [`xpath`] — a parser and streaming evaluator for the XPath subset
//!   used by the examples and benchmarks (child/descendant/parent/
//!   ancestor/sibling/following/preceding/attribute axes, name and text
//!   tests, positional and attribute-value predicates); name-test steps
//!   on the descendant/child axes route through the [`NameIndex`]
//!   buckets intersected with extent ranges;
//! * [`reconstruct`] — rebuilds the [`xupd_xmldom::XmlTree`] (and hence
//!   the textual document) from the table alone;
//! * [`index`] — a name index accelerating `//name` lookups via the
//!   scheme's ancestor algebra (the query/update trade §2.3 describes);
//! * [`figure2`] — the paper's Figure 2 table for the Figure 1 sample
//!   document, golden-tested cell by cell.

pub mod erased;
pub mod figure2;
pub mod index;
pub mod reconstruct;
pub mod table;
pub mod topology;
pub mod xpath;

pub use erased::{document_registry, document_registry_figure7, DocSchemeEntry, DynDocument};
pub use index::NameIndex;
pub use table::{EncodedDocument, Row};
pub use topology::{row_in_extents, Topology};
pub use xpath::{parse_xpath, AccessPattern, XPathError, XPathExpr};
