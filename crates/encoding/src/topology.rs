//! The topology sidecar: constant-time structural navigation over a
//! document-order node table.
//!
//! §2.3 frames the encoding scheme as the place where a repository
//! trades update cost for query speed. The [`Topology`] index is that
//! trade made concrete on the query side: one extra pass at encode time
//! buys
//!
//! * **O(1) ancestry** — rows are in pre-order, so the strict
//!   descendants of row `i` are exactly the contiguous range
//!   `i+1..extent(i)`; `a` is an ancestor of `b` iff `a < b < extent(a)`
//!   (the interval-containment idea the ancestry-labeling literature
//!   formalizes, cf. Fraigniaud & Korman);
//! * **CSR children** — each row's children sit in one contiguous slice
//!   of `child_rows`, so the `child`/sibling axes are slice walks, not
//!   table scans;
//! * **answer-proportional range axes** — `descendant` is a range,
//!   `following` is the suffix `extent(i)..len`, and `preceding` needs
//!   only an O(1) test per candidate row.
//!
//! The index captures *structure only*. Whether a labelling **scheme**
//! can answer ancestry from its labels alone remains a property of the
//! scheme (the Figure 7 *XPath Evaluations* column); the framework
//! checkers keep exercising that raw label algebra via
//! [`EncodedDocument::is_ancestor_via_labels`](crate::table::EncodedDocument::is_ancestor_via_labels),
//! and a differential property suite pins the two paths equivalent.

use xupd_xmldom::{NodeId, TreeError};

/// Is row `i` inside one of the half-open `(start, end)` intervals?
/// The intervals must be sorted by start and disjoint. One binary
/// search — shared by the scoped evaluator and the query cache's
/// repair path.
pub fn row_in_extents(extents: &[(usize, usize)], i: usize) -> bool {
    let k = extents.partition_point(|&(start, _)| start <= i);
    k > 0 && i < extents[k - 1].1
}

/// Structural index over a document-order table: parent, depth,
/// pre-order subtree extents and CSR children arrays.
///
/// Built by [`Topology::from_parents`] in O(n); immutable thereafter
/// (the table itself is immutable once encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    parent: Vec<Option<usize>>,
    depth: Vec<u32>,
    /// `extent[i]` is one past the last row of `i`'s subtree: strict
    /// descendants of `i` are exactly rows `i+1..extent[i]`.
    extent: Vec<usize>,
    /// CSR offsets into `child_rows`; length `n + 1`.
    child_start: Vec<usize>,
    /// Children of every row, concatenated in document order.
    child_rows: Vec<usize>,
}

impl Topology {
    /// Build the index from per-row parent references, where row indices
    /// are document-order (pre-order) positions.
    ///
    /// Construction is infallible over well-formed tables (the only kind
    /// [`crate::table::EncodedDocument::encode`] produces). A malformed
    /// input — a non-root row without a parent, a parent reference that
    /// is not an earlier row, or a parented root — threads out as a
    /// [`TreeError`] rather than a panic.
    pub fn from_parents(parents: &[Option<usize>]) -> Result<Topology, TreeError> {
        let n = parents.len();
        if n == 0 {
            return Ok(Topology {
                parent: Vec::new(),
                depth: Vec::new(),
                extent: Vec::new(),
                child_start: vec![0],
                child_rows: Vec::new(),
            });
        }
        if parents[0].is_some() {
            return Err(TreeError::Invariant(
                "row 0 (document root) must have no parent".into(),
            ));
        }
        for (i, p) in parents.iter().enumerate().skip(1) {
            match p {
                None => return Err(TreeError::MissingParent(NodeId::from_index(i))),
                Some(p) if *p >= i => {
                    return Err(TreeError::DanglingNodeId(NodeId::from_index(*p)))
                }
                Some(_) => {}
            }
        }

        // depth: parents precede children in document order.
        let mut depth = vec![0u32; n];
        for i in 1..n {
            if let Some(p) = parents[i] {
                depth[i] = depth[p] + 1;
            }
        }

        // extent: reverse pass — every row's extent is final before its
        // parent is visited, because children have larger indices.
        let mut extent: Vec<usize> = (1..=n).collect();
        for i in (1..n).rev() {
            if let Some(p) = parents[i] {
                if extent[i] > extent[p] {
                    extent[p] = extent[i];
                }
            }
        }

        // CSR: count, prefix-sum, fill in document order.
        let mut child_start = vec![0usize; n + 1];
        for p in parents.iter().skip(1).flatten() {
            child_start[p + 1] += 1;
        }
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut child_rows = vec![0usize; child_start[n]];
        for (i, p) in parents.iter().enumerate().skip(1) {
            if let Some(p) = p {
                child_rows[cursor[*p]] = i;
                cursor[*p] += 1;
            }
        }

        Ok(Topology {
            parent: parents.to_vec(),
            depth,
            extent,
            child_start,
            child_rows,
        })
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent row of `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Depth of row `i` (root = 0).
    pub fn depth(&self, i: usize) -> u32 {
        self.depth[i]
    }

    /// One past the last row of `i`'s subtree.
    pub fn extent(&self, i: usize) -> usize {
        self.extent[i]
    }

    /// The strict descendants of `i` as a contiguous row range.
    pub fn descendant_range(&self, i: usize) -> std::ops::Range<usize> {
        i + 1..self.extent[i]
    }

    /// Children of `i` in document order, as a CSR slice.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.child_rows[self.child_start[i]..self.child_start[i + 1]]
    }

    /// O(1) interval-containment ancestry: is `a` a strict ancestor of
    /// `b`?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        a < b && b < self.extent[a]
    }

    /// Position of `i` among its parent's children (None for the root).
    /// Binary search over the parent's CSR slice — children are sorted
    /// by construction.
    pub fn child_position(&self, i: usize) -> Option<usize> {
        let p = self.parent[i]?;
        let siblings = self.children(p);
        Some(siblings.partition_point(|&c| c < i))
    }

    /// Does the subtree rooted at `i` (self included) overlap any of the
    /// half-open row intervals in `extents`? The intervals must be
    /// sorted and disjoint — the form the incremental query cache's
    /// impact analysis produces. One binary search: find the first
    /// interval ending after `i`, and check it starts before the
    /// subtree ends.
    pub fn subtree_intersects(&self, i: usize, extents: &[(usize, usize)]) -> bool {
        let hi = self.extent[i];
        let k = extents.partition_point(|&(_, end)| end <= i);
        k < extents.len() && extents[k].0 < hi
    }

    /// Raw CSR offsets (`len + 1` entries) — exposed for golden tests.
    pub fn child_start(&self) -> &[usize] {
        &self.child_start
    }

    /// Raw CSR children array — exposed for golden tests.
    pub fn child_rows(&self) -> &[usize] {
        &self.child_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hand-checked shape:
    ///
    /// ```text
    /// 0
    /// ├── 1
    /// │   ├── 2
    /// │   └── 3
    /// └── 4
    /// ```
    fn sample() -> Topology {
        Topology::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]).unwrap()
    }

    #[test]
    fn extents_depths_and_children() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(
            (0..5).map(|i| t.extent(i)).collect::<Vec<_>>(),
            [5, 4, 3, 4, 5]
        );
        assert_eq!(
            (0..5).map(|i| t.depth(i)).collect::<Vec<_>>(),
            [0, 1, 2, 2, 1]
        );
        assert_eq!(t.children(0), [1, 4]);
        assert_eq!(t.children(1), [2, 3]);
        assert_eq!(t.children(2), Vec::<usize>::new().as_slice());
        assert_eq!(t.child_start(), [0, 2, 4, 4, 4, 4]);
        assert_eq!(t.child_rows(), [1, 4, 2, 3]);
    }

    #[test]
    fn interval_ancestry() {
        let t = sample();
        assert!(t.is_ancestor(0, 3));
        assert!(t.is_ancestor(1, 2));
        assert!(!t.is_ancestor(1, 4));
        assert!(!t.is_ancestor(2, 3), "siblings");
        assert!(!t.is_ancestor(3, 1), "descendant is not ancestor");
        assert!(!t.is_ancestor(2, 2), "strict");
    }

    #[test]
    fn child_positions() {
        let t = sample();
        assert_eq!(t.child_position(0), None);
        assert_eq!(t.child_position(1), Some(0));
        assert_eq!(t.child_position(4), Some(1));
        assert_eq!(t.child_position(2), Some(0));
        assert_eq!(t.child_position(3), Some(1));
    }

    #[test]
    fn descendant_ranges() {
        let t = sample();
        assert_eq!(t.descendant_range(0), 1..5);
        assert_eq!(t.descendant_range(1), 2..4);
        assert_eq!(t.descendant_range(2), 3..3);
    }

    #[test]
    fn empty_and_singleton() {
        let t = Topology::from_parents(&[]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.child_start(), [0]);
        let t = Topology::from_parents(&[None]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.extent(0), 1);
        assert_eq!(t.children(0), Vec::<usize>::new().as_slice());
    }

    #[test]
    fn interval_helpers() {
        let t = sample();
        let ex = [(1usize, 3usize), (4, 5)];
        assert!(row_in_extents(&ex, 1));
        assert!(row_in_extents(&ex, 2));
        assert!(!row_in_extents(&ex, 3));
        assert!(row_in_extents(&ex, 4));
        assert!(!row_in_extents(&ex, 0));
        assert!(!row_in_extents(&[], 0));
        // subtree of 1 covers rows [1, 4)
        assert!(t.subtree_intersects(1, &[(0, 2)]));
        assert!(t.subtree_intersects(1, &[(3, 4)]));
        assert!(!t.subtree_intersects(1, &[(4, 5)]));
        assert!(t.subtree_intersects(0, &[(4, 5)]));
        assert!(!t.subtree_intersects(2, &[(0, 2), (4, 5)]), "subtree of 2 is [2, 3)");
        assert!(t.subtree_intersects(2, &[(0, 3)]));
        assert!(!t.subtree_intersects(4, &[]));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(matches!(
            Topology::from_parents(&[Some(0)]),
            Err(TreeError::Invariant(_))
        ));
        assert!(matches!(
            Topology::from_parents(&[None, None]),
            Err(TreeError::MissingParent(_))
        ));
        assert!(matches!(
            Topology::from_parents(&[None, Some(1)]),
            Err(TreeError::DanglingNodeId(_))
        ));
        assert!(matches!(
            Topology::from_parents(&[None, Some(2), Some(0)]),
            Err(TreeError::DanglingNodeId(_))
        ));
    }
}
