//! The node table: an [`EncodedDocument`] is the self-contained encoding
//! of Definition 2 — once built, neither the original tree nor its node
//! ids are needed.

use std::cmp::Ordering;
use xupd_labelcore::{Labeling, LabelingScheme, Relation};
use xupd_xmldom::{NodeId, NodeKind, TreeError, XmlTree};

/// One row of the encoding table (cf. Figure 2's columns: label, node
/// type, parent, name, value — type/name/value live in [`NodeKind`]).
#[derive(Debug, Clone)]
pub struct Row<L> {
    /// The node's label under the chosen labelling scheme.
    pub label: L,
    /// Node type, name and content.
    pub kind: NodeKind,
    /// Row index of the parent (like Figure 2's `Parent(Pre)` column,
    /// which stores the parent's label value). `None` for the document
    /// root.
    pub parent: Option<usize>,
}

/// A labelled, self-contained encoding of one document. Rows are stored
/// in document order (row index = document-order position).
#[derive(Debug, Clone)]
pub struct EncodedDocument<S: LabelingScheme> {
    scheme: S,
    rows: Vec<Row<S::Label>>,
}

impl<S: LabelingScheme> EncodedDocument<S> {
    /// Label `tree` with `scheme` and extract the node table.
    ///
    /// Errors propagate scheme-level protocol failures ([`TreeError`]);
    /// encoding a well-formed tree with any in-repo scheme succeeds.
    pub fn encode(mut scheme: S, tree: &XmlTree) -> Result<Self, TreeError> {
        let labeling: Labeling<S::Label> = scheme.label_tree(tree)?;
        let order: Vec<NodeId> = tree.ids_in_doc_order();
        let mut index_of = vec![usize::MAX; tree.id_bound()];
        for (i, &id) in order.iter().enumerate() {
            index_of[id.index()] = i;
        }
        let rows = order
            .iter()
            .map(|&id| {
                Ok(Row {
                    label: labeling.req(id)?.clone(),
                    kind: tree.kind(id).clone(),
                    parent: tree.parent(id).map(|p| index_of[p.index()]),
                })
            })
            .collect::<Result<Vec<_>, TreeError>>()?;
        Ok(EncodedDocument { scheme, rows })
    }

    /// Number of rows (= nodes).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty (never the case for a well-formed
    /// document, which has at least the document root).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row access.
    pub fn row(&self, i: usize) -> &Row<S::Label> {
        &self.rows[i]
    }

    /// All rows in document order.
    pub fn rows(&self) -> &[Row<S::Label>] {
        &self.rows
    }

    /// The labelling scheme this table was encoded with.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Index of the document root row (always 0 — first in document
    /// order).
    pub fn root(&self) -> usize {
        0
    }

    /// Document-order comparison of two rows by their labels.
    pub fn cmp_doc(&self, a: usize, b: usize) -> Ordering {
        self.scheme
            .cmp_doc(&self.rows[a].label, &self.rows[b].label)
    }

    /// Is row `a` an ancestor of row `b`? Uses the label algebra when the
    /// scheme supports it; otherwise walks the table's parent references —
    /// the supplementary information §2.4 says the encoding must carry
    /// when the labelling scheme does not.
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        if let Some(ans) = self.scheme.relation(
            Relation::AncestorDescendant,
            &self.rows[a].label,
            &self.rows[b].label,
        ) {
            return ans;
        }
        let mut cur = self.rows[b].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.rows[p].parent;
        }
        false
    }

    /// Parent of a row.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.rows[i].parent
    }

    /// Children of a row, in document order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&j| self.rows[j].parent == Some(i))
            .collect()
    }

    /// Strict descendants of a row, in document order.
    pub fn descendants(&self, i: usize) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&j| j != i && self.is_ancestor(i, j))
            .collect()
    }

    /// Strict ancestors of a row, root first.
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut up = Vec::new();
        let mut cur = self.rows[i].parent;
        while let Some(p) = cur {
            up.push(p);
            cur = self.rows[p].parent;
        }
        up.reverse();
        up
    }

    /// XPath `following` axis: after `i` in document order, excluding
    /// descendants.
    pub fn following(&self, i: usize) -> Vec<usize> {
        (i + 1..self.rows.len())
            .filter(|&j| !self.is_ancestor(i, j))
            .collect()
    }

    /// XPath `preceding` axis: before `i` in document order, excluding
    /// ancestors.
    pub fn preceding(&self, i: usize) -> Vec<usize> {
        (0..i).filter(|&j| !self.is_ancestor(j, i)).collect()
    }

    /// Following siblings of `i`, in document order.
    pub fn following_siblings(&self, i: usize) -> Vec<usize> {
        match self.rows[i].parent {
            None => Vec::new(),
            Some(p) => (i + 1..self.rows.len())
                .filter(|&j| self.rows[j].parent == Some(p))
                .collect(),
        }
    }

    /// Preceding siblings of `i`, in document order.
    pub fn preceding_siblings(&self, i: usize) -> Vec<usize> {
        match self.rows[i].parent {
            None => Vec::new(),
            Some(p) => (0..i).filter(|&j| self.rows[j].parent == Some(p)).collect(),
        }
    }

    /// Attribute children of `i`.
    pub fn attributes(&self, i: usize) -> Vec<usize> {
        self.children(i)
            .into_iter()
            .filter(|&j| self.rows[j].kind.is_attribute())
            .collect()
    }

    /// The XPath string value of a row: concatenated descendant text for
    /// elements, own value for attributes/text/comments/PIs.
    pub fn string_value(&self, i: usize) -> String {
        match &self.rows[i].kind {
            NodeKind::Document | NodeKind::Element { .. } => {
                let mut out = String::new();
                for j in self.descendants(i) {
                    if let NodeKind::Text { value } = &self.rows[j].kind {
                        out.push_str(value);
                    }
                }
                out
            }
            other => other.value().unwrap_or("").to_string(),
        }
    }

    /// The value of attribute `name` on element row `i`.
    pub fn attribute_value(&self, i: usize, name: &str) -> Option<String> {
        self.attributes(i)
            .into_iter()
            .find_map(|j| match &self.rows[j].kind {
                NodeKind::Attribute { name: n, value } if n == name => Some(value.clone()),
                _ => None,
            })
    }

    /// Total label storage in bits — the per-scheme cost Figure 7's
    /// *Compact Enc.* column talks about, observable per document here.
    pub fn total_label_bits(&self) -> u64 {
        use xupd_labelcore::Label;
        self.rows.iter().map(|r| r.label.size_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::containment::accel::XPathAccelerator;
    use xupd_schemes::containment::sector::Sector;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_xmldom::sample::figure1_document;

    #[test]
    fn rows_are_in_document_order() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        assert_eq!(enc.len(), tree.len());
        for i in 1..enc.len() {
            assert_eq!(enc.cmp_doc(i - 1, i), Ordering::Less);
        }
    }

    #[test]
    fn axes_match_tree_ground_truth() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        let order = tree.ids_in_doc_order();
        for (i, &id) in order.iter().enumerate() {
            // children
            let kid_names: Vec<_> = enc
                .children(i)
                .into_iter()
                .map(|j| enc.row(j).kind.name().unwrap_or("").to_string())
                .collect();
            let tree_kids: Vec<_> = tree
                .children(id)
                .map(|c| tree.kind(c).name().unwrap_or("").to_string())
                .collect();
            assert_eq!(kid_names, tree_kids);
            // descendant count
            assert_eq!(enc.descendants(i).len(), tree.subtree_size(id) - 1);
            // following/preceding partition
            let f = enc.following(i).len();
            let p = enc.preceding(i).len();
            let anc = enc.ancestors(i).len();
            let desc = enc.descendants(i).len();
            assert_eq!(f + p + anc + desc + 1, enc.len());
        }
    }

    #[test]
    fn ancestor_falls_back_to_parent_refs_for_sector() {
        // Sector answers ancestor from labels; parent-chain fallback is
        // exercised via... sector supports ancestor, so use string_value
        // paths instead: encode with Sector and verify axes still work.
        let tree = figure1_document();
        let enc = EncodedDocument::encode(Sector::new(), &tree).unwrap();
        for i in 0..enc.len() {
            let via_labels = enc.descendants(i).len();
            let mut via_parents = 0;
            for j in 0..enc.len() {
                let mut cur = enc.parent(j);
                while let Some(p) = cur {
                    if p == i {
                        via_parents += 1;
                        break;
                    }
                    cur = enc.parent(p);
                }
            }
            assert_eq!(via_labels, via_parents);
        }
    }

    #[test]
    fn string_values_and_attributes() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(XPathAccelerator::new(), &tree).unwrap();
        // find the title element row
        let title = (0..enc.len())
            .find(|&i| enc.row(i).kind.name() == Some("title"))
            .unwrap();
        assert_eq!(enc.string_value(title), "Wayfarer");
        assert_eq!(enc.attribute_value(title, "genre"), Some("Fantasy".into()));
        assert_eq!(enc.attribute_value(title, "nope"), None);
        // whole-document string value concatenates all text
        let all = enc.string_value(enc.root());
        assert!(all.contains("Wayfarer") && all.contains("USA"));
    }

    #[test]
    fn label_bits_accounting() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(XPathAccelerator::new(), &tree).unwrap();
        assert_eq!(enc.total_label_bits(), enc.len() as u64 * 160);
    }
}
