//! The node table: an [`EncodedDocument`] is the self-contained encoding
//! of Definition 2 — once built, neither the original tree nor its node
//! ids are needed to answer queries. Each row does remember which
//! [`NodeId`] produced it ([`EncodedDocument::source_id`]): node ids are
//! never reused across deletions, so the id is a stable node identity
//! that the incremental query cache uses to map result rows between two
//! encodings of the same evolving tree.
//!
//! Axis evaluation runs on the [`Topology`] sidecar built at encode
//! time: ancestry is an O(1) interval test, `child`/sibling axes are CSR
//! slice walks, and the range axes cost time proportional to their
//! answers. The raw label-algebra path survives as
//! [`EncodedDocument::is_ancestor_via_labels`] (plus the `*_via_labels`
//! reference axes) because the framework checkers measure what the
//! labelling *scheme* can answer, not what the encoding can — a
//! differential property suite pins the two paths equivalent.

use crate::index::NameIndex;
use crate::topology::Topology;
use std::cmp::Ordering;
use xupd_labelcore::{Labeling, LabelingScheme, Relation};
use xupd_xmldom::{NodeId, NodeKind, TreeError, XmlTree};

/// One row of the encoding table (cf. Figure 2's columns: label, node
/// type, parent, name, value — type/name/value live in [`NodeKind`]).
#[derive(Debug, Clone)]
pub struct Row<L> {
    /// The node's label under the chosen labelling scheme.
    pub label: L,
    /// Node type, name and content.
    pub kind: NodeKind,
    /// Row index of the parent (like Figure 2's `Parent(Pre)` column,
    /// which stores the parent's label value). `None` for the document
    /// root.
    pub parent: Option<usize>,
}

/// A labelled, self-contained encoding of one document. Rows are stored
/// in document order (row index = document-order position).
#[derive(Debug, Clone)]
pub struct EncodedDocument<S: LabelingScheme> {
    scheme: S,
    rows: Vec<Row<S::Label>>,
    topo: Topology,
    index: NameIndex,
    /// Source tree node id per row, in document order.
    source_ids: Vec<NodeId>,
    /// Reverse map: `row_of[id.index()]` is the row encoding that node,
    /// `usize::MAX` for ids outside this document.
    row_of: Vec<usize>,
}

impl<S: LabelingScheme> EncodedDocument<S> {
    /// Label `tree` with `scheme` and extract the node table, building
    /// the [`Topology`] sidecar and [`NameIndex`] in the same pass.
    ///
    /// Errors propagate scheme-level protocol failures ([`TreeError`]);
    /// encoding a well-formed tree with any in-repo scheme succeeds.
    pub fn encode(mut scheme: S, tree: &XmlTree) -> Result<Self, TreeError> {
        let labeling: Labeling<S::Label> = scheme.label_tree(tree)?;
        let order: Vec<NodeId> = tree.ids_in_doc_order();
        let mut index_of = vec![usize::MAX; tree.id_bound()];
        for (i, &id) in order.iter().enumerate() {
            index_of[id.index()] = i;
        }
        let rows = order
            .iter()
            .map(|&id| {
                Ok(Row {
                    label: labeling.req(id)?.clone(),
                    kind: tree.kind(id).clone(),
                    parent: tree.parent(id).map(|p| index_of[p.index()]),
                })
            })
            .collect::<Result<Vec<_>, TreeError>>()?;
        let parents: Vec<Option<usize>> = rows.iter().map(|r| r.parent).collect();
        let topo = Topology::from_parents(&parents)?;
        let index = NameIndex::from_kinds(rows.iter().map(|r| &r.kind));
        Ok(EncodedDocument {
            scheme,
            rows,
            topo,
            index,
            source_ids: order,
            row_of: index_of,
        })
    }

    /// Number of rows (= nodes).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty (never the case for a well-formed
    /// document, which has at least the document root).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row access.
    pub fn row(&self, i: usize) -> &Row<S::Label> {
        &self.rows[i]
    }

    /// All rows in document order.
    pub fn rows(&self) -> &[Row<S::Label>] {
        &self.rows
    }

    /// The labelling scheme this table was encoded with.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The structural sidecar index built at encode time.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The element/attribute name index built at encode time.
    pub fn name_index(&self) -> &NameIndex {
        &self.index
    }

    /// Index of the document root row (always 0 — first in document
    /// order).
    pub fn root(&self) -> usize {
        0
    }

    /// Depth of row `i` (document root = 0).
    pub fn depth(&self, i: usize) -> u32 {
        self.topo.depth(i)
    }

    /// Document-order comparison of two rows by their labels.
    pub fn cmp_doc(&self, a: usize, b: usize) -> Ordering {
        self.scheme
            .cmp_doc(&self.rows[a].label, &self.rows[b].label)
    }

    /// Is row `a` a strict ancestor of row `b`? O(1) interval
    /// containment on the pre-order extents.
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        self.topo.is_ancestor(a, b)
    }

    /// Ancestry answered the pre-topology way: the scheme's label
    /// algebra when the scheme supports it, otherwise the table's
    /// parent-reference chain — the supplementary information §2.4 says
    /// the encoding must carry when the labelling scheme does not.
    ///
    /// Kept as the explicit reference path: the framework checkers
    /// measure *scheme* capability (Figure 7's XPath column) and the
    /// differential property suite pins this equal to
    /// [`is_ancestor`](Self::is_ancestor) for every scheme.
    pub fn is_ancestor_via_labels(&self, a: usize, b: usize) -> bool {
        if let Some(ans) = self.scheme.relation(
            Relation::AncestorDescendant,
            &self.rows[a].label,
            &self.rows[b].label,
        ) {
            return ans;
        }
        let mut cur = self.rows[b].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.rows[p].parent;
        }
        false
    }

    /// Parent of a row.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.rows[i].parent
    }

    /// Children of a row, in document order — a CSR slice, no
    /// allocation.
    pub fn children(&self, i: usize) -> &[usize] {
        self.topo.children(i)
    }

    /// Children computed by the reference full-table scan (what
    /// [`children`](Self::children) did before the topology index) —
    /// kept for differential tests and the scan-vs-index benchmarks.
    pub fn children_via_scan(&self, i: usize) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&j| self.rows[j].parent == Some(i))
            .collect()
    }

    /// Strict descendants of a row, in document order: the contiguous
    /// extent range, materialized.
    pub fn descendants(&self, i: usize) -> Vec<usize> {
        self.topo.descendant_range(i).collect()
    }

    /// Strict descendants as a range — the allocation-free form.
    pub fn descendant_range(&self, i: usize) -> std::ops::Range<usize> {
        self.topo.descendant_range(i)
    }

    /// Descendants computed by the reference label-algebra scan.
    pub fn descendants_via_labels(&self, i: usize) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&j| j != i && self.is_ancestor_via_labels(i, j))
            .collect()
    }

    /// Strict ancestors of a row, root first.
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut up = Vec::new();
        let mut cur = self.rows[i].parent;
        while let Some(p) = cur {
            up.push(p);
            cur = self.rows[p].parent;
        }
        up.reverse();
        up
    }

    /// XPath `following` axis: after `i` in document order, excluding
    /// descendants — exactly the row suffix past `i`'s extent.
    pub fn following(&self, i: usize) -> Vec<usize> {
        (self.topo.extent(i)..self.rows.len()).collect()
    }

    /// `following` computed by the reference label-algebra scan.
    pub fn following_via_labels(&self, i: usize) -> Vec<usize> {
        (i + 1..self.rows.len())
            .filter(|&j| !self.is_ancestor_via_labels(i, j))
            .collect()
    }

    /// XPath `preceding` axis: before `i` in document order, excluding
    /// ancestors — an O(1) extent test per candidate.
    pub fn preceding(&self, i: usize) -> Vec<usize> {
        (0..i).filter(|&j| self.topo.extent(j) <= i).collect()
    }

    /// `preceding` computed by the reference label-algebra scan.
    pub fn preceding_via_labels(&self, i: usize) -> Vec<usize> {
        (0..i)
            .filter(|&j| !self.is_ancestor_via_labels(j, i))
            .collect()
    }

    /// Following siblings of `i`, in document order: the tail of the
    /// parent's CSR slice.
    pub fn following_siblings(&self, i: usize) -> &[usize] {
        match (self.rows[i].parent, self.topo.child_position(i)) {
            (Some(p), Some(pos)) => {
                let sibs = self.topo.children(p);
                &sibs[pos + 1..]
            }
            _ => &[],
        }
    }

    /// Preceding siblings of `i`, in document order: the head of the
    /// parent's CSR slice.
    pub fn preceding_siblings(&self, i: usize) -> &[usize] {
        match (self.rows[i].parent, self.topo.child_position(i)) {
            (Some(p), Some(pos)) => {
                let sibs = self.topo.children(p);
                &sibs[..pos]
            }
            _ => &[],
        }
    }

    /// Attribute children of `i`.
    pub fn attributes(&self, i: usize) -> Vec<usize> {
        self.topo
            .children(i)
            .iter()
            .copied()
            .filter(|&j| self.rows[j].kind.is_attribute())
            .collect()
    }

    /// The XPath string value of a row: concatenated descendant text for
    /// elements, own value for attributes/text/comments/PIs. Walks the
    /// extent range directly — no descendant set is materialized.
    pub fn string_value(&self, i: usize) -> String {
        match &self.rows[i].kind {
            NodeKind::Document | NodeKind::Element { .. } => {
                let mut out = String::new();
                for j in self.topo.descendant_range(i) {
                    if let NodeKind::Text { value } = &self.rows[j].kind {
                        out.push_str(value);
                    }
                }
                out
            }
            other => other.value().unwrap_or("").to_string(),
        }
    }

    /// The value of attribute `name` on element row `i` — a borrow into
    /// the table, probing the CSR children directly (no intermediate
    /// `Vec`, no cloned `String`).
    pub fn attribute_value(&self, i: usize, name: &str) -> Option<&str> {
        self.topo
            .children(i)
            .iter()
            .find_map(|&j| match &self.rows[j].kind {
                NodeKind::Attribute { name: n, value } if n == name => Some(value.as_str()),
                _ => None,
            })
    }

    /// The source-tree [`NodeId`] row `i` encodes. Node ids are never
    /// reused by [`xupd_xmldom::XmlTree`], so this is a stable identity
    /// across re-encodings of the same evolving tree.
    pub fn source_id(&self, i: usize) -> NodeId {
        self.source_ids[i]
    }

    /// The row encoding source node `id`, if that node is part of this
    /// document. O(1) — a direct table probe.
    pub fn row_of_source(&self, id: NodeId) -> Option<usize> {
        match self.row_of.get(id.index()) {
            Some(&r) if r != usize::MAX => Some(r),
            _ => None,
        }
    }

    /// Overwrite the value of text row `i` in place. A text write
    /// changes no label, no topology and no name bucket, so a snapshot
    /// can absorb it without any rebuild — the partial-invalidation
    /// fast path of the incremental query layer. Errors when `i` is not
    /// a text row.
    pub fn patch_text(&mut self, i: usize, text: &str) -> Result<(), TreeError> {
        match &mut self.rows[i].kind {
            NodeKind::Text { value } => {
                value.clear();
                value.push_str(text);
                Ok(())
            }
            other => Err(TreeError::Invariant(format!(
                "patch_text target row {i} is {other:?}, not a text node"
            ))),
        }
    }

    /// Total label storage in bits — the per-scheme cost Figure 7's
    /// *Compact Enc.* column talks about, observable per document here.
    pub fn total_label_bits(&self) -> u64 {
        use xupd_labelcore::Label;
        self.rows.iter().map(|r| r.label.size_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::containment::accel::XPathAccelerator;
    use xupd_schemes::containment::sector::Sector;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_xmldom::sample::figure1_document;

    #[test]
    fn rows_are_in_document_order() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        assert_eq!(enc.len(), tree.len());
        for i in 1..enc.len() {
            assert_eq!(enc.cmp_doc(i - 1, i), Ordering::Less);
        }
    }

    #[test]
    fn axes_match_tree_ground_truth() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        let order = tree.ids_in_doc_order();
        for (i, &id) in order.iter().enumerate() {
            // children
            let kid_names: Vec<_> = enc
                .children(i)
                .iter()
                .map(|&j| enc.row(j).kind.name().unwrap_or("").to_string())
                .collect();
            let tree_kids: Vec<_> = tree
                .children(id)
                .map(|c| tree.kind(c).name().unwrap_or("").to_string())
                .collect();
            assert_eq!(kid_names, tree_kids);
            // descendant count and depth
            assert_eq!(enc.descendants(i).len(), tree.subtree_size(id) - 1);
            assert_eq!(enc.depth(i), tree.depth(id));
            // following/preceding partition
            let f = enc.following(i).len();
            let p = enc.preceding(i).len();
            let anc = enc.ancestors(i).len();
            let desc = enc.descendants(i).len();
            assert_eq!(f + p + anc + desc + 1, enc.len());
        }
    }

    #[test]
    fn topology_axes_agree_with_label_path_for_sector() {
        // Sector answers ancestry from labels; the topology must give
        // byte-identical axes to the label-algebra reference path.
        let tree = figure1_document();
        let enc = EncodedDocument::encode(Sector::new(), &tree).unwrap();
        for i in 0..enc.len() {
            assert_eq!(enc.descendants(i), enc.descendants_via_labels(i));
            assert_eq!(enc.children(i), enc.children_via_scan(i).as_slice());
            assert_eq!(enc.following(i), enc.following_via_labels(i));
            assert_eq!(enc.preceding(i), enc.preceding_via_labels(i));
            for j in 0..enc.len() {
                assert_eq!(enc.is_ancestor(i, j), enc.is_ancestor_via_labels(i, j));
            }
        }
    }

    #[test]
    fn sibling_axes_are_csr_slices() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        for i in 0..enc.len() {
            let fs = enc.following_siblings(i);
            let ps = enc.preceding_siblings(i);
            match enc.parent(i) {
                None => {
                    assert!(fs.is_empty());
                    assert!(ps.is_empty());
                }
                Some(p) => {
                    let mut all = ps.to_vec();
                    all.push(i);
                    all.extend_from_slice(fs);
                    assert_eq!(all, enc.children(p));
                }
            }
        }
    }

    #[test]
    fn string_values_and_attributes() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(XPathAccelerator::new(), &tree).unwrap();
        // find the title element row
        let title = (0..enc.len())
            .find(|&i| enc.row(i).kind.name() == Some("title"))
            .unwrap();
        assert_eq!(enc.string_value(title), "Wayfarer");
        assert_eq!(enc.attribute_value(title, "genre"), Some("Fantasy"));
        assert_eq!(enc.attribute_value(title, "nope"), None);
        // whole-document string value concatenates all text
        let all = enc.string_value(enc.root());
        assert!(all.contains("Wayfarer") && all.contains("USA"));
    }

    #[test]
    fn source_ids_round_trip_and_text_patch() {
        let tree = figure1_document();
        let mut enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        let order = tree.ids_in_doc_order();
        for (i, &id) in order.iter().enumerate() {
            assert_eq!(enc.source_id(i), id);
            assert_eq!(enc.row_of_source(id), Some(i));
        }
        let out_of_range = NodeId::from_index(tree.id_bound() + 5);
        assert_eq!(enc.row_of_source(out_of_range), None);

        let title_text = (0..enc.len())
            .find(|&i| enc.row(i).kind.value() == Some("Wayfarer") && enc.row(i).kind.is_text())
            .unwrap();
        enc.patch_text(title_text, "Sojourner").unwrap();
        assert_eq!(enc.row(title_text).kind.value(), Some("Sojourner"));
        let title = enc.parent(title_text).unwrap();
        assert_eq!(enc.string_value(title), "Sojourner");
        assert!(enc.patch_text(title, "nope").is_err(), "element row");
    }

    #[test]
    fn label_bits_accounting() {
        let tree = figure1_document();
        let enc = EncodedDocument::encode(XPathAccelerator::new(), &tree).unwrap();
        assert_eq!(enc.total_label_bits(), enc.len() as u64 * 160);
    }
}
