//! Differential property suite for the encoding-layer acceleration:
//! every axis computed through the [`Topology`] sidecar must equal the
//! same axis computed through the label-algebra/parent-chain reference
//! path, for all twelve Figure 7 schemes, over random tree shapes —
//! plus golden tests pinning the extents and CSR arrays for the
//! Figure 1 document.
//!
//! This is the contract the tentpole optimisation rests on: the
//! topology index may make queries faster, but it must never change a
//! single observable answer.

use xupd_encoding::{
    document_registry_figure7, parse_xpath, DocSchemeEntry, EncodedDocument, Topology, XPathExpr,
};
use xupd_labelcore::LabelingScheme;
use xupd_schemes::prefix::dewey::DeweyId;
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::prop::{ints, Config};
use xupd_testkit::{prop_assert, prop_assert_eq, props};
use xupd_workloads::docs;
use xupd_xmldom::XmlTree;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];

/// Diff every topology-backed axis against its label-algebra /
/// parent-chain reference on one tree under one scheme; mismatches come
/// back as human-readable strings.
fn axis_diff(entry: &DocSchemeEntry, tree: &XmlTree) -> Vec<String> {
    let name = entry.name();
    let mut failures = Vec::new();
    let enc = match (entry.encode)(tree) {
        Ok(e) => e,
        Err(e) => {
            failures.push(format!("{name}: encode failed: {e}"));
            return failures;
        }
    };
    for i in 0..enc.len() {
        if enc.descendants(i) != enc.descendants_via_labels(i) {
            failures.push(format!("{name}: descendants({i})"));
        }
        if enc.children(i) != enc.children_via_scan(i).as_slice() {
            failures.push(format!("{name}: children({i})"));
        }
        if enc.following(i) != enc.following_via_labels(i) {
            failures.push(format!("{name}: following({i})"));
        }
        if enc.preceding(i) != enc.preceding_via_labels(i) {
            failures.push(format!("{name}: preceding({i})"));
        }
        for j in 0..enc.len() {
            if enc.is_ancestor(i, j) != enc.is_ancestor_via_labels(i, j) {
                failures.push(format!("{name}: is_ancestor({i},{j})"));
            }
        }
    }
    failures
}

props! {
    config = Config::with_cases(48);

    fn topology_axes_equal_label_algebra_axes(seed in ints(0u64..1_000_000), n in ints(2usize..48)) {
        let tree = docs::random_tagged_tree(seed, n, &TAGS);
        let entries = document_registry_figure7();
        let failures: Vec<String> = xupd_exec::par_map(&entries, |entry| axis_diff(entry, &tree))
            .into_iter()
            .flatten()
            .collect();
        prop_assert_eq!(entries.len(), 12, "all Figure 7 schemes diffed");
        prop_assert!(failures.is_empty(), "axis mismatches: {:?}", failures);
    }

    fn sibling_axes_partition_parents_children(seed in ints(0u64..1_000_000), n in ints(2usize..60)) {
        let tree = docs::random_tagged_tree(seed, n, &TAGS);
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        for i in 0..enc.len() {
            let mut assembled = enc.preceding_siblings(i).to_vec();
            assembled.push(i);
            assembled.extend_from_slice(enc.following_siblings(i));
            match enc.parent(i) {
                None => prop_assert_eq!(assembled, vec![i], "root has no siblings"),
                Some(p) => prop_assert_eq!(assembled.as_slice(), enc.children(p)),
            }
        }
    }

    fn streaming_evaluator_equals_reference(seed in ints(0u64..1_000_000), n in ints(4usize..60)) {
        let tree = docs::random_tagged_tree(seed, n, &TAGS);
        let queries = [
            "//a", "//b/c", "//a//b", "/root/a", "//c/..",
            "//b/ancestor::*", "//a/following-sibling::*", "//c/preceding::*",
            "//a/@id", "//b[1]", "//a/descendant-or-self::a", "//d/text()",
        ];
        for q in queries {
            let expr = parse_xpath(q).unwrap();
            let qed = EncodedDocument::encode(Qed::new(), &tree).unwrap();
            prop_assert_eq!(
                // lint:allow(R10): evaluator-vs-reference property needs both sides
                expr.evaluate(&qed),
                evaluate_reference(&expr, &qed),
                "query {} diverged (QED)", q
            );
            let dewey = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
            prop_assert_eq!(
                // lint:allow(R10): evaluator-vs-reference property needs both sides
                expr.evaluate(&dewey),
                evaluate_reference(&expr, &dewey),
                "query {} diverged (DeweyID)", q
            );
        }
    }

    fn string_value_concatenates_extent_text(seed in ints(0u64..1_000_000), n in ints(2usize..60)) {
        let tree = docs::random_tagged_tree(seed, n, &TAGS);
        let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
        for i in 0..enc.len() {
            let kind = &enc.row(i).kind;
            if kind.is_element() {
                // reference: concatenated text over the label-path
                // descendant set
                let mut expect = String::new();
                for j in enc.descendants_via_labels(i) {
                    if enc.row(j).kind.is_text() {
                        expect.push_str(enc.row(j).kind.value().unwrap_or(""));
                    }
                }
                prop_assert_eq!(enc.string_value(i), expect);
            }
        }
    }
}

/// The pre-topology evaluator, preserved verbatim as the reference:
/// per-context axis enumeration over the label-algebra paths, full
/// sort+dedup after every step.
fn evaluate_reference<S: LabelingScheme>(expr: &XPathExpr, doc: &EncodedDocument<S>) -> Vec<usize> {
    use xupd_encoding::xpath::{Axis, NodeTest, Pred};

    fn test_matches<S: LabelingScheme>(
        doc: &EncodedDocument<S>,
        i: usize,
        axis: Axis,
        test: &NodeTest,
    ) -> bool {
        let kind = &doc.row(i).kind;
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => kind.is_text(),
            NodeTest::Any => {
                if axis == Axis::Attribute {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                }
            }
            NodeTest::Name(name) => {
                if axis == Axis::Attribute {
                    kind.is_attribute() && kind.name() == Some(name)
                } else {
                    kind.is_element() && kind.name() == Some(name)
                }
            }
        }
    }

    let mut context: Vec<usize> = vec![doc.root()];
    for step in expr.steps() {
        let mut next: Vec<usize> = Vec::new();
        for &ctx in &context {
            let mut candidates: Vec<usize> = match step.axis {
                Axis::Child => doc.children_via_scan(ctx),
                Axis::Descendant => doc.descendants_via_labels(ctx),
                Axis::DescendantOrSelf => {
                    let mut v = vec![ctx];
                    v.extend(doc.descendants_via_labels(ctx));
                    v
                }
                Axis::Parent => doc.parent(ctx).into_iter().collect(),
                Axis::Ancestor => doc.ancestors(ctx),
                Axis::Following => doc.following_via_labels(ctx),
                Axis::Preceding => doc.preceding_via_labels(ctx),
                Axis::FollowingSibling => doc.following_siblings(ctx).to_vec(),
                Axis::PrecedingSibling => doc.preceding_siblings(ctx).to_vec(),
                Axis::Attribute => doc.attributes(ctx),
                Axis::SelfAxis => vec![ctx],
            };
            candidates.retain(|&i| test_matches(doc, i, step.axis, &step.test));
            for pred in &step.preds {
                match pred {
                    Pred::Position(k) => {
                        candidates = candidates
                            .into_iter()
                            .enumerate()
                            .filter(|(pos, _)| pos + 1 == *k)
                            .map(|(_, i)| i)
                            .collect();
                    }
                    Pred::AttrEq(name, value) => {
                        candidates
                            .retain(|&i| doc.attribute_value(i, name) == Some(value.as_str()));
                    }
                }
            }
            next.extend(candidates);
        }
        next.sort_unstable();
        next.dedup();
        context = next;
    }
    context
}

// ---------- goldens: the Figure 1 document, row by row ---------------

/// Figure 1 document-order rows (16 nodes): #doc, book, title, @genre,
/// "Wayfarer", author, "Matthew Dickens", publisher, editor, name,
/// "Destiny Image", address, "USA", edition, @year, "1.0".
#[test]
fn figure1_topology_golden() {
    let tree = xupd_xmldom::sample::figure1_document();
    let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
    let t = enc.topology();
    assert_eq!(enc.len(), 16);
    assert_eq!(
        (0..16).map(|i| t.extent(i)).collect::<Vec<_>>(),
        [16, 16, 5, 4, 5, 7, 7, 16, 13, 11, 11, 13, 13, 16, 15, 16]
    );
    assert_eq!(
        (0..16).map(|i| t.depth(i)).collect::<Vec<_>>(),
        [0, 1, 2, 3, 3, 2, 3, 2, 3, 4, 5, 4, 5, 3, 4, 4]
    );
    assert_eq!(
        t.child_start(),
        [0, 1, 4, 6, 6, 6, 7, 7, 9, 11, 12, 12, 13, 13, 15, 15, 15]
    );
    assert_eq!(
        t.child_rows(),
        [1, 2, 5, 7, 3, 4, 6, 8, 13, 9, 11, 10, 12, 14, 15]
    );
}

#[test]
fn figure1_topology_rebuilds_from_parents() {
    // The sidecar is a pure function of the parent column.
    let tree = xupd_xmldom::sample::figure1_document();
    let enc = EncodedDocument::encode(DeweyId::new(), &tree).unwrap();
    let parents: Vec<Option<usize>> = (0..enc.len()).map(|i| enc.parent(i)).collect();
    let rebuilt = Topology::from_parents(&parents).unwrap();
    assert_eq!(&rebuilt, enc.topology());
}
