//! # xupd-bench — the benchmark and table-regeneration harness
//!
//! One regenerator per paper artifact (the experiment index lives in
//! DESIGN.md §5):
//!
//! | Artifact | Regenerator |
//! |---|---|
//! | Figure 1 (pre/post tree) + Figure 2 (encoding table) | `cargo run --bin figures` |
//! | Figures 3–6 (DeweyID / ORDPATH / LSDX / ImprovedBinary trees) | `cargo run --bin figures` |
//! | Figure 7 (evaluation matrix, declared + measured) | `cargo run --bin figure7` |
//! | P1/P2 (update cost, relabelling, overflow events) | `cargo run --bin update_cost_table`, `cargo run --bin bench_update_cost` |
//! | P3 (label-size growth, QED vs Vector under skew) | `cargo run --bin growth_table`, `cargo run --bin bench_label_growth` |
//! | P5 (XPath evaluation over the encoding) | `cargo run --bin bench_query_eval` |
//! | bulk-labelling throughput (all schemes) | `cargo run --bin bench_bulk_labeling` |
//!
//! The timing binaries (`bench_*`) run on `xupd_testkit::bench` —
//! warmup + timed iterations, median/p90 — and emit JSON artifacts into
//! `results/BENCH_*.json`, so the repo's perf trajectory is tracked
//! offline with no external harness. The library part hosts the
//! measurement helpers the table and timing binaries share, so numbers
//! in tables and benches come from one code path.

use xupd_labelcore::{DynScheme, LabelingScheme, SchemeSession};
use xupd_schemes::SchemeEntry;
use xupd_workloads::{Script, ScriptKind};
use xupd_xmldom::XmlTree;

/// Size series of one scheme under one workload: total label bits after
/// every `step` operations.
#[derive(Debug, Clone)]
pub struct GrowthSeries {
    /// Scheme name.
    pub scheme: &'static str,
    /// Workload kind.
    pub kind: ScriptKind,
    /// `(ops applied, total label bits, max label bits)` checkpoints.
    pub points: Vec<(usize, u64, u64)>,
    /// Relabels observed across the run.
    pub relabels: u64,
    /// Overflow events observed across the run.
    pub overflows: u64,
}

/// Drive `ops` operations of `kind` against `scheme` on a copy of
/// `base`, checkpointing label sizes every `step` ops.
///
/// Typed convenience over [`growth_series_session`] — both paths run
/// the same driver, so table and bench numbers can never diverge.
pub fn growth_series<S: LabelingScheme + Clone + 'static>(
    scheme: S,
    base: &XmlTree,
    kind: ScriptKind,
    ops: usize,
    step: usize,
    seed: u64,
) -> GrowthSeries {
    let mut session = SchemeSession::new(scheme);
    growth_series_session(&mut session, base, kind, ops, step, seed)
}

/// [`growth_series`] over an erased scheme session — the form the
/// registry battery fans out over the `xupd-exec` pool.
pub fn growth_series_session(
    session: &mut dyn DynScheme,
    base: &XmlTree,
    kind: ScriptKind,
    ops: usize,
    step: usize,
    seed: u64,
) -> GrowthSeries {
    let name = session.name();
    let mut tree = base.clone();
    session.label_tree(&tree).expect("bulk labelling");
    let mut points = vec![(0usize, session.total_bits(), session.max_bits())];
    let mut relabels = 0u64;
    let mut overflows = 0u64;
    let mut applied = 0usize;
    while applied < ops {
        let chunk = step.min(ops - applied);
        let script = Script::generate(kind, chunk, tree.len(), seed ^ applied as u64);
        let stats = xupd_framework::driver::run_script_dyn(&mut tree, session, &script)
            .expect("benchmark scripts drive live trees");
        relabels += stats.relabeled;
        overflows += stats.overflow_events;
        applied += chunk;
        points.push((applied, session.total_bits(), session.max_bits()));
    }
    GrowthSeries {
        scheme: name,
        kind,
        points,
        relabels,
        overflows,
    }
}

/// Measure a [`GrowthSeries`] for every registry entry, one pool worker
/// per scheme, results in roster order (order-preserving `par_map`).
pub fn growth_battery(
    entries: &[SchemeEntry],
    base: &XmlTree,
    kind: ScriptKind,
    ops: usize,
    step: usize,
    seed: u64,
) -> Vec<GrowthSeries> {
    xupd_exec::par_map(entries, |entry| {
        let mut session = entry.session();
        growth_series_session(session.as_mut(), base, kind, ops, step, seed)
    })
}

/// Render a growth table: one row per scheme, end-state total bits, max
/// label bits, relabels and overflow events.
pub fn render_growth_table(kind: ScriptKind, series: &[GrowthSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Workload: {} — label storage after the full run\n",
        kind.name()
    ));
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}\n",
        "Scheme", "total bits", "max bits", "relabels", "overflows"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for s in series {
        let (_, total, max) = *s.points.last().expect("at least the initial point");
        out.push_str(&format!(
            "{:<18} {:>12} {:>12} {:>10} {:>10}\n",
            s.scheme, total, max, s.relabels, s.overflows
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_schemes::vector::VectorScheme;
    use xupd_workloads::docs;

    #[test]
    fn growth_series_checkpoints_accumulate() {
        let base = docs::wide(20);
        let s = growth_series(Qed::new(), &base, ScriptKind::Skewed, 100, 25, 1);
        assert_eq!(s.points.len(), 5); // 0,25,50,75,100
        assert!(s.points.last().unwrap().1 > s.points[0].1);
        assert_eq!(s.relabels, 0);
    }

    #[test]
    fn p3_vector_grows_slower_than_qed_under_skew() {
        // The reproduction of the paper's §4/§5 claim, at harness level.
        let base = docs::wide(20);
        let qed = growth_series(Qed::new(), &base, ScriptKind::Skewed, 300, 100, 1);
        let vec = growth_series(VectorScheme::new(), &base, ScriptKind::Skewed, 300, 100, 1);
        let qed_max = qed.points.last().unwrap().2;
        let vec_max = vec.points.last().unwrap().2;
        assert!(
            vec_max * 4 < qed_max,
            "vector max {vec_max} bits ≪ qed max {qed_max} bits"
        );
    }

    #[test]
    fn render_table_lists_schemes() {
        let base = docs::wide(10);
        let series = growth_battery(
            &xupd_schemes::registry_figure7(),
            &base,
            ScriptKind::Random,
            30,
            30,
            42,
        );
        let table = render_growth_table(ScriptKind::Random, &series);
        assert!(table.contains("QED"));
        assert!(table.contains("Vector"));
        assert_eq!(series.len(), 12);
    }

    #[test]
    fn typed_and_session_growth_series_agree() {
        let base = docs::wide(15);
        let typed = growth_series(Qed::new(), &base, ScriptKind::Skewed, 60, 20, 9);
        let mut session = SchemeSession::new(Qed::new());
        let erased = growth_series_session(&mut session, &base, ScriptKind::Skewed, 60, 20, 9);
        assert_eq!(typed.points, erased.points);
        assert_eq!(typed.relabels, erased.relabels);
        assert_eq!(typed.overflows, erased.overflows);
    }
}
