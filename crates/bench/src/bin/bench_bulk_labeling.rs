//! Bulk-labelling throughput: time to label a whole document, per
//! scheme, per document size. Backs the "initial construction" costs the
//! paper discusses (recursive labelling algorithms requiring multiple
//! passes, §5.1 *Recursive Labelling Algorithm*).
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_bulk_labeling
//! ```
//!
//! Emits `results/BENCH_bulk_labeling.json`.

use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;
use xupd_xmldom::XmlTree;

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

struct BulkBench<'a, 'b> {
    h: &'a mut Harness,
    tree: &'b XmlTree,
    size: usize,
}

impl SchemeVisitor for BulkBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let name = scheme.name();
        self.h.bench(&format!("bulk/{name}/{}", self.size), || {
            black_box(scheme.label_tree(black_box(self.tree)))
        });
    }
}

fn main() {
    let mut h = Harness::new("bulk_labeling");
    for size in [500usize, 2000] {
        let tree = docs::random_tree(42, size);
        let mut v = BulkBench {
            h: &mut h,
            tree: &tree,
            size,
        };
        xupd_schemes::visit_figure7_schemes(&mut v);
    }
    h.finish().expect("write results/BENCH_bulk_labeling.json");
}
