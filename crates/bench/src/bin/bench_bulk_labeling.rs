//! Bulk-labelling throughput: time to label a whole document, per
//! scheme, per document size. Backs the "initial construction" costs the
//! paper discusses (recursive labelling algorithms requiring multiple
//! passes, §5.1 *Recursive Labelling Algorithm*).
//!
//! Each scheme's case runs on its own `xupd-exec` pool worker
//! (`Harness::bench_case` measures off-thread; allocation deltas are
//! per-thread so workers never see a neighbour's allocations), and the
//! completed samples are pushed in roster order — the emitted JSON is
//! byte-identical at any `XUPD_THREADS`.
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_bulk_labeling
//! ```
//!
//! Emits `results/BENCH_bulk_labeling.json`.

use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

fn main() {
    let mut h = Harness::new("bulk_labeling");
    let entries = xupd_schemes::registry_figure7();
    for size in [500usize, 2000] {
        let tree = docs::random_tree(42, size);
        let samples = xupd_exec::par_map(&entries, |entry| {
            let mut session = entry.session();
            h.bench_case(&format!("bulk/{}/{size}", entry.name()), || {
                black_box(session.label_tree(black_box(&tree)))
            })
        });
        for sample in samples {
            h.push(sample);
        }
    }
    h.finish().expect("write results/BENCH_bulk_labeling.json");
}
