//! P7: wall-clock of the full-roster checker battery (`measure_all`)
//! across `xupd-exec` pool widths, plus the per-scheme serial costs the
//! pool schedules over.
//!
//! The battery is seventeen independent per-scheme batteries, so the
//! achievable speedup at `w` workers is bounded by the list-scheduling
//! makespan `max(longest scheme, total / w)` — printed below as the
//! *modelled* speedup next to the measured one. On a single-CPU host
//! the measured column stays ~1x (threads time-slice one core); the
//! modelled column is what the same schedule delivers once `w` cores
//! exist.
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_matrix_pool
//! ```

use xupd_framework::{measure_all_threads, measure_entries_threads};
use xupd_schemes::registry;
use xupd_testkit::bench::{black_box, Harness};

xupd_testkit::install_counting_allocator!();

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut h = Harness::new("matrix_pool");

    // Whole-battery wall clock at each pool width.
    for workers in WIDTHS {
        h.bench(&format!("measure_all/threads/{workers}"), || {
            black_box(measure_all_threads(workers)).expect("battery is sound")
        });
    }

    // Per-scheme serial cost: one single-entry roster at a time, on the
    // inline sequential path.
    let names: Vec<&'static str> = registry().iter().map(|e| e.name()).collect();
    let mut serial_ns: Vec<(String, u64)> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let sample = h.bench_case(&format!("battery/{name}"), || {
            let entry = registry().swap_remove(i);
            let (results, errors) = measure_entries_threads(vec![entry], 1);
            black_box((results.len(), errors.len()))
        });
        serial_ns.push((sample.name.clone(), sample.median_ns()));
        h.push(sample);
    }

    // List-scheduling model over the measured serial costs.
    let total: u64 = serial_ns.iter().map(|(_, ns)| ns).sum();
    let longest = serial_ns.iter().map(|(_, ns)| *ns).max().unwrap_or(0);
    println!("\nserial battery total {:.1} ms, longest scheme {:.1} ms", ms(total), ms(longest));
    for workers in WIDTHS {
        let makespan = longest.max(total / workers as u64);
        println!(
            "  modelled makespan @ {workers} worker(s): {:>7.1} ms  (speedup {:.2}x)",
            ms(makespan),
            total as f64 / makespan as f64
        );
    }

    h.finish().expect("results dir is writable");
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}
