//! P8 — batched vs. per-op update cost through the mutation-log API.
//!
//! The same 256-op workload is applied in batches of 1, 16 and 256
//! mutations: each batch is translated with `batch_of` against the live
//! tree and applied atomically with `apply_log_dyn`. Batch size 1 is
//! the per-op client (one validation pass, one tree/labelling snapshot
//! and one element-pool scan *per edit*); larger batches amortise all
//! three, which is exactly the saving the batch API exists to buy. A
//! `driver` reference case runs the classic per-op `run_script_dyn`
//! driver on the identical script for context.
//!
//! Each scheme's cases run on their own `xupd-exec` pool worker; samples
//! are pushed in roster order so the emitted JSON is byte-identical at
//! any `XUPD_THREADS`.
//!
//! Offline harness:
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_batch_update
//! ```
//!
//! Emits `results/BENCH_batch_update.json` and prints a batched-wins
//! tally (size-256 median vs. size-1 median per scheme).

use xupd_framework::driver::run_script_dyn;
use xupd_framework::mutations::{apply_log_dyn, batch_of};
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::{docs, Script, ScriptKind};

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

/// Total mutations per iteration; also the largest batch size.
const OPS: usize = 256;
/// Batch sizes under comparison (1 = the per-op client).
const SIZES: [usize; 3] = [1, 16, 256];

/// Apply `script` in consecutive chunks of `size` ops, translating each
/// chunk against the live tree and applying it atomically.
fn run_chunked(
    tree: &mut xupd_xmldom::XmlTree,
    session: &mut dyn xupd_labelcore::DynScheme,
    script: &Script,
    size: usize,
) {
    for chunk in script.ops.chunks(size) {
        let sub = Script {
            kind: script.kind,
            ops: chunk.to_vec(),
        };
        let log = batch_of(&sub, tree).unwrap();
        apply_log_dyn(tree, session, &log).unwrap();
    }
}

fn main() {
    let mut h = Harness::new("batch_update");
    let base = docs::random_tree(0xBA7C, 300);
    let entries = xupd_schemes::registry();
    let script = Script::generate(ScriptKind::Random, OPS, base.len(), 13);

    // (scheme, size-1 median, size-256 median) for the wins tally
    let mut medians: Vec<(&'static str, u64, u64)> = Vec::new();

    let per_scheme = xupd_exec::par_map(&entries, |entry| {
        let mut samples = Vec::new();
        let mut session = entry.session();
        samples.push(h.bench_case(
            &format!("batch/driver/{}/{OPS}", entry.name()),
            || {
                let mut tree = base.clone();
                session.label_tree(&tree).unwrap();
                black_box(run_script_dyn(&mut tree, session.as_mut(), &script).unwrap())
            },
        ));
        for size in SIZES {
            samples.push(h.bench_case(
                &format!("batch/logged/{}/{size}", entry.name()),
                || {
                    let mut tree = base.clone();
                    session.label_tree(&tree).unwrap();
                    run_chunked(&mut tree, session.as_mut(), &script, size);
                    black_box(tree.len())
                },
            ));
        }
        (entry.name(), samples)
    });

    for (name, samples) in per_scheme {
        let one = samples[1].median_ns();
        let big = samples[3].median_ns();
        medians.push((name, one, big));
        for sample in samples {
            h.push(sample);
        }
    }

    let wins = medians.iter().filter(|(_, one, big)| big < one).count();
    println!("\nbatched (256) beats per-op (1) on {wins}/{} schemes:", medians.len());
    for (name, one, big) in &medians {
        let speedup = *big as f64 / (*one).max(1) as f64;
        println!(
            "  {name:<14} per-op {one:>12}ns  batched {big:>12}ns  ({:.2}x)",
            1.0 / speedup.max(f64::MIN_POSITIVE)
        );
    }

    h.finish().expect("write results/BENCH_batch_update.json");
}
