//! P12 — flux DSL compile+apply vs. a hand-built mutation log.
//!
//! Two program styles, each applied two ways per scheme:
//!
//! * **hand** — the expert client: targets resolved ahead of time, the
//!   `MutationLog` assembled directly, analyzed and applied through
//!   `apply_plan_dyn`;
//! * **flux** — the DSL client: the equivalent program *source text*
//!   is lexed, parsed, statically checked, lowered against the live
//!   tree and applied through the identical plan path — the whole
//!   compiler runs inside the timed region.
//!
//! The primary family (`flux/dsl` vs `flux/hand`) is the DSL's batch
//! idiom — one `for /r/s do … end` comprehension fanning out to every
//! section, 3 ops per section — where compilation is O(program), not
//! O(batch), so its cost amortizes exactly as the batch grows. The
//! secondary family (`flux/enum` vs `flux/hand-enum`) spells every op
//! as its own statement with a positional path: that prices the
//! per-statement compiler path (one XPath parse + one resolution per
//! statement), the worst case for the front end.
//!
//! Both clients produce byte-identical logs (asserted per batch size
//! before timing starts), so the measured gap is purely the compiler.
//! The acceptance line: flux within 1.2× of hand at batch ≥ 16 on a
//! majority of schemes (primary family).
//!
//! Each scheme's cases run on their own `xupd-exec` pool worker;
//! samples are pushed in roster order so the emitted JSON is
//! byte-identical at any `XUPD_THREADS`.
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_flux
//! ```
//!
//! Emits `results/BENCH_flux.json` and prints the ratio table.

use std::fmt::Write as _;
use xupd_flux::FluxProgram;
use xupd_framework::analysis::{analyze, apply_plan_dyn};
use xupd_framework::mutations::{self, LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_testkit::bench::{black_box, Harness};
use xupd_xmldom::{NodeId, NodeKind, XmlTree};

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

/// Section counts; each section contributes `OPS_PER_SECTION` ops, so
/// the batch sizes are 3 / 48 / 192 — the acceptance criterion reads
/// the batches ≥ 16.
const SECTIONS: [usize; 3] = [1, 16, 64];
/// Ops emitted per section by both program styles.
const OPS_PER_SECTION: usize = 3;

/// The batch idiom: one comprehension, every section, 3 ops each.
const DSL_PROGRAM: &str = "for /r/s do \
     insert <item>v</item> into .; \
     set ./x/text() to \"w\"; \
     delete ./y; \
     end";

/// `<r> (<s><x>t</x><y/></s> × n) </r>`.
fn base_tree(n: usize) -> XmlTree {
    let mut src = String::from("<r>");
    for _ in 0..n {
        src.push_str("<s><x>t</x><y/></s>");
    }
    src.push_str("</r>");
    xupd_xmldom::parse(&src).expect("static document")
}

/// Per-section resolved targets: `(s, x's text child, y)`.
fn targets(tree: &XmlTree) -> Vec<(NodeId, NodeId, NodeId)> {
    let root = tree.document_element().expect("document element");
    tree.children(root)
        .filter(|&s| tree.kind(s).is_element())
        .map(|s| {
            let mut elems = tree.children(s).filter(|&c| tree.kind(c).is_element());
            let x = elems.next().expect("x child");
            let y = elems.next().expect("y child");
            let t = tree
                .children(x)
                .find(|&c| tree.kind(c).is_text())
                .expect("text child");
            (s, t, y)
        })
        .collect()
}

/// The enumerated style: every op its own statement, positional paths.
fn enum_source(n: usize) -> String {
    let mut src = String::new();
    for i in 1..=n {
        let _ = writeln!(src, "insert <item>v</item> into /r/s[{i}];");
        let _ = writeln!(src, "set /r/s[{i}]/x/text() to \"w\";");
        let _ = writeln!(src, "delete /r/s[{i}]/y;");
    }
    src
}

/// The expert client's log — also the byte-level ground truth both
/// program styles must compile to. `LogId`s follow the compiler's
/// allocation order.
fn hand_log(targets: &[(NodeId, NodeId, NodeId)]) -> MutationLog {
    let mut log = MutationLog::default();
    let mut next = 0u32;
    for &(s, t, y) in targets {
        let el = LogId(next);
        let txt = LogId(next + 1);
        next += 2;
        log.push(Mutation::CreateElement {
            id: el,
            name: "item".to_string(),
            place: Place::LastChildOf(NodeRef::Node(s)),
        });
        log.push(Mutation::CreateNode {
            id: txt,
            kind: NodeKind::text("v"),
            place: Place::LastChildOf(NodeRef::New(el)),
        });
        log.push(Mutation::SetText {
            target: NodeRef::Node(t),
            text: "w".to_string(),
        });
        log.push(Mutation::Delete {
            target: NodeRef::Node(y),
        });
    }
    log
}

fn main() {
    let mut h = Harness::new("flux");
    let entries = xupd_schemes::registry();

    // Byte-identical compilation is a precondition of the comparison:
    // assert both styles against the ground-truth log, outside timing.
    for n in SECTIONS {
        let tree = base_tree(n);
        let hand = mutations::serialize(&hand_log(&targets(&tree)));
        for (style, src) in [("dsl", DSL_PROGRAM.to_string()), ("enum", enum_source(n))] {
            let program = FluxProgram::parse(&src).expect("well-formed source");
            let compiled = program.compile(&tree).expect("clean program");
            assert_eq!(
                mutations::serialize(&compiled.log),
                hand,
                "flux {style} and hand logs must be byte-identical at {n} sections"
            );
        }
    }

    // (scheme, style, batch ops, hand median, flux median)
    let mut medians: Vec<(&'static str, &'static str, usize, u64, u64)> = Vec::new();

    let per_scheme = xupd_exec::par_map(&entries, |entry| {
        let mut samples = Vec::new();
        let mut session = entry.session();
        for n in SECTIONS {
            let tree = base_tree(n);
            let hand = hand_log(&targets(&tree));
            let ops = n * OPS_PER_SECTION;
            let enum_src = enum_source(n);
            samples.push(h.bench_case(&format!("flux/hand/{}/{ops}", entry.name()), || {
                let mut t = tree.clone();
                session.label_tree(&t).unwrap();
                let log = black_box(hand.clone());
                let plan = analyze(&log, &t).unwrap();
                black_box(apply_plan_dyn(&mut t, session.as_mut(), &log, &plan).unwrap())
            }));
            for (style, src) in [("dsl", DSL_PROGRAM), ("enum", enum_src.as_str())] {
                samples.push(h.bench_case(
                    &format!("flux/{style}/{}/{ops}", entry.name()),
                    || {
                        let mut t = tree.clone();
                        session.label_tree(&t).unwrap();
                        let program = FluxProgram::parse(src).unwrap();
                        let compiled = program.compile(&t).unwrap();
                        black_box(
                            apply_plan_dyn(
                                &mut t,
                                session.as_mut(),
                                &compiled.log,
                                &compiled.plan,
                            )
                            .unwrap(),
                        )
                    },
                ));
            }
        }
        (entry.name(), samples)
    });

    for (name, samples) in per_scheme {
        for (si, n) in SECTIONS.iter().enumerate() {
            let ops = n * OPS_PER_SECTION;
            let hand = samples[3 * si].median_ns();
            let dsl = samples[3 * si + 1].median_ns();
            let enumerated = samples[3 * si + 2].median_ns();
            medians.push((name, "dsl", ops, hand, dsl));
            medians.push((name, "enum", ops, hand, enumerated));
        }
        for sample in samples {
            h.push(sample);
        }
    }

    println!("\nflux-vs-hand medians (ratio = flux/hand):");
    for &(name, style, ops, hand, flux) in &medians {
        let ratio = flux as f64 / hand.max(1) as f64;
        println!(
            "  {name:<16} {style:<5} batch={ops:<4} hand {hand:>10}ns  flux {flux:>10}ns  {ratio:.2}x"
        );
    }
    for n in SECTIONS.iter().skip(1) {
        let ops = n * OPS_PER_SECTION;
        let rows: Vec<_> = medians
            .iter()
            .filter(|m| m.1 == "dsl" && m.2 == ops)
            .collect();
        let within = rows
            .iter()
            .filter(|(_, _, _, hand, flux)| *flux as f64 <= 1.2 * (*hand).max(1) as f64)
            .count();
        println!(
            "batch {ops}: flux (dsl) within 1.2x of hand on {within}/{} schemes",
            rows.len()
        );
    }

    h.finish().expect("write results/BENCH_flux.json");
}
