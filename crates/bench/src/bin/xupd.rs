//! `xupd` — label, inspect and query an XML file from the command line.
//!
//! ```text
//! xupd <file.xml> labels  [--scheme NAME]          print every node's label
//! xupd <file.xml> query   <XPATH> [--scheme NAME]  evaluate an XPath subset query
//! xupd <file.xml> table                            print the Figure-2-style encoding table
//! xupd <file.xml> schemes                          list available schemes
//! xupd <file.xml> flux-check <program.flux>        check a flux update program
//! ```
//!
//! The default scheme is QED (persistent + overflow-free — the safe
//! choice §5.2's framework would recommend for a general repository).
//!
//! Scheme lookup goes through the object-safe registries
//! ([`xupd_schemes::registry`] for labelling sessions,
//! [`xupd_encoding::document_registry`] for encoded documents), so the
//! CLI roster can never drift from the library roster.

use std::process::ExitCode;
use xupd_encoding::figure2::{figure2_table, render_figure2};
use xupd_encoding::{document_registry, parse_xpath};
use xupd_xmldom::{parse, NodeKind, XmlTree};

fn usage() -> ExitCode {
    eprintln!(
        "usage: xupd <file.xml> <labels|query|table|schemes|flux-check> [XPATH|PROGRAM] [--scheme NAME]\n\
         default scheme: QED. `xupd <file> schemes` lists all."
    );
    ExitCode::from(2)
}

/// Statically check a flux program against the document, lint-style:
/// one `line:col: CODE message` per finding. The deeper compile stage
/// runs only when the static pass is clean, surfacing strict-match
/// (F010–F012) errors without ever mutating the tree.
fn flux_check(tree: &XmlTree, program_file: &str) -> ExitCode {
    let src = match std::fs::read_to_string(program_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {program_file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = match xupd_flux::FluxProgram::parse(&src) {
        Ok(p) => {
            let mut ds = p.check();
            if ds.is_empty() {
                if let Err(compile) = p.compile(tree) {
                    ds = compile;
                }
            }
            ds
        }
        Err(ds) => ds,
    };
    if diags.is_empty() {
        println!("{program_file}: ok");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{program_file}:{}", d.render());
    }
    ExitCode::FAILURE
}

fn print_schemes() {
    for entry in xupd_schemes::registry() {
        let d = &entry.descriptor;
        println!(
            "  {:<18} {:<8} {:<9} {}",
            d.name,
            d.order.to_string(),
            d.encoding.to_string(),
            if d.in_figure7 {
                "Figure 7"
            } else {
                "extension"
            }
        );
    }
}

fn print_labels(tree: &XmlTree, wanted: &str) -> bool {
    let Some(entry) = xupd_schemes::registry()
        .into_iter()
        .find(|e| e.name() == wanted)
    else {
        return false;
    };
    let mut session = entry.session();
    session.label_tree(tree).unwrap();
    for n in tree.ids_in_doc_order() {
        let what = match tree.kind(n) {
            NodeKind::Document => "#document".to_string(),
            NodeKind::Element { name } => format!("<{name}>"),
            NodeKind::Attribute { name, .. } => format!("@{name}"),
            NodeKind::Text { .. } => "#text".to_string(),
            NodeKind::Comment { .. } => "#comment".to_string(),
            NodeKind::Pi { target, .. } => format!("<?{target}?>"),
        };
        println!(
            "{}{:<24} {}",
            "  ".repeat(tree.depth(n) as usize),
            what,
            session.label_display(n).unwrap()
        );
    }
    true
}

fn print_query(tree: &XmlTree, wanted: &str, query: &str) -> bool {
    let Some(entry) = document_registry().into_iter().find(|e| e.name() == wanted) else {
        return false;
    };
    let expr = match parse_xpath(query) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return true;
        }
    };
    let doc = (entry.encode)(tree).unwrap();
    let hits = doc.evaluate(&expr);
    println!("{} hit(s)", hits.len());
    for h in hits {
        let kind = doc.kind(h);
        println!(
            "  {:<12} {:<16} {}",
            kind.type_tag(),
            kind.name().unwrap_or(""),
            doc.string_value(h).chars().take(60).collect::<String>()
        );
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let file = &args[0];
    let mut wanted = "QED".to_string();
    if let Some(i) = args.iter().position(|a| a == "--scheme") {
        match args.get(i + 1) {
            Some(name) => wanted = name.clone(),
            None => return usage(),
        }
    }

    // Validate the command shape before touching the file.
    let query = match args[1].as_str() {
        "labels" | "table" | "schemes" => None,
        "query" | "flux-check" => match args.get(2) {
            Some(q) if !q.starts_with("--") => Some(q.clone()),
            _ => return usage(),
        },
        _ => return usage(),
    };

    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tree = match parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let matched = match args[1].as_str() {
        "schemes" => {
            print_schemes();
            true
        }
        "table" => {
            print!("{}", render_figure2(&figure2_table(&tree)));
            true
        }
        "labels" => print_labels(&tree, &wanted),
        "query" => print_query(&tree, &wanted, query.as_deref().unwrap_or_default()),
        "flux-check" => return flux_check(&tree, query.as_deref().unwrap_or_default()),
        _ => unreachable!("validated above"),
    };
    if !matched {
        eprintln!("unknown scheme '{wanted}'; run `xupd {file} schemes` for the roster");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
