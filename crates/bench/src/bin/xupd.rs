//! `xupd` — label, inspect and query an XML file from the command line.
//!
//! ```text
//! xupd <file.xml> labels  [--scheme NAME]          print every node's label
//! xupd <file.xml> query   <XPATH> [--scheme NAME]  evaluate an XPath subset query
//! xupd <file.xml> table                            print the Figure-2-style encoding table
//! xupd <file.xml> schemes                          list available schemes
//! ```
//!
//! The default scheme is QED (persistent + overflow-free — the safe
//! choice §5.2's framework would recommend for a general repository).

use std::process::ExitCode;
use xupd_encoding::figure2::{figure2_table, render_figure2};
use xupd_encoding::{parse_xpath, EncodedDocument};
use xupd_labelcore::{Label, LabelingScheme, SchemeVisitor};
use xupd_schemes::visit_all_schemes;
use xupd_xmldom::{parse, NodeKind, XmlTree};

fn usage() -> ExitCode {
    eprintln!(
        "usage: xupd <file.xml> <labels|query|table|schemes> [XPATH] [--scheme NAME]\n\
         default scheme: QED. `xupd <file> schemes` lists all."
    );
    ExitCode::from(2)
}

enum Cmd {
    Labels,
    Query(String),
    Table,
    Schemes,
}

struct Run<'a> {
    tree: &'a XmlTree,
    wanted: String,
    cmd: Cmd,
    matched: bool,
}

impl SchemeVisitor for Run<'_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        match &self.cmd {
            Cmd::Schemes => {
                let d = scheme.descriptor();
                println!(
                    "  {:<18} {:<8} {:<9} {}",
                    d.name,
                    d.order.to_string(),
                    d.encoding.to_string(),
                    if d.in_figure7 {
                        "Figure 7"
                    } else {
                        "extension"
                    }
                );
                self.matched = true;
            }
            _ if scheme.name() != self.wanted => {}
            Cmd::Labels => {
                self.matched = true;
                let labeling = scheme.label_tree(self.tree).unwrap();
                for n in self.tree.ids_in_doc_order() {
                    let what = match self.tree.kind(n) {
                        NodeKind::Document => "#document".to_string(),
                        NodeKind::Element { name } => format!("<{name}>"),
                        NodeKind::Attribute { name, .. } => format!("@{name}"),
                        NodeKind::Text { .. } => "#text".to_string(),
                        NodeKind::Comment { .. } => "#comment".to_string(),
                        NodeKind::Pi { target, .. } => format!("<?{target}?>"),
                    };
                    println!(
                        "{}{:<24} {}",
                        "  ".repeat(self.tree.depth(n) as usize),
                        what,
                        labeling.req(n).unwrap().display()
                    );
                }
            }
            Cmd::Query(q) => {
                self.matched = true;
                let expr = match parse_xpath(q) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("{e}");
                        return;
                    }
                };
                let doc = EncodedDocument::encode(scheme, self.tree).unwrap();
                let hits = expr.evaluate(&doc);
                println!("{} hit(s)", hits.len());
                for h in hits {
                    let row = doc.row(h);
                    println!(
                        "  {:<12} {:<16} {}",
                        row.kind.type_tag(),
                        row.kind.name().unwrap_or(""),
                        doc.string_value(h).chars().take(60).collect::<String>()
                    );
                }
            }
            Cmd::Table => unreachable!("handled before dispatch"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let file = &args[0];
    let mut wanted = "QED".to_string();
    if let Some(i) = args.iter().position(|a| a == "--scheme") {
        match args.get(i + 1) {
            Some(name) => wanted = name.clone(),
            None => return usage(),
        }
    }
    let cmd = match args[1].as_str() {
        "labels" => Cmd::Labels,
        "table" => Cmd::Table,
        "schemes" => Cmd::Schemes,
        "query" => match args.get(2) {
            Some(q) if !q.starts_with("--") => Cmd::Query(q.clone()),
            _ => return usage(),
        },
        _ => return usage(),
    };

    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tree = match parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if matches!(cmd, Cmd::Table) {
        print!("{}", render_figure2(&figure2_table(&tree)));
        return ExitCode::SUCCESS;
    }

    let mut run = Run {
        tree: &tree,
        wanted,
        cmd,
        matched: false,
    };
    visit_all_schemes(&mut run);
    if !run.matched {
        eprintln!(
            "unknown scheme '{}'; run `xupd {file} schemes` for the roster",
            run.wanted
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
