//! P5 — XPath evaluation over the encoding scheme, per labelling
//! scheme. Since the topology sidecar landed, every axis runs on
//! interval-containment ancestry and CSR children; the per-scheme
//! `xpath/<scheme>` cases therefore measure the streaming evaluator
//! (NameIndex buckets ∩ extent ranges) rather than the historical
//! full-table label-algebra scans — compare against the seed medians in
//! EXPERIMENTS.md for the before/after.
//!
//! The `descendant-name/*` cases keep the §2.3 trade visible on one
//! query shape:
//!
//! * `scan` — the preserved label-algebra reference path (what every
//!   axis cost before the topology index);
//! * `index` — `NameIndex::descendants_named`: bucket ∩ extent range
//!   via two binary searches;
//! * `streaming` — the full parsed-XPath evaluator on the same query.
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_query_eval
//! ```
//!
//! Emits `results/BENCH_query_eval.json`.

use xupd_encoding::{document_registry_figure7, parse_xpath, EncodedDocument, NameIndex};
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

const QUERIES: [&str; 4] = [
    "/site/regions/europe/item",
    "//item/name",
    "//person/@id",
    "//open_auction/bidder/following-sibling::*",
];

/// The §2.3 trade-off, timed on `//item`: the label-algebra scan the
/// encoding used before the topology sidecar, the name-index probe, and
/// the streaming evaluator end to end.
fn bench_scan_vs_indexed(h: &mut Harness) {
    let tree = docs::xmark_like(7, 300);
    let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
    let expr = parse_xpath("//item").unwrap();
    let idx = NameIndex::build(&doc);
    let root = doc.root();

    h.bench("descendant-name/scan", || {
        // reference path: full table, label-algebra ancestry per row
        let hits: Vec<usize> = (0..doc.len())
            .filter(|&i| {
                let kind = &doc.row(i).kind;
                kind.is_element()
                    && kind.name() == Some("item")
                    && doc.is_ancestor_via_labels(root, i)
            })
            .collect();
        black_box(hits).len()
    });
    h.bench("descendant-name/index", || {
        black_box(idx.descendants_named(&doc, root, "item")).len()
    });
    h.bench("descendant-name/streaming", || {
        black_box(expr.evaluate(&doc)).len()
    });
}

fn main() {
    let mut h = Harness::new("query_eval");
    let tree = docs::xmark_like(7, 150);
    // One erased encoded document per Figure 7 scheme, each scheme's
    // case timed on its own pool worker, samples pushed in roster order.
    let entries = document_registry_figure7();
    let samples = xupd_exec::par_map(&entries, |entry| {
        let doc = (entry.encode)(&tree).unwrap();
        let exprs: Vec<_> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
        h.bench_case(&format!("xpath/{}", entry.name()), || {
            let mut total = 0usize;
            for e in &exprs {
                // lint:allow(R10): this bench *measures* raw evaluation cost
                total += black_box(doc.evaluate(e)).len();
            }
            total
        })
    });
    for sample in samples {
        h.push(sample);
    }
    bench_scan_vs_indexed(&mut h);
    h.finish().expect("write results/BENCH_query_eval.json");
}
