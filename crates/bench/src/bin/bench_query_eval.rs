//! P5 — XPath evaluation over the encoding scheme, per labelling
//! scheme. Schemes whose labels answer more relations (the *XPath
//! Evaluations* column) let the encoding answer axes from label algebra;
//! the others fall back to parent-reference chains.
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_query_eval
//! ```
//!
//! Emits `results/BENCH_query_eval.json`.

use xupd_encoding::{parse_xpath, EncodedDocument, NameIndex};
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;
use xupd_xmldom::XmlTree;

const QUERIES: [&str; 4] = [
    "/site/regions/europe/item",
    "//item/name",
    "//person/@id",
    "//open_auction/bidder/following-sibling::*",
];

struct QueryBench<'a, 'b> {
    h: &'a mut Harness,
    tree: &'b XmlTree,
}

impl SchemeVisitor for QueryBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, scheme: S) {
        let name = scheme.name();
        let doc = EncodedDocument::encode(scheme, self.tree).unwrap();
        let exprs: Vec<_> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
        self.h.bench(&format!("xpath/{name}"), || {
            let mut total = 0usize;
            for e in &exprs {
                total += black_box(e.evaluate(&doc)).len();
            }
            total
        });
    }
}

/// The §2.3 trade-off, timed: `//name` via full-table evaluation vs the
/// name index + label-algebra ancestry filter.
fn bench_index_vs_scan(h: &mut Harness) {
    let tree = docs::xmark_like(7, 300);
    let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
    let expr = parse_xpath("//item").unwrap();
    let idx = NameIndex::build(&doc);
    let root = doc.root();

    h.bench("descendant-name/scan", || {
        black_box(expr.evaluate(&doc)).len()
    });
    h.bench("descendant-name/index", || {
        black_box(idx.descendants_named(&doc, root, "item")).len()
    });
}

fn main() {
    let mut h = Harness::new("query_eval");
    let tree = docs::xmark_like(7, 150);
    let mut v = QueryBench {
        h: &mut h,
        tree: &tree,
    };
    xupd_schemes::visit_figure7_schemes(&mut v);
    bench_index_vs_scan(&mut h);
    h.finish().expect("write results/BENCH_query_eval.json");
}
