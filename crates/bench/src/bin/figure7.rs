//! Regenerates the paper's Figure 7: the declared evaluation matrix
//! (transcribed) next to this reproduction's *measured* matrix, with the
//! §5.2 ranking, all declared-vs-measured divergences, and soundness
//! findings (LSDX's uniqueness failures).
//!
//! ```text
//! cargo run --release --bin figure7 [--all]
//! ```
//!
//! `--all` extends the roster with the §6 schemes (CDBS, Com-D, Prime,
//! DDE) the paper announces as future evaluation work.

use xupd_framework::{measure_all, measure_figure7, Figure7Report};

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let results = if all {
        measure_all()
    } else {
        measure_figure7()
    }
    .expect("checker battery drives live trees");
    let report = Figure7Report::new(results);
    println!("{}", report.render());
}
