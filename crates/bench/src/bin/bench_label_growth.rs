//! P3 — label-growth measurement as a timed harness: drives the skewed
//! and prepend storms against the headline pair (QED vs Vector) plus the
//! compact schemes, so one offline run regenerates both the timing and —
//! via the printed summary — the growth shape the paper relays from
//! \[27\].
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_label_growth
//! ```
//!
//! Emits `results/BENCH_label_growth.json`.

use xupd_bench::growth_series;
use xupd_schemes::prefix::cdqs::Cdqs;
use xupd_schemes::prefix::qed::Qed;
use xupd_schemes::vector::VectorScheme;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::{docs, ScriptKind};

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

fn main() {
    let mut h = Harness::new("label_growth");
    let base = docs::wide(50);
    for kind in [ScriptKind::Skewed, ScriptKind::PrependStorm] {
        for ops in [200usize, 400] {
            h.bench(&format!("growth/qed/{}/{ops}", kind.name()), || {
                black_box(growth_series(Qed::new(), &base, kind, ops, ops, 1))
            });
            h.bench(&format!("growth/cdqs/{}/{ops}", kind.name()), || {
                black_box(growth_series(Cdqs::new(), &base, kind, ops, ops, 1))
            });
            h.bench(&format!("growth/vector/{}/{ops}", kind.name()), || {
                black_box(growth_series(VectorScheme::new(), &base, kind, ops, ops, 1))
            });
        }
    }

    // Print the headline comparison once per run so the series is
    // recorded alongside the timings (paper-shape check: Vector ≪ QED).
    let qed = growth_series(Qed::new(), &base, ScriptKind::Skewed, 400, 100, 1);
    let vec = growth_series(VectorScheme::new(), &base, ScriptKind::Skewed, 400, 100, 1);
    println!("\nP3 headline (max label bits under 400 skewed inserts):");
    for (q, v) in qed.points.iter().zip(&vec.points) {
        println!("  ops={:<4} qed={:<6} vector={}", q.0, q.2, v.2);
    }

    h.finish().expect("write results/BENCH_label_growth.json");
}
