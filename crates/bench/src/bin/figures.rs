//! Regenerates the paper's worked figures:
//!
//! * Figure 1 — the sample document and its pre/post-labelled tree;
//! * Figure 2 — the encoding table;
//! * Figure 3 — the DeweyID-labelled tree;
//! * Figure 4 — the ORDPATH tree with its three insertion examples;
//! * Figure 5 — the LSDX tree with its three insertion examples;
//! * Figure 6 — the ImprovedBinary tree with its three insertion
//!   examples.
//!
//! ```text
//! cargo run --release --bin figures
//! ```

use xupd_encoding::figure2::{figure2_table, render_figure2};
use xupd_labelcore::{Label, Labeling, LabelingScheme};
use xupd_schemes::prefix::dewey::DeweyId;
use xupd_schemes::prefix::improved_binary::ImprovedBinary;
use xupd_schemes::prefix::lsdx::Lsdx;
use xupd_schemes::prefix::ordpath::OrdPath;
use xupd_xmldom::sample::{figure1_document, figure1_labelled_nodes, FIGURE1_XML};
use xupd_xmldom::{NodeId, NodeKind, XmlTree};

fn main() {
    figure1();
    figure2();
    figure3();
    figure4();
    figure5();
    figure6();
}

fn indent(tree: &XmlTree, n: NodeId) -> String {
    "  ".repeat(tree.depth(n) as usize)
}

fn print_labelled_tree<S: LabelingScheme>(
    title: &str,
    tree: &XmlTree,
    scheme: &S,
    labeling: &Labeling<S::Label>,
) {
    let _ = scheme;
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    for n in tree.preorder() {
        if n == tree.root() {
            continue;
        }
        let kind = tree.kind(n);
        let what = match kind {
            NodeKind::Element { name } => format!("<{name}>"),
            NodeKind::Attribute { name, value } => format!("@{name}={value}"),
            NodeKind::Text { value } => format!("\"{}\"", value.trim()),
            other => format!("{other:?}"),
        };
        println!(
            "  {}{:<24} {}",
            indent(tree, n),
            what,
            labeling.req(n).unwrap().display()
        );
    }
}

fn figure1() {
    println!("Figure 1(a) — the sample XML file");
    println!("=================================");
    println!("{FIGURE1_XML}");

    println!("\nFigure 1(b) — preorder/postorder labelled tree");
    println!("===============================================");
    let tree = figure1_document();
    let nodes = figure1_labelled_nodes(&tree);
    let pre_seq: Vec<NodeId> = nodes.clone();
    let post_seq: Vec<NodeId> = tree
        .postorder()
        .filter(|n| nodes.contains(n))
        .collect::<Vec<_>>();
    for &n in &nodes {
        let pre = pre_seq.iter().position(|&x| x == n).unwrap();
        let post = post_seq.iter().position(|&x| x == n).unwrap();
        println!(
            "  {}{:<24} {},{}",
            indent(&tree, n),
            tree.kind(n).name().unwrap_or(""),
            pre,
            post
        );
    }
}

fn figure2() {
    println!("\nFigure 2 — encoding of the sample XML file");
    println!("===========================================");
    let tree = figure1_document();
    print!("{}", render_figure2(&figure2_table(&tree)));
}

/// The shared silhouette of Figures 3–6: a root with three children; the
/// first has two children, the second one, the third three.
fn shape() -> XmlTree {
    xupd_xmldom::sample::figure3_shape().0
}

fn figure3() {
    let tree = shape();
    let mut scheme = DeweyId::new();
    let labeling = scheme.label_tree(&tree).unwrap();
    print_labelled_tree(
        "Figure 3 — DeweyID labelled XML tree",
        &tree,
        &scheme,
        &labeling,
    );
}

fn figure4() {
    let mut tree = shape();
    let mut scheme = OrdPath::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    // the paper's grey nodes: after-last (1.3.3-style), before-first
    // (1.1.-1-style), careted-in (1.5.2.1-style)
    let root_elem = tree.document_element().expect("shape has a root element");
    let third = tree.last_child(root_elem).expect("three children");
    let right = tree.create(NodeKind::element("new-right"));
    tree.append_child(third, right).expect("live");
    scheme.on_insert(&tree, &mut labeling, right).unwrap();

    let first = tree.first_child(root_elem).expect("three children");
    let left = tree.create(NodeKind::element("new-left"));
    tree.prepend_child(first, left).expect("live");
    scheme.on_insert(&tree, &mut labeling, left).unwrap();

    let third_first = tree.first_child(third).expect("has children");
    let mid = tree.create(NodeKind::element("new-mid"));
    tree.insert_after(third_first, mid).expect("live");
    scheme.on_insert(&tree, &mut labeling, mid).unwrap();

    print_labelled_tree(
        "Figure 4 — ORDPATH labelled XML tree (grey nodes inserted)",
        &tree,
        &scheme,
        &labeling,
    );
}

fn figure5() {
    let mut tree = shape();
    let mut scheme = Lsdx::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let root_elem = tree.document_element().expect("root element");
    let first = tree.first_child(root_elem).expect("children");
    // before-first under the first child (2ab.ab in the paper)
    let ff = tree.first_child(first).expect("grandchild");
    let n1 = tree.create(NodeKind::element("new-before"));
    tree.insert_before(ff, n1).expect("live");
    scheme.on_insert(&tree, &mut labeling, n1).unwrap();
    // after-last under the second child (2ac.c)
    let second = tree.next_sibling(first).expect("three children");
    let n2 = tree.create(NodeKind::element("new-after"));
    tree.append_child(second, n2).expect("live");
    scheme.on_insert(&tree, &mut labeling, n2).unwrap();
    // between under the third child (2ad.bb)
    let third = tree.next_sibling(second).expect("three children");
    let tfirst = tree.first_child(third).expect("children");
    let n3 = tree.create(NodeKind::element("new-between"));
    tree.insert_after(tfirst, n3).expect("live");
    scheme.on_insert(&tree, &mut labeling, n3).unwrap();

    print_labelled_tree(
        "Figure 5 — LSDX labelled XML tree (grey nodes inserted)",
        &tree,
        &scheme,
        &labeling,
    );
}

fn figure6() {
    let mut tree = shape();
    let mut scheme = ImprovedBinary::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let root_elem = tree.document_element().expect("root element");
    let second = {
        let first = tree.first_child(root_elem).expect("children");
        tree.next_sibling(first).expect("three children")
    };
    // the paper's grey nodes under 0101: 0101.001 (before first),
    // 0101.011 (after last)
    let sfirst = tree.first_child(second).expect("child");
    let n1 = tree.create(NodeKind::element("new-before"));
    tree.insert_before(sfirst, n1).expect("live");
    scheme.on_insert(&tree, &mut labeling, n1).unwrap();
    let n2 = tree.create(NodeKind::element("new-after"));
    tree.append_child(second, n2).expect("live");
    scheme.on_insert(&tree, &mut labeling, n2).unwrap();
    // and 011.0101 (between) under the third child
    let third = tree.next_sibling(second).expect("three children");
    let tfirst = tree.first_child(third).expect("children");
    let n3 = tree.create(NodeKind::element("new-between"));
    tree.insert_after(tfirst, n3).expect("live");
    scheme.on_insert(&tree, &mut labeling, n3).unwrap();

    print_labelled_tree(
        "Figure 6 — ImprovedBinary labelled XML tree (grey nodes inserted)",
        &tree,
        &scheme,
        &labeling,
    );
}
