//! P9 — static mutation-log analysis: what a certificate costs to
//! compute and what consuming one buys.
//!
//! Three questions, three case families:
//!
//! * `analysis/overhead/<n>` — the cost of `analyze` itself on batches
//!   of 1, 16 and 256 ops (scheme-independent: analysis runs once per
//!   batch, before any labelling work).
//! * `apply/{seq,plan,coalesced}/<scheme>` — sequential `apply_log_dyn`
//!   vs. the certificate consumers on a redundancy-laden batch
//!   (redundant writes + cancelling create/delete scratch subtrees in
//!   every section). The coalesce payoff is also reported as *work
//!   shed*: inserts+deletes skipped relative to sequential apply.
//! * `apply/shards/<scheme>` — `par_apply_independent` fanning the
//!   plan's independent components across document shards, plus a
//!   per-component solo-cost breakdown for one scheme and the
//!   list-scheduling makespan model `max(longest, total / w)`. On this
//!   single-CPU host the measured shard time stays ~1x (threads
//!   time-slice one core, and every shard re-clones and re-labels the
//!   base document); the modelled column is what the same certificate
//!   delivers once `w` cores exist.
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_log_analysis
//! ```
//!
//! Emits `results/BENCH_log_analysis.json`.

use xupd_framework::analysis::{
    analyze, apply_plan_coalesced_dyn, apply_plan_dyn, par_apply_independent,
};
use xupd_framework::mutations::{
    apply_log_dyn, batch_of, LogId, Mutation, MutationLog, NodeRef, Place,
};
use xupd_schemes::registry;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{parse, NodeId, NodeKind, XmlTree};

xupd_testkit::install_counting_allocator!();

/// Batch sizes for the analysis-overhead cases.
const SIZES: [usize; 3] = [1, 16, 256];
/// Independent document sections in the redundancy-laden batch.
const SECTIONS: usize = 8;
/// Pool widths for the modelled shard makespan.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn elems(t: &XmlTree, name: &str) -> Vec<NodeId> {
    t.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(t.kind(id), NodeKind::Element { name: e } if e == name))
        .collect()
}

fn texts(t: &XmlTree) -> Vec<NodeId> {
    t.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(t.kind(id), NodeKind::Text { .. }))
        .collect()
}

/// `2 * SECTIONS` disjoint `<s>` subtrees, two keyed texts each: even
/// sections take the real edits, odd sections host the cancelling
/// scratch subtrees. (The batch layer keys inserts by the parent's
/// whole subtree extent, so a scratch create sharing a section with a
/// surviving create would — correctly, conservatively — be lumped into
/// the survivor's component and stop being a nil certificate.)
fn sections_doc() -> XmlTree {
    let mut src = String::from("<r>");
    for i in 0..2 * SECTIONS {
        let a = 2 * i;
        let b = 2 * i + 1;
        src.push_str(&format!("<s><k>t{a}</k><k>t{b}</k></s>"));
    }
    src.push_str("</r>");
    parse(&src).unwrap()
}

/// Per real (even) section: one real text edit, one provably redundant
/// rewrite, one surviving insert. Per scratch (odd) section: a
/// two-node scratch subtree that cancels to nothing. Every section is
/// independent, so the plan shards; the redundant-write and
/// nil-component certificates shed a third of the ops.
fn sections_log(t: &XmlTree) -> MutationLog {
    let s = elems(t, "s");
    let tx = texts(t);
    let mut edits = Vec::new();
    let mut next_id = 0u32;
    for i in 0..SECTIONS {
        let real = 2 * i;
        let scratch = 2 * i + 1;
        edits.push(Mutation::SetText {
            target: NodeRef::Node(tx[2 * real]),
            text: format!("X{i}"),
        });
        edits.push(Mutation::SetText {
            target: NodeRef::Node(tx[2 * real + 1]),
            text: format!("t{}", 2 * real + 1),
        });
        edits.push(Mutation::CreateElement {
            id: LogId(next_id),
            name: "m".into(),
            place: Place::FirstChildOf(NodeRef::Node(s[real])),
        });
        let tmp = next_id + 1;
        edits.push(Mutation::CreateElement {
            id: LogId(tmp),
            name: "tmp".into(),
            place: Place::LastChildOf(NodeRef::Node(s[scratch])),
        });
        edits.push(Mutation::CreateElement {
            id: LogId(tmp + 1),
            name: "inner".into(),
            place: Place::FirstChildOf(NodeRef::New(LogId(tmp))),
        });
        edits.push(Mutation::Delete {
            target: NodeRef::New(LogId(tmp)),
        });
        next_id += 3;
    }
    MutationLog::from(edits)
}

fn main() {
    let mut h = Harness::new("log_analysis");

    // -----------------------------------------------------------------
    // Analysis overhead per batch size (scheme-independent).
    // -----------------------------------------------------------------
    let big_base = docs::random_tree(0xA11A, 300);
    let script = Script::generate(ScriptKind::Random, 256, 300, 17);
    for n in SIZES {
        let sub = Script {
            kind: script.kind,
            ops: script.ops[..n].to_vec(),
        };
        let log = batch_of(&sub, &big_base).unwrap();
        let sample = h.bench_case(&format!("analysis/overhead/{n}"), || {
            black_box(analyze(&log, &big_base).unwrap().len())
        });
        println!(
            "analyze({n} ops): {:.1} ns/op median",
            sample.median_ns() as f64 / n as f64
        );
        h.push(sample);
    }

    // -----------------------------------------------------------------
    // Certificate consumers vs. sequential apply, per scheme.
    // -----------------------------------------------------------------
    let base = sections_doc();
    let log = sections_log(&base);
    let plan = analyze(&log, &base).unwrap();
    assert!(plan.components.len() >= SECTIONS, "sections are independent");
    assert_eq!(plan.nil_components.len(), SECTIONS, "one scratch per section");

    let entries = registry();
    // (scheme, seq ns, coalesced ns, work shed) for the summary tally
    let mut rows: Vec<(&'static str, u64, u64, usize)> = Vec::new();

    let per_scheme = xupd_exec::par_map(&entries, |entry| {
        let mut samples = Vec::new();
        let run_seq = || {
            let mut tree = base.clone();
            let mut session = (entry.factory)();
            session.label_tree(&tree).unwrap();
            apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap()
        };
        let run_plan = || {
            let mut tree = base.clone();
            let mut session = (entry.factory)();
            session.label_tree(&tree).unwrap();
            apply_plan_dyn(&mut tree, session.as_mut(), &log, &plan).unwrap()
        };
        let run_coalesced = || {
            let mut tree = base.clone();
            let mut session = (entry.factory)();
            session.label_tree(&tree).unwrap();
            apply_plan_coalesced_dyn(&mut tree, session.as_mut(), &log, &plan).unwrap()
        };
        let name = entry.name();
        samples.push(h.bench_case(&format!("apply/seq/{name}"), || black_box(run_seq())));
        samples.push(h.bench_case(&format!("apply/plan/{name}"), || black_box(run_plan())));
        samples.push(h.bench_case(&format!("apply/coalesced/{name}"), || {
            black_box(run_coalesced())
        }));
        // Work shed by the coalescing certificate (0 for schemes that
        // don't claim both order_independent and cancellation_neutral).
        let seq_stats = run_seq();
        let co_stats = run_coalesced();
        let shed = (seq_stats.inserts + seq_stats.deletes)
            - (co_stats.inserts + co_stats.deletes);
        (name, samples, shed)
    });

    for (name, samples, shed) in per_scheme {
        let seq = samples[0].median_ns();
        let coal = samples[2].median_ns();
        rows.push((name, seq, coal, shed));
        for sample in samples {
            h.push(sample);
        }
    }

    // -----------------------------------------------------------------
    // Parallel shards: measured fan-out, then the makespan model over
    // measured per-component solo costs (one representative scheme).
    // -----------------------------------------------------------------
    for entry in &entries {
        h.bench(&format!("apply/shards/{}", entry.name()), || {
            let shards = par_apply_independent(&base, entry.factory, &log, &plan).unwrap();
            black_box(shards.len())
        });
    }

    let sublogs = plan.independent_sublogs(&log).unwrap();
    let probe = entries.iter().find(|e| e.name() == "QED").unwrap();
    let mut solo_ns: Vec<u64> = Vec::new();
    for (i, sub) in sublogs.iter().enumerate() {
        let sample = h.bench_case(&format!("shards/solo/QED/{i}"), || {
            let mut tree = base.clone();
            let mut session = (probe.factory)();
            session.label_tree(&tree).unwrap();
            black_box(apply_log_dyn(&mut tree, session.as_mut(), sub).unwrap())
        });
        solo_ns.push(sample.median_ns());
        h.push(sample);
    }

    // -----------------------------------------------------------------
    // Summary tables.
    // -----------------------------------------------------------------
    let wins = rows.iter().filter(|(_, seq, coal, _)| coal < seq).count();
    println!(
        "\ncoalesced apply beats sequential on {wins}/{} schemes ({}-op batch, {} certified droppable):",
        rows.len(),
        6 * SECTIONS,
        4 * SECTIONS
    );
    for (name, seq, coal, shed) in &rows {
        let speedup = *seq as f64 / (*coal).max(1) as f64;
        println!(
            "  {name:<16} seq {seq:>10}ns  coalesced {coal:>10}ns  ({speedup:.2}x, {shed} insert/delete work shed)"
        );
    }

    let total: u64 = solo_ns.iter().sum();
    let longest = solo_ns.iter().copied().max().unwrap_or(0);
    println!(
        "\nQED component solo costs: total {:.1} us over {} shards, longest {:.1} us",
        total as f64 / 1e3,
        solo_ns.len(),
        longest as f64 / 1e3
    );
    for workers in WIDTHS {
        let makespan = longest.max(total / workers as u64);
        println!(
            "  modelled shard makespan @ {workers} worker(s): {:>8.1} us  (speedup {:.2}x)",
            makespan as f64 / 1e3,
            total as f64 / makespan as f64
        );
    }

    h.finish().expect("write results/BENCH_log_analysis.json");
}
