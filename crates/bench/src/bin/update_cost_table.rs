//! Regenerates the P1/P2 experiments (DESIGN.md §5): per-workload
//! relabelling volume and overflow events for every scheme —
//! quantifying §3.1.1's "a significant number of labels may need to be
//! recomputed when a node is inserted" for the containment family and
//! §4's overflow behaviour for the fixed/variable-length schemes.
//!
//! ```text
//! cargo run --release --bin update_cost_table [ops]
//! ```

use xupd_framework::driver::run_script;
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::XmlTree;

struct CostRow {
    scheme: &'static str,
    relabels: u64,
    overflows: u64,
    relabels_per_insert: f64,
}

struct CostVisitor<'a> {
    base: &'a XmlTree,
    kind: ScriptKind,
    ops: usize,
    rows: Vec<CostRow>,
}

impl SchemeVisitor for CostVisitor<'_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let mut tree = self.base.clone();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(self.kind, self.ops, tree.len(), 7);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        self.rows.push(CostRow {
            scheme: scheme.name(),
            relabels: stats.relabeled,
            overflows: stats.overflow_events,
            relabels_per_insert: stats.relabeled as f64 / stats.inserts.max(1) as f64,
        });
    }
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let base = docs::random_tree(0xC057, 800);
    println!("P1/P2 — update cost, {ops} ops per workload on an 800-node document\n");
    for kind in [
        ScriptKind::Random,
        ScriptKind::Uniform,
        ScriptKind::Skewed,
        ScriptKind::PrependStorm,
        ScriptKind::MixedDelete,
        ScriptKind::Zigzag,
    ] {
        let mut v = CostVisitor {
            base: &base,
            kind,
            ops,
            rows: Vec::new(),
        };
        xupd_schemes::visit_all_schemes(&mut v);
        println!("Workload: {}", kind.name());
        println!(
            "{:<18} {:>10} {:>10} {:>16}",
            "Scheme", "relabels", "overflows", "relabels/insert"
        );
        println!("{}", "-".repeat(58));
        for r in &v.rows {
            println!(
                "{:<18} {:>10} {:>10} {:>16.3}",
                r.scheme, r.relabels, r.overflows, r.relabels_per_insert
            );
        }
        println!();
    }
}
