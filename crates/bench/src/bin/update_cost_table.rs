//! Regenerates the P1/P2 experiments (DESIGN.md §5): per-workload
//! relabelling volume and overflow events for every scheme —
//! quantifying §3.1.1's "a significant number of labels may need to be
//! recomputed when a node is inserted" for the containment family and
//! §4's overflow behaviour for the fixed/variable-length schemes.
//!
//! ```text
//! cargo run --release --bin update_cost_table [ops]
//! ```

use xupd_framework::driver::run_script_dyn;
use xupd_workloads::{docs, Script, ScriptKind};

struct CostRow {
    scheme: &'static str,
    relabels: u64,
    overflows: u64,
    relabels_per_insert: f64,
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let base = docs::random_tree(0xC057, 800);
    println!("P1/P2 — update cost, {ops} ops per workload on an 800-node document\n");
    // Full roster, one pool worker per scheme, rows in roster order.
    let entries = xupd_schemes::registry();
    for kind in [
        ScriptKind::Random,
        ScriptKind::Uniform,
        ScriptKind::Skewed,
        ScriptKind::PrependStorm,
        ScriptKind::MixedDelete,
        ScriptKind::Zigzag,
    ] {
        let rows: Vec<CostRow> = xupd_exec::par_map(&entries, |entry| {
            let mut session = entry.session();
            let mut tree = base.clone();
            session.label_tree(&tree).unwrap();
            let script = Script::generate(kind, ops, tree.len(), 7);
            let stats = run_script_dyn(&mut tree, session.as_mut(), &script).unwrap();
            CostRow {
                scheme: entry.name(),
                relabels: stats.relabeled,
                overflows: stats.overflow_events,
                relabels_per_insert: stats.relabeled as f64 / stats.inserts.max(1) as f64,
            }
        });
        println!("Workload: {}", kind.name());
        println!(
            "{:<18} {:>10} {:>10} {:>16}",
            "Scheme", "relabels", "overflows", "relabels/insert"
        );
        println!("{}", "-".repeat(58));
        for r in &rows {
            println!(
                "{:<18} {:>10} {:>10} {:>16.3}",
                r.scheme, r.relabels, r.overflows, r.relabels_per_insert
            );
        }
        println!();
    }
}
