//! Ablation study over the design knobs DESIGN.md calls out: how the
//! encoding budgets that cause the §4 overflow problem trade space
//! headroom against relabelling churn.
//!
//! * XRel's gap factor (sparse allocation: bigger gaps postpone
//!   relabelling longer — §3.1.1's "only postpone the relabelling
//!   process until the interval gaps have been consumed");
//! * CDBS's fixed cell width (the fixed-length encoding that §4 blames
//!   for its overflow);
//! * ImprovedBinary's length-field capacity (the variable-length
//!   overflow §4 describes).
//!
//! ```text
//! cargo run --release --bin ablation_table [ops]
//! ```

use xupd_framework::driver::run_script;
use xupd_labelcore::LabelingScheme;
use xupd_schemes::containment::xrel::XRel;
use xupd_schemes::prefix::cdbs::Cdbs;
use xupd_schemes::prefix::improved_binary::ImprovedBinary;
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::XmlTree;

struct Outcome {
    knob: String,
    relabels: u64,
    overflows: u64,
    end_max_bits: u64,
}

fn run<S: LabelingScheme + Clone + 'static>(mut scheme: S, base: &XmlTree, ops: usize, knob: String) -> Outcome {
    let mut tree = base.clone();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let script = Script::generate(ScriptKind::Skewed, ops, tree.len(), 5);
    let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
    Outcome {
        knob,
        relabels: stats.relabeled,
        overflows: stats.overflow_events,
        end_max_bits: stats.end_max_bits,
    }
}

fn print_table(title: &str, rows: &[Outcome]) {
    println!("{title}");
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "knob", "relabels", "overflows", "max bits"
    );
    println!("{}", "-".repeat(52));
    for r in rows {
        println!(
            "{:<16} {:>10} {:>10} {:>12}",
            r.knob, r.relabels, r.overflows, r.end_max_bits
        );
    }
    println!();
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let base = docs::random_tree(0xAB1A, 400);
    println!("Ablations under a {ops}-op skewed storm on a 400-node document\n");

    let xrel: Vec<Outcome> = [2u64, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|gap| run(XRel::with_gap(gap), &base, ops, format!("gap={gap}")))
        .collect();
    print_table("XRel — gap factor (sparse allocation)", &xrel);

    let cdbs: Vec<Outcome> = [8usize, 16, 32, 64, 128]
        .into_iter()
        .map(|bits| {
            run(
                Cdbs::with_cell_bits(bits),
                &base,
                ops,
                format!("cell={bits}b"),
            )
        })
        .collect();
    print_table("CDBS — fixed cell width", &cdbs);

    let ib: Vec<Outcome> = [16usize, 32, 64, 128, 255]
        .into_iter()
        .map(|bits| {
            run(
                ImprovedBinary::with_max_code_bits(bits),
                &base,
                ops,
                format!("len≤{bits}b"),
            )
        })
        .collect();
    print_table("ImprovedBinary — length-field capacity", &ib);

    println!(
        "Reading: larger budgets postpone the first overflow (fewer events)\n\
         but pay for it in label size — the §4 trade-off, quantified."
    );
}
