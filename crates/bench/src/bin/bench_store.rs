//! P11: fleet throughput and per-op tail latency of the sharded
//! concurrent document store.
//!
//! One seeded [`FleetWorkload`] (32 sessions, Zipf-skewed documents,
//! mixed open / query / batch-update / close) replays against fresh
//! stores three ways:
//!
//! * **reference** — the sequential spec executor, whose per-lane busy
//!   time feeds the machine-independent modelled makespan at each
//!   worker count (single-CPU CI time-slices threads, so measured wall
//!   stays ~1x there — same convention as `bench_matrix_pool`);
//! * **concurrent @ 1 and 4 workers** — per-shard writer lanes on the
//!   `ShardExecutor`, per-op service time (op start → completion; queue
//!   wait excluded) into per-class HDR histograms (p50/p99/p999);
//! * **reader storm** — concurrent `query_now` readers over the final
//!   fleet, pinning that snapshot-isolated reads trigger zero snapshot
//!   rebuilds.
//!
//! Emits `results/BENCH_store.json` (custom schema: throughput +
//! per-class latency quantiles per executor configuration).
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_store
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use xupd_schemes::prefix::qed::Qed;
use xupd_store::{
    replay_concurrent, replay_reference, OpClass, ReplayReport, Store, StoreConfig,
};
use xupd_testkit::bench::{monotonic_ns, results_dir};
use xupd_testkit::LatencyHistogram;
use xupd_workloads::{docs, FleetConfig, FleetWorkload};
use xupd_xmldom::XmlTree;

const MODEL_WIDTHS: [usize; 4] = [1, 2, 4, 8];
const MEASURED_WIDTHS: [usize; 2] = [1, 4];

fn fleet_trees(n: usize) -> Vec<XmlTree> {
    (0..n as u64).map(|i| docs::xmark_like(i, 40)).collect()
}

fn iters() -> u32 {
    std::env::var("XUPD_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Per-class quantile row rendered into the JSON and the table.
fn class_json(class: OpClass, h: &LatencyHistogram) -> String {
    format!(
        "{{\"class\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"p999_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}",
        class.name(),
        h.count(),
        h.quantile(0.50),
        h.quantile(0.99),
        h.quantile(0.999),
        h.mean(),
        h.max()
    )
}

fn print_classes(label: &str, merged: &[(OpClass, LatencyHistogram)]) {
    for (class, h) in merged {
        println!(
            "  {label:<16} {:<7} n={:<6} p50 {:>9} ns  p99 {:>10} ns  p999 {:>10} ns",
            class.name(),
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.quantile(0.999),
        );
    }
}

/// Histograms of every class merged across a run's lanes.
fn merged_classes(report: &ReplayReport) -> Vec<(OpClass, LatencyHistogram)> {
    OpClass::ALL
        .iter()
        .map(|&c| (c, report.class_histogram(c)))
        .collect()
}

fn classes_json(merged: &[(OpClass, LatencyHistogram)]) -> String {
    let rows: Vec<String> = merged.iter().map(|(c, h)| class_json(*c, h)).collect();
    format!("[{}]", rows.join(", "))
}

fn main() {
    let fleet = FleetWorkload::generate(FleetConfig::bench(0x570e));
    let trees = fleet_trees(fleet.config.docs);
    let cfg = StoreConfig::fleet();
    let iters = iters();
    println!(
        "fleet: {} sessions x {} visits over {} docs -> {} ops ({} shards, {} iters)",
        fleet.config.sessions,
        fleet.config.visits_per_session,
        fleet.config.docs,
        fleet.ops.len(),
        cfg.shards,
        iters,
    );

    // ---- reference executor: service times + modelled scaling ----
    let mut ref_best: Option<ReplayReport> = None;
    let mut ref_classes: Vec<(OpClass, LatencyHistogram)> = OpClass::ALL
        .iter()
        .map(|&c| (c, LatencyHistogram::new()))
        .collect();
    for _ in 0..iters {
        let store = Store::build(&Qed::new(), &cfg, &trees).expect("fleet builds");
        let report = replay_reference(&store, &fleet);
        for (slot, (_, h)) in merged_classes(&report).iter().zip(ref_classes.iter_mut()) {
            h.merge(&slot.1);
        }
        if ref_best.as_ref().map_or(true, |b| report.wall_ns < b.wall_ns) {
            ref_best = Some(report);
        }
    }
    let ref_best = ref_best.expect("at least one iteration");
    println!(
        "\nreference (sequential): wall {:.2} ms, {:.0} ops/sec",
        ms(ref_best.wall_ns),
        ref_best.ops_per_sec()
    );
    print_classes("reference", &ref_classes);

    let busy = ref_best.busy_total_ns();
    let mut model_json = String::from("{");
    for (i, w) in MODEL_WIDTHS.iter().enumerate() {
        let makespan = ref_best.modelled_makespan_ns(*w);
        println!(
            "  modelled makespan @ {w} worker(s): {:>8.2} ms  (speedup {:.2}x)",
            ms(makespan),
            busy as f64 / makespan.max(1) as f64
        );
        let _ = write!(model_json, "\"{w}\": {makespan}");
        if i + 1 < MODEL_WIDTHS.len() {
            model_json.push_str(", ");
        }
    }
    model_json.push('}');
    let modelled_x4 = busy as f64 / ref_best.modelled_makespan_ns(4).max(1) as f64;

    // ---- concurrent lanes at measured widths ----
    let mut concurrent_json: Vec<String> = Vec::new();
    let mut final_store: Option<Arc<Store<Qed>>> = None;
    for &workers in &MEASURED_WIDTHS {
        let mut best: Option<ReplayReport> = None;
        let mut classes: Vec<(OpClass, LatencyHistogram)> = OpClass::ALL
            .iter()
            .map(|&c| (c, LatencyHistogram::new()))
            .collect();
        for _ in 0..iters {
            let store = Arc::new(Store::build(&Qed::new(), &cfg, &trees).expect("fleet builds"));
            let report = replay_concurrent(&store, &fleet, workers);
            for (slot, (_, h)) in merged_classes(&report).iter().zip(classes.iter_mut()) {
                h.merge(&slot.1);
            }
            if best.as_ref().map_or(true, |b| report.wall_ns < b.wall_ns) {
                best = Some(report);
            }
            final_store = Some(store);
        }
        let best = best.expect("at least one iteration");
        println!(
            "\nconcurrent @ {} worker(s): wall {:.2} ms, {:.0} ops/sec",
            best.workers,
            ms(best.wall_ns),
            best.ops_per_sec()
        );
        print_classes(&format!("lanes/{workers}"), &classes);
        concurrent_json.push(format!(
            "{{\"workers\": {}, \"wall_ns\": {}, \"ops_per_sec\": {:.1}, \
             \"busy_ns\": {}, \"classes\": {}}}",
            best.workers,
            best.wall_ns,
            best.ops_per_sec(),
            best.busy_total_ns(),
            classes_json(&classes)
        ));
    }

    // ---- reader storm over the final fleet state ----
    let store = final_store.expect("a concurrent run completed");
    let mut rebuilds_before = 0u64;
    store.for_each_doc(|_, slot| rebuilds_before += slot.doc().snapshot_rebuilds());
    let doc_ids: Vec<u32> = (0..fleet.config.docs as u32).collect();
    let t0 = monotonic_ns();
    let per_doc_reads: Vec<u64> = xupd_exec::par_map(&doc_ids, |&doc| {
        let mut served = 0u64;
        for _round in 0..200 {
            for class in 0..store.query_classes() {
                if store.query_now(doc, class).is_some() {
                    served += 1;
                }
            }
        }
        served
    });
    let storm_ns = monotonic_ns().saturating_sub(t0);
    let reads: u64 = per_doc_reads.iter().sum();
    let mut rebuilds_after = 0u64;
    store.for_each_doc(|_, slot| rebuilds_after += slot.doc().snapshot_rebuilds());
    assert_eq!(
        rebuilds_before, rebuilds_after,
        "snapshot-isolated readers must not rebuild snapshots"
    );
    println!(
        "\nreader storm: {reads} cached reads in {:.2} ms ({:.0} reads/sec), 0 snapshot rebuilds",
        ms(storm_ns),
        reads as f64 * 1e9 / storm_ns.max(1) as f64
    );

    // ---- artifact ----
    let mut counts_json = String::from("{");
    let counts = fleet.class_counts();
    for (i, (name, n)) in counts.iter().enumerate() {
        let _ = write!(counts_json, "\"{name}\": {n}");
        if i + 1 < counts.len() {
            counts_json.push_str(", ");
        }
    }
    counts_json.push('}');

    let json = format!(
        "{{\n  \"suite\": \"store\",\n  \"iters\": {iters},\n  \"fleet\": {{\"sessions\": {}, \
         \"docs\": {}, \"shards\": {}, \"total_ops\": {}, \"classes\": {counts_json}}},\n  \
         \"reference\": {{\"wall_ns\": {}, \"busy_ns\": {busy}, \"ops_per_sec\": {:.1}, \
         \"classes\": {}, \"modelled_makespan_ns\": {model_json}, \
         \"modelled_speedup_at_4\": {modelled_x4:.2}}},\n  \
         \"concurrent\": [{}],\n  \
         \"reader_storm\": {{\"reads\": {reads}, \"wall_ns\": {storm_ns}, \
         \"snapshot_rebuilds\": {rebuilds_after}}}\n}}\n",
        fleet.config.sessions,
        fleet.config.docs,
        cfg.shards,
        fleet.ops.len(),
        ref_best.wall_ns,
        ref_best.ops_per_sec(),
        classes_json(&ref_classes),
        concurrent_json.join(", "),
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir creatable");
    let path = dir.join("BENCH_store.json");
    std::fs::write(&path, json).expect("results dir writable");
    println!("\nstore: modelled speedup at 4 workers {modelled_x4:.2}x -> {}", path.display());
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}
