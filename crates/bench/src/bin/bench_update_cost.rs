//! P1 — per-insertion update cost. Containment schemes recompute global
//! ranks (Θ(n) per insert, §3.1.1); persistent prefix schemes splice a
//! single label. The crossover the paper's prose predicts is directly
//! visible in these timings.
//!
//! Each scheme's case runs on its own `xupd-exec` pool worker; samples
//! are pushed in roster order so the emitted JSON is byte-identical at
//! any `XUPD_THREADS`.
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_update_cost
//! ```
//!
//! Emits `results/BENCH_update_cost.json`.

use xupd_framework::driver::run_script_dyn;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::{docs, Script, ScriptKind};

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

fn main() {
    let mut h = Harness::new("update_cost");
    let base = docs::random_tree(0xBEEF, 500);
    let entries = xupd_schemes::registry_figure7();
    let ops = 100usize;
    for kind in [ScriptKind::Random, ScriptKind::Skewed] {
        let samples = xupd_exec::par_map(&entries, |entry| {
            let mut session = entry.session();
            h.bench_case(
                &format!("update/{}/{}/{ops}", kind.name(), entry.name()),
                || {
                    let mut tree = base.clone();
                    session.label_tree(&tree).unwrap();
                    let script = Script::generate(kind, ops, tree.len(), 11);
                    black_box(run_script_dyn(&mut tree, session.as_mut(), &script).unwrap())
                },
            )
        });
        for sample in samples {
            h.push(sample);
        }
    }
    h.finish().expect("write results/BENCH_update_cost.json");
}
