//! P1 — per-insertion update cost. Containment schemes recompute global
//! ranks (Θ(n) per insert, §3.1.1); persistent prefix schemes splice a
//! single label. The crossover the paper's prose predicts is directly
//! visible in these timings.
//!
//! Offline harness (formerly a criterion bench):
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_update_cost
//! ```
//!
//! Emits `results/BENCH_update_cost.json`.

use xupd_framework::driver::run_script;
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::XmlTree;

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

struct UpdateBench<'a, 'b> {
    h: &'a mut Harness,
    base: &'b XmlTree,
    kind: ScriptKind,
    ops: usize,
}

impl SchemeVisitor for UpdateBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let name = scheme.name();
        self.h.bench(
            &format!("update/{}/{name}/{}", self.kind.name(), self.ops),
            || {
                let mut tree = self.base.clone();
                let mut labeling = scheme.label_tree(&tree).unwrap();
                let script = Script::generate(self.kind, self.ops, tree.len(), 11);
                black_box(run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap())
            },
        );
    }
}

fn main() {
    let mut h = Harness::new("update_cost");
    let base = docs::random_tree(0xBEEF, 500);
    for kind in [ScriptKind::Random, ScriptKind::Skewed] {
        let mut v = UpdateBench {
            h: &mut h,
            base: &base,
            kind,
            ops: 100,
        };
        xupd_schemes::visit_figure7_schemes(&mut v);
    }
    h.finish().expect("write results/BENCH_update_cost.json");
}
