//! Regenerates the P3 experiment (DESIGN.md §5): label-size growth of
//! every scheme under the paper's update scenarios (random / uniform /
//! skewed / prepend-storm / zigzag), including the §4 claim that Vector
//! grows much slower than QED under skewed insertion.
//!
//! ```text
//! cargo run --release --bin growth_table [ops]
//! ```

use xupd_bench::{growth_battery, render_growth_table};
use xupd_workloads::{docs, ScriptKind};

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let base = docs::random_tree(0x9e0, 500);
    println!(
        "P3 — label-size growth, {} ops per workload on a 500-node document\n",
        ops
    );
    // Full roster, one pool worker per scheme, series in roster order.
    let entries = xupd_schemes::registry();
    for kind in [
        ScriptKind::Random,
        ScriptKind::Uniform,
        ScriptKind::Skewed,
        ScriptKind::PrependStorm,
        ScriptKind::Zigzag,
    ] {
        let series = growth_battery(&entries, &base, kind, ops, ops, 42);
        println!("{}", render_growth_table(kind, &series));
    }

    // The headline P3 series: skewed growth of QED vs Vector, max label
    // bits at checkpoints (the shape the Vector paper [27] reports and
    // this paper relays in §4).
    println!("P3 headline — QED vs Vector max label bits under skewed insertion");
    println!("{:<8} {:>10} {:>10}", "ops", "QED", "Vector");
    let qed = xupd_bench::growth_series(
        xupd_schemes::prefix::qed::Qed::new(),
        &base,
        ScriptKind::Skewed,
        ops,
        (ops / 10).max(1),
        42,
    );
    let vec = xupd_bench::growth_series(
        xupd_schemes::vector::VectorScheme::new(),
        &base,
        ScriptKind::Skewed,
        ops,
        (ops / 10).max(1),
        42,
    );
    for (q, v) in qed.points.iter().zip(&vec.points) {
        println!("{:<8} {:>10} {:>10}", q.0, q.2, v.2);
    }
}
