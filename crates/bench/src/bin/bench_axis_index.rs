//! Per-axis micro-costs of the topology sidecar versus the preserved
//! label-algebra/parent-chain reference path — the encoding-layer half
//! of the §2.3 trade, one axis at a time.
//!
//! For each of `descendants`, `following`, `children` and `is_ancestor`
//! there are two cases:
//!
//! * `<axis>/scan` — the `*_via_labels` / full-table reference
//!   implementation (what the encoding shipped before the topology
//!   index; still the path the framework checkers grade schemes on);
//! * `<axis>/topology` — the CSR/extent-backed axis.
//!
//! Context rows sweep the document (every `STRIDE`-th row) so the costs
//! aren't dominated by the root's giant subtree.
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_axis_index
//! ```
//!
//! Emits `results/BENCH_axis_index.json`.

use xupd_encoding::EncodedDocument;
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

const STRIDE: usize = 17;

fn main() {
    let mut h = Harness::new("axis_index");
    let tree = docs::xmark_like(11, 240);
    let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
    let n = doc.len();
    let contexts: Vec<usize> = (0..n).step_by(STRIDE).collect();
    println!(
        "document: {n} rows, {} context rows (stride {STRIDE})",
        contexts.len()
    );

    h.bench("descendants/scan", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.descendants_via_labels(c)).len();
        }
        total
    });
    h.bench("descendants/topology", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.descendants(c)).len();
        }
        total
    });

    h.bench("following/scan", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.following_via_labels(c)).len();
        }
        total
    });
    h.bench("following/topology", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.following(c)).len();
        }
        total
    });

    h.bench("children/scan", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.children_via_scan(c)).len();
        }
        total
    });
    h.bench("children/topology", || {
        let mut total = 0usize;
        for &c in &contexts {
            total += black_box(doc.children(c)).len();
        }
        total
    });

    // is_ancestor over the full context × context pair grid.
    h.bench("is_ancestor/labels", || {
        let mut hits = 0usize;
        for &a in &contexts {
            for &b in &contexts {
                hits += usize::from(black_box(doc.is_ancestor_via_labels(a, b)));
            }
        }
        hits
    });
    h.bench("is_ancestor/topology", || {
        let mut hits = 0usize;
        for &a in &contexts {
            for &b in &contexts {
                hits += usize::from(black_box(doc.is_ancestor(a, b)));
            }
        }
        hits
    });

    h.finish().expect("write results/BENCH_axis_index.json");
}
