//! P10 — incremental XPath result maintenance vs. re-evaluate-all.
//!
//! 64 queries are registered once; a mixed update stream (≈70%
//! text-only batches, ≈25% localized structural batches, ≈5% empty
//! batches) is then replayed at batch sizes 1, 16 and 256, and after
//! every batch all 64 result sets are served. Two clients per scheme:
//!
//! * `incremental/<scheme>/b<N>` — the [`QueryCache`] path: analyze
//!   the log, absorb the footprint (keep / delta-repair / rebuild per
//!   query), serve from the cache;
//! * `reevaluate/<scheme>/b<N>` — the pre-cache client: discard the
//!   snapshot, re-encode the document under the scheme's real labels
//!   and re-evaluate all 64 queries from scratch.
//!
//! The `unaffected/<scheme>` probe isolates the fast path: a cache of
//! rows-only queries absorbing genuine text-only batches — every query
//! classifies unaffected, no table is rebuilt, no result is touched.
//!
//! Both clients replay the *same* pre-generated logs from the same
//! base tree, so the work difference is purely the maintenance
//! strategy. Each scheme's cases run on their own `xupd-exec` pool
//! worker; samples are pushed in roster order so the emitted JSON is
//! deterministic at any `XUPD_THREADS`.
//!
//! Offline harness:
//!
//! ```text
//! cargo run --release -p xupd-bench --bin bench_incremental_queries
//! ```
//!
//! Emits `results/BENCH_incremental_queries.json` and prints a ≥2×
//! wins tally (re-evaluate median / incremental median per scheme at
//! batch size 16).

use xupd_encoding::{document_registry, parse_xpath, XPathExpr};
use xupd_framework::analysis::analyze;
use xupd_framework::mutations::{
    apply_log, apply_log_dyn, LogId, Mutation, MutationLog, NodeRef, Place,
};
use xupd_framework::querycache::QueryCache;
use xupd_labelcore::LabelingScheme;
use xupd_schemes::prefix::qed::Qed;
use xupd_schemes::registry;
use xupd_testkit::bench::{black_box, Harness};
use xupd_workloads::docs;
use xupd_xmldom::{NodeId, NodeKind, XmlTree};

// Count allocation events per bench iteration (reported as
// `allocs`/`alloc_bytes` in the emitted JSON).
xupd_testkit::install_counting_allocator!();

/// Batches per replayed stream — long enough that the cache's one-time
/// registration pass amortizes and the steady-state per-batch costs
/// dominate both clients.
const BATCHES: usize = 48;
/// Ops per batch under comparison (1 = the per-edit client).
const SIZES: [usize; 3] = [1, 16, 256];

/// The 64 registered queries: mostly fully-named downward paths (the
/// shapes impact analysis can keep or repair), plus a tail of
/// subtree-positional and upward queries that always rebuild.
fn queries() -> Vec<(XPathExpr, bool)> {
    let mut texts: Vec<(String, bool)> = Vec::new();
    let regions = ["africa", "asia", "europe", "namerica"];
    for r in &regions {
        texts.push((format!("/site/regions/{r}/item"), false));
        texts.push((format!("/site/regions/{r}//name"), true));
        texts.push((format!("/site/regions/{r}/item/quantity"), false));
    }
    for k in 1..=8 {
        texts.push((format!("/site/people/person[{k}]"), false));
        texts.push((format!("/site/people/person[{k}]/name"), true));
    }
    for i in 0..8 {
        texts.push((format!("//item[@id='item0_{i}']"), true));
    }
    for k in 1..=8 {
        texts.push((format!("/site/open_auctions/open_auction[{k}]/initial"), false));
    }
    for r in &regions {
        texts.push((format!("/site/regions/{r}/item/name"), false));
    }
    texts.push(("//item".to_string(), false));
    texts.push(("//item".to_string(), true));
    texts.push(("//person/name".to_string(), true));
    texts.push(("//person/emailaddress".to_string(), false));
    texts.push(("//bidder/increase".to_string(), false));
    texts.push(("//open_auction/initial".to_string(), true));
    texts.push(("/site/people//name".to_string(), false));
    texts.push(("//item/@id".to_string(), false));
    // always-dirty tail: subtree-positional, wildcard, upward, lateral
    for k in 1..=4 {
        texts.push((format!("/site/descendant::open_auction[{k}]"), false));
    }
    texts.push(("/site/regions/*".to_string(), false));
    texts.push(("//quantity/..".to_string(), false));
    texts.push(("//name/following-sibling::*".to_string(), false));
    texts.push(("//description/text()".to_string(), true));
    assert_eq!(texts.len(), 64, "query roster must stay at 64");
    texts
        .into_iter()
        .map(|(t, ws)| (parse_xpath(&t).unwrap(), ws))
        .collect()
}

fn text_ids(tree: &XmlTree) -> Vec<NodeId> {
    tree.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(tree.kind(id), NodeKind::Text { .. }))
        .collect()
}

fn element_ids(tree: &XmlTree) -> Vec<NodeId> {
    tree.ids_in_doc_order()
        .into_iter()
        .filter(|&id| tree.kind(id).is_element())
        .collect()
}

/// Pre-generate the mixed update stream against a scratch replica so
/// every client replays byte-identical logs. Mix per 20 batches:
/// 14 text-only, 5 localized structural, 1 empty (70/25/5).
fn generate_traffic(base: &XmlTree, size: usize) -> Vec<MutationLog> {
    let mut scratch = base.clone();
    let mut scheme = Qed::new();
    let mut labeling = scheme.label_tree(&scratch).unwrap();
    let mut logs = Vec::with_capacity(BATCHES);
    for round in 0..BATCHES {
        let log = match round % 20 {
            r if r < 14 => {
                // text-only: rewrite `size` text nodes, rotating
                // a rotating window of distinct targets (size is
                // always well below the text-node count)
                let ids = text_ids(&scratch);
                let ops: Vec<Mutation> = (0..size)
                    .map(|j| {
                        let id = ids[(round * 31 + j) % ids.len()];
                        Mutation::SetText {
                            target: NodeRef::Node(id),
                            text: format!("w{round}-{j}"),
                        }
                    })
                    .collect();
                MutationLog::from(ops)
            }
            r if r < 19 => {
                // localized structural: `size` fresh elements spread
                // over 8 rotating hosts — footprints stay a handful of
                // extents, so most registered queries are untouched
                let elems = element_ids(&scratch);
                let ops: Vec<Mutation> = (0..size)
                    .map(|j| {
                        let host = elems[(round * 13 + (j % 8) * 97 + 5) % elems.len()];
                        Mutation::CreateElement {
                            id: LogId(j as u32),
                            name: "probe".to_string(),
                            place: Place::LastChildOf(NodeRef::Node(host)),
                        }
                    })
                    .collect();
                MutationLog::from(ops)
            }
            _ => MutationLog::from(Vec::new()),
        };
        apply_log(&mut scratch, &mut scheme, &mut labeling, &log).unwrap();
        logs.push(log);
    }
    logs
}

fn main() {
    let mut h = Harness::new("incremental_queries");
    // Large enough that full re-evaluation is the dominant cost — the
    // regime incremental maintenance exists for.
    let base = docs::xmark_like(0x1C4, 600);
    let qs = queries();
    let entries = registry();
    let docs_reg = document_registry();
    assert_eq!(entries.len(), 17);
    assert_eq!(docs_reg.len(), entries.len());
    for (a, b) in entries.iter().zip(&docs_reg) {
        assert_eq!(a.name(), b.name(), "roster order mismatch");
    }
    let pairs: Vec<(usize, usize)> = (0..entries.len())
        .flat_map(|i| SIZES.iter().map(move |&s| (i, s)))
        .collect();

    // traffic is shared per batch size across all schemes and clients
    let traffic: Vec<(usize, Vec<MutationLog>)> = SIZES
        .iter()
        .map(|&s| (s, generate_traffic(&base, s)))
        .collect();
    let stream = |size: usize| -> &[MutationLog] {
        traffic
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, logs)| logs.as_slice())
            .unwrap()
    };

    // (scheme, size, incremental median, reevaluate median)
    let mut medians: Vec<(&'static str, usize, u64, u64)> = Vec::new();

    let per_case = xupd_exec::par_map(&pairs, |&(i, size)| {
        let entry = &entries[i];
        let doc_entry = &docs_reg[i];
        let logs = stream(size);

        let incremental = h.bench_case(&format!("incremental/{}/b{size}", entry.name()), || {
            let mut tree = base.clone();
            let mut session = entry.session();
            session.label_tree(&tree).unwrap();
            let mut cache = QueryCache::new();
            for (e, ws) in &qs {
                cache.register(e, *ws, &tree).unwrap();
            }
            let mut served = 0usize;
            for log in logs {
                let plan = analyze(log, &tree).unwrap();
                let effective = plan.execution_order(false, session.cancellation_neutral());
                apply_log_dyn(&mut tree, session.as_mut(), log).unwrap();
                cache.absorb(log, &plan, &effective, &tree).unwrap();
                for q in 0..qs.len() {
                    served += cache.hit(q).len() + cache.strings(q).len();
                }
            }
            black_box(served)
        });

        let reevaluate = h.bench_case(&format!("reevaluate/{}/b{size}", entry.name()), || {
            let mut tree = base.clone();
            let mut session = entry.session();
            session.label_tree(&tree).unwrap();
            let mut served = 0usize;
            for log in logs {
                apply_log_dyn(&mut tree, session.as_mut(), log).unwrap();
                // snapshot discarded: re-encode under the scheme's real
                // labels, re-evaluate everything
                let doc = (doc_entry.encode)(&tree).unwrap();
                for (e, ws) in &qs {
                    let rows = doc.evaluate(e);
                    if *ws {
                        for &r in &rows {
                            served += doc.string_value(r).len();
                        }
                    }
                    served += rows.len();
                }
            }
            black_box(served)
        });

        (incremental, reevaluate)
    });
    for ((i, size), (inc, reev)) in pairs.iter().zip(per_case) {
        medians.push((entries[*i].name(), *size, inc.median_ns(), reev.median_ns()));
        h.push(inc);
        h.push(reev);
    }

    // The unaffected fast path, isolated: rows-only queries, genuine
    // text-only traffic — absorb must touch nothing.
    let probes = xupd_exec::par_map(&entries, |entry| {
        let mut tree = base.clone();
        let mut session = entry.session();
        session.label_tree(&tree).unwrap();
        let mut cache = QueryCache::new();
        let rows_only: Vec<XPathExpr> = ["//item", "//person/name", "//bidder/increase"]
            .iter()
            .map(|q| parse_xpath(q).unwrap())
            .collect();
        for e in &rows_only {
            cache.register(e, false, &tree).unwrap();
        }
        let targets = text_ids(&tree);
        let mut round = 0u64;
        h.bench_case(&format!("unaffected/{}", entry.name()), || {
            round += 1;
            let ops: Vec<Mutation> = targets
                .iter()
                .step_by(16)
                .map(|&id| Mutation::SetText {
                    target: NodeRef::Node(id),
                    text: format!("probe-{round}"),
                })
                .collect();
            let log = MutationLog::from(ops);
            let plan = analyze(&log, &tree).unwrap();
            let effective = plan.execution_order(false, session.cancellation_neutral());
            apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap();
            let impact = cache.absorb(&log, &plan, &effective, &tree).unwrap();
            assert_eq!(impact.unaffected, 3, "probe queries must all be kept");
            let mut served = 0usize;
            for q in 0..3 {
                served += cache.hit(q).len();
            }
            black_box(served)
        })
    });
    for p in probes {
        h.push(p);
    }

    // wins tally at every batch size: re-evaluate median over
    // incremental median, counting schemes at ≥2×
    for &size in &SIZES {
        let mut wins = 0usize;
        let mut total = 0usize;
        for &(_, s, inc, reev) in &medians {
            if s == size {
                total += 1;
                if reev >= inc.saturating_mul(2) {
                    wins += 1;
                }
            }
        }
        println!("incremental ≥2× wins at b{size}: {wins}/{total}");
    }
    h.finish()
        .expect("write results/BENCH_incremental_queries.json");
}
