//! P3 — label-growth measurement as a timed harness: drives the skewed
//! and zigzag storms against the headline pair (QED vs Vector) plus the
//! compact schemes, so `cargo bench` regenerates both the timing and —
//! via the printed summary — the growth shape the paper relays from
//! \[27\].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xupd_bench::growth_series;
use xupd_schemes::prefix::cdqs::Cdqs;
use xupd_schemes::prefix::qed::Qed;
use xupd_schemes::vector::VectorScheme;
use xupd_workloads::{docs, ScriptKind};

fn bench_growth(c: &mut Criterion) {
    let base = docs::wide(50);
    for kind in [ScriptKind::Skewed, ScriptKind::PrependStorm] {
        for ops in [200usize, 400] {
            c.bench_with_input(
                BenchmarkId::new(format!("growth/qed/{}", kind.name()), ops),
                &ops,
                |b, &ops| b.iter(|| black_box(growth_series(Qed::new(), &base, kind, ops, ops, 1))),
            );
            c.bench_with_input(
                BenchmarkId::new(format!("growth/cdqs/{}", kind.name()), ops),
                &ops,
                |b, &ops| {
                    b.iter(|| black_box(growth_series(Cdqs::new(), &base, kind, ops, ops, 1)))
                },
            );
            c.bench_with_input(
                BenchmarkId::new(format!("growth/vector/{}", kind.name()), ops),
                &ops,
                |b, &ops| {
                    b.iter(|| {
                        black_box(growth_series(VectorScheme::new(), &base, kind, ops, ops, 1))
                    })
                },
            );
        }
    }

    // Print the headline comparison once per bench run so the series is
    // recorded in bench output (paper-shape check: Vector ≪ QED).
    let qed = growth_series(Qed::new(), &base, ScriptKind::Skewed, 400, 100, 1);
    let vec = growth_series(VectorScheme::new(), &base, ScriptKind::Skewed, 400, 100, 1);
    println!("\nP3 headline (max label bits under 400 skewed inserts):");
    for (q, v) in qed.points.iter().zip(&vec.points) {
        println!("  ops={:<4} qed={:<6} vector={}", q.0, q.2, v.2);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_growth
}
criterion_main!(benches);
