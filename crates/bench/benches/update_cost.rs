//! P1 — per-insertion update cost. Containment schemes recompute global
//! ranks (Θ(n) per insert, §3.1.1); persistent prefix schemes splice a
//! single label. The crossover the paper's prose predicts is directly
//! visible in these timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xupd_framework::driver::run_script;
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::XmlTree;

struct UpdateBench<'a, 'b> {
    c: &'a mut Criterion,
    base: &'b XmlTree,
    kind: ScriptKind,
    ops: usize,
}

impl SchemeVisitor for UpdateBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let name = scheme.name();
        self.c.bench_with_input(
            BenchmarkId::new(format!("update/{}/{name}", self.kind.name()), self.ops),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut tree = self.base.clone();
                    let mut labeling = scheme.label_tree(&tree);
                    let script = Script::generate(self.kind, self.ops, tree.len(), 11);
                    black_box(run_script(&mut tree, &mut scheme, &mut labeling, &script))
                });
            },
        );
    }
}

fn bench_updates(c: &mut Criterion) {
    let base = docs::random_tree(0xBEEF, 500);
    for kind in [ScriptKind::Random, ScriptKind::Skewed] {
        let mut v = UpdateBench {
            c,
            base: &base,
            kind,
            ops: 100,
        };
        xupd_schemes::visit_figure7_schemes(&mut v);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updates
}
criterion_main!(benches);
