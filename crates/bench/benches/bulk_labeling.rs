//! Bulk-labelling throughput: time to label a whole document, per
//! scheme, per document size. Backs the "initial construction" costs the
//! paper discusses (recursive labelling algorithms requiring multiple
//! passes, §5.1 *Recursive Labelling Algorithm*).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_workloads::docs;
use xupd_xmldom::XmlTree;

struct BulkBench<'a, 'b> {
    c: &'a mut Criterion,
    tree: &'b XmlTree,
    size: usize,
}

impl SchemeVisitor for BulkBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
        let name = scheme.name();
        self.c.bench_with_input(
            BenchmarkId::new(format!("bulk/{name}"), self.size),
            self.tree,
            |b, tree| {
                b.iter(|| black_box(scheme.label_tree(black_box(tree))));
            },
        );
    }
}

fn bench_bulk(c: &mut Criterion) {
    for size in [500usize, 2000] {
        let tree = docs::random_tree(42, size);
        let mut v = BulkBench {
            c,
            tree: &tree,
            size,
        };
        xupd_schemes::visit_figure7_schemes(&mut v);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bulk
}
criterion_main!(benches);
