//! P5 — XPath evaluation over the encoding scheme, per labelling
//! scheme. Schemes whose labels answer more relations (the *XPath
//! Evaluations* column) let the encoding answer axes from label algebra;
//! the others fall back to parent-reference chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xupd_encoding::{parse_xpath, EncodedDocument};
use xupd_labelcore::{LabelingScheme, SchemeVisitor};
use xupd_workloads::docs;
use xupd_xmldom::XmlTree;

const QUERIES: [&str; 4] = [
    "/site/regions/europe/item",
    "//item/name",
    "//person/@id",
    "//open_auction/bidder/following-sibling::*",
];

struct QueryBench<'a, 'b> {
    c: &'a mut Criterion,
    tree: &'b XmlTree,
}

impl SchemeVisitor for QueryBench<'_, '_> {
    fn visit<S: LabelingScheme>(&mut self, scheme: S) {
        let name = scheme.name();
        let doc = EncodedDocument::encode(scheme, self.tree);
        let exprs: Vec<_> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
        self.c
            .bench_with_input(BenchmarkId::new("xpath", name), &doc, |b, doc| {
                b.iter(|| {
                    let mut total = 0usize;
                    for e in &exprs {
                        total += black_box(e.evaluate(doc)).len();
                    }
                    total
                });
            });
    }
}

fn bench_queries(c: &mut Criterion) {
    let tree = docs::xmark_like(7, 150);
    let mut v = QueryBench { c, tree: &tree };
    xupd_schemes::visit_figure7_schemes(&mut v);
}

/// The §2.3 trade-off, timed: `//name` via full-table evaluation vs the
/// name index + label-algebra ancestry filter.
fn bench_index_vs_scan(c: &mut Criterion) {
    use xupd_encoding::NameIndex;
    use xupd_schemes::prefix::qed::Qed;

    let tree = docs::xmark_like(7, 300);
    let doc = EncodedDocument::encode(Qed::new(), &tree);
    let expr = parse_xpath("//item").unwrap();
    let idx = NameIndex::build(&doc);
    let root = doc.root();

    c.bench_function("descendant-name/scan", |b| {
        b.iter(|| black_box(expr.evaluate(&doc)).len())
    });
    c.bench_function("descendant-name/index", |b| {
        b.iter(|| black_box(idx.descendants_named(&doc, root, "item")).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries, bench_index_vs_scan
}
criterion_main!(benches);
