//! Fleet replay: canonical op stream → sharded writer lanes.
//!
//! The [`FleetWorkload`] is one totally ordered op stream. Replay
//! projects it onto the store's shards — every op goes to the lane
//! owning its document, **in stream order** — and executes lanes on a
//! [`ShardExecutor`]. Per-lane FIFO plus deterministic placement means
//! every document sees exactly its canonical op subsequence at any
//! worker count, which is the whole determinism argument:
//!
//! > final state = fold(per-doc op subsequence) — independent of how
//! > lanes interleave on workers.
//!
//! [`replay_reference`] is the spec executor: a plain sequential loop
//! over the canonical stream on the calling thread. The differential
//! suite compares [`Store::state_dump`] after a concurrent replay
//! against the dump after a reference replay of a fresh store — they
//! must be byte-identical at any `XUPD_THREADS`.
//!
//! Timing (latency histograms, busy nanoseconds, wall time) is
//! measurement, not state: it feeds reports and never the dump.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::store::Store;
use xupd_exec::ShardExecutor;
use xupd_labelcore::LabelingScheme;
use xupd_testkit::bench::monotonic_ns;
use xupd_testkit::LatencyHistogram;
use xupd_workloads::{FleetOp, FleetOpKind, FleetWorkload};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The four store op classes, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Begin a visit.
    Open,
    /// Registered query served through the lane.
    Query,
    /// Atomic mutation-log batch.
    Update,
    /// End a visit.
    Close,
}

impl OpClass {
    /// All classes, in report order.
    pub const ALL: [OpClass; 4] = [OpClass::Open, OpClass::Query, OpClass::Update, OpClass::Close];

    /// Stable name, matching [`FleetOpKind::class`].
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Open => "open",
            OpClass::Query => "query",
            OpClass::Update => "update",
            OpClass::Close => "close",
        }
    }

    /// Histogram slot.
    pub fn index(self) -> usize {
        match self {
            OpClass::Open => 0,
            OpClass::Query => 1,
            OpClass::Update => 2,
            OpClass::Close => 3,
        }
    }

    /// Class of a fleet op.
    pub fn of(kind: &FleetOpKind) -> OpClass {
        match kind {
            FleetOpKind::Open => OpClass::Open,
            FleetOpKind::Query(_) => OpClass::Query,
            FleetOpKind::Update(_) => OpClass::Update,
            FleetOpKind::Close => OpClass::Close,
        }
    }
}

/// Measurements of one writer lane.
#[derive(Debug, Clone)]
pub struct LaneMetrics {
    /// Per-class service-time histograms (op start → op completion,
    /// nanoseconds), indexed by [`OpClass::index`]. Queue wait is
    /// excluded: a replay offers the whole trace at once, so
    /// submit-to-completion time would measure the backlog, not the
    /// store.
    pub per_class: [LatencyHistogram; 4],
    /// Total service time spent executing this lane's ops.
    pub busy_ns: u64,
    /// Ops executed.
    pub ops: u64,
}

impl LaneMetrics {
    fn new() -> LaneMetrics {
        LaneMetrics {
            per_class: std::array::from_fn(|_| LatencyHistogram::new()),
            busy_ns: 0,
            ops: 0,
        }
    }
}

/// What a replay measured. State lives in the [`Store`]; this is
/// timing only.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-lane measurements, indexed by shard.
    pub lanes: Vec<LaneMetrics>,
    /// Wall time of the whole replay, submit of the first op to drain.
    pub wall_ns: u64,
    /// Worker threads the executor ran (1 = inline).
    pub workers: usize,
}

impl ReplayReport {
    /// Ops executed across all lanes.
    pub fn total_ops(&self) -> u64 {
        self.lanes.iter().map(|l| l.ops).sum()
    }

    /// Total service time across all lanes — the single-threaded cost
    /// of the workload.
    pub fn busy_total_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy_ns).sum()
    }

    /// One class's latency distribution merged across lanes
    /// (deterministic merge — lane order does not matter).
    pub fn class_histogram(&self, class: OpClass) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for lane in &self.lanes {
            h.merge(&lane.per_class[class.index()]);
        }
        h
    }

    /// Modelled makespan at `workers` threads: lanes are bound to
    /// workers round-robin (`lane % workers`, the executor's actual
    /// placement) and a worker's finish time is the sum of its lanes'
    /// busy time. `modelled_makespan_ns(1)` equals
    /// [`ReplayReport::busy_total_ns`]. This is the machine-independent
    /// scaling figure single-CPU CI reports alongside measured wall
    /// time.
    pub fn modelled_makespan_ns(&self, workers: usize) -> u64 {
        let workers = workers.max(1).min(self.lanes.len().max(1));
        let mut per_worker = vec![0u64; workers];
        for (lane, m) in self.lanes.iter().enumerate() {
            per_worker[lane % workers] += m.busy_ns;
        }
        per_worker.into_iter().max().unwrap_or(0)
    }

    /// Throughput in ops per second over the measured wall time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_ops() as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// Execute one fleet op against the store. Rejections are counted on
/// the document (deterministic), never raised: a fleet replay is a
/// workload, not a validator.
fn run_op<S: LabelingScheme + Clone + 'static>(store: &Store<S>, op: &FleetOp) {
    let outcome = match &op.kind {
        FleetOpKind::Open => store.open_doc(op.doc),
        FleetOpKind::Query(class) => store.serve_query(op.doc, *class).map(|_| ()),
        FleetOpKind::Update(script) => store.apply_script(op.doc, script).map(|_| ()),
        FleetOpKind::Close => store.close_doc(op.doc),
    };
    if outcome.is_err() {
        store.count_error(op.doc);
    }
}

/// The spec executor: run the canonical stream sequentially on the
/// calling thread, in stream order. Lane metrics are still recorded
/// per shard so the modelled makespan can be computed from a reference
/// run.
pub fn replay_reference<S: LabelingScheme + Clone + 'static>(
    store: &Store<S>,
    fleet: &FleetWorkload,
) -> ReplayReport {
    let mut lanes: Vec<LaneMetrics> = (0..store.shards()).map(|_| LaneMetrics::new()).collect();
    let t_begin = monotonic_ns();
    for op in &fleet.ops {
        let lane = store.shard_of(op.doc);
        let t0 = monotonic_ns();
        run_op(store, op);
        let dt = monotonic_ns().saturating_sub(t0);
        let m = &mut lanes[lane];
        m.busy_ns += dt;
        m.ops += 1;
        m.per_class[OpClass::of(&op.kind).index()].record(dt);
    }
    ReplayReport {
        lanes,
        wall_ns: monotonic_ns().saturating_sub(t_begin),
        workers: 1,
    }
}

/// Replay the canonical stream through per-shard writer lanes on a
/// [`ShardExecutor`] with `workers` threads. Ops are submitted in
/// stream order; each lane drains FIFO, so every document executes its
/// canonical subsequence regardless of `workers`. Histograms record
/// per-op service time (see [`LaneMetrics::per_class`]).
pub fn replay_concurrent<S>(
    store: &Arc<Store<S>>,
    fleet: &FleetWorkload,
    workers: usize,
) -> ReplayReport
where
    S: LabelingScheme + Clone + 'static,
    Store<S>: Send + Sync,
{
    let lane_count = store.shards();
    let exec = ShardExecutor::with_workers(lane_count, workers);
    let metrics: Vec<Arc<Mutex<LaneMetrics>>> = (0..lane_count)
        .map(|_| Arc::new(Mutex::new(LaneMetrics::new())))
        .collect();
    let t_begin = monotonic_ns();
    for op in &fleet.ops {
        let lane = store.shard_of(op.doc);
        let store = Arc::clone(store);
        let m = Arc::clone(&metrics[lane]);
        let op = op.clone();
        exec.submit(lane, move || {
            let t_start = monotonic_ns();
            run_op(&store, &op);
            let dt = monotonic_ns().saturating_sub(t_start);
            let mut g = lock(&m);
            g.busy_ns += dt;
            g.ops += 1;
            g.per_class[OpClass::of(&op.kind).index()].record(dt);
        });
    }
    exec.drain();
    let wall_ns = monotonic_ns().saturating_sub(t_begin);
    ReplayReport {
        lanes: metrics.iter().map(|m| lock(m).clone()).collect(),
        wall_ns,
        workers: exec.workers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, FleetConfig};
    use xupd_xmldom::XmlTree;

    fn fleet_store(shards: usize, docs_n: usize) -> Store<Qed> {
        let trees: Vec<XmlTree> = (0..docs_n as u64).map(|i| docs::xmark_like(i, 30)).collect();
        let mut cfg = StoreConfig::fleet();
        cfg.shards = shards;
        Store::build(&Qed::new(), &cfg, &trees).unwrap()
    }

    #[test]
    fn concurrent_replay_matches_reference_state() {
        let fleet = FleetWorkload::generate(FleetConfig::small(21));
        let reference = fleet_store(4, fleet.config.docs);
        let ref_report = replay_reference(&reference, &fleet);
        let expected = reference.state_dump();

        for workers in [1, 3] {
            let store = Arc::new(fleet_store(4, fleet.config.docs));
            let report = replay_concurrent(&store, &fleet, workers);
            assert_eq!(
                store.state_dump(),
                expected,
                "state diverged at {workers} workers"
            );
            assert_eq!(report.total_ops(), ref_report.total_ops());
        }
    }

    #[test]
    fn report_counts_match_the_workload() {
        let fleet = FleetWorkload::generate(FleetConfig::small(2));
        let store = fleet_store(3, fleet.config.docs);
        let report = replay_reference(&store, &fleet);
        assert_eq!(report.total_ops() as usize, fleet.ops.len());
        let counts = fleet.class_counts();
        for class in OpClass::ALL {
            let h = report.class_histogram(class);
            assert_eq!(
                h.count() as usize,
                counts.get(class.name()).copied().unwrap_or(0),
                "{} histogram covers every op",
                class.name()
            );
            if !h.is_empty() {
                assert!(h.quantile(0.999) >= h.quantile(0.5));
            }
        }
        // no rejected ops in a generated fleet
        store.for_each_doc(|_, slot| assert_eq!(slot.stats().errors, 0));
    }

    #[test]
    fn modelled_makespan_scales_down_with_workers() {
        let fleet = FleetWorkload::generate(FleetConfig::small(33));
        let store = fleet_store(8, fleet.config.docs);
        let report = replay_reference(&store, &fleet);
        let m1 = report.modelled_makespan_ns(1);
        assert_eq!(m1, report.busy_total_ns());
        let m4 = report.modelled_makespan_ns(4);
        assert!(m4 <= m1, "makespan never grows with workers");
        assert!(m4 >= m1 / 8, "bounded by perfect scaling over lanes");
        assert!(report.ops_per_sec() > 0.0);
    }
}
