//! # xupd-store — a sharded concurrent document store
//!
//! The paper's update mechanisms are judged per document; this crate
//! scales them to a *fleet*: thousands of
//! [`Document`](xupd_framework::Document)s behind one [`Store`], hash-partitioned across shards, written through
//! serialized per-shard lanes and read through snapshot-isolated
//! per-document read locks.
//!
//! * [`store`] — the [`Store`] itself: deterministic `splitmix64`
//!   placement, per-document `RwLock` slots, the lane write API
//!   (validated [`MutationLog`](xupd_framework::MutationLog) batches
//!   through the analyzed apply path, cache-maintained queries), the
//!   non-blocking [`Store::query_now`] read path, and the byte-stable
//!   [`Store::state_dump`] the differential suite compares;
//! * [`replay`] — execution of a [`FleetWorkload`](xupd_workloads::FleetWorkload)
//!   against a store: [`replay_reference`] (the sequential spec
//!   executor) and [`replay_concurrent`] (per-shard writer lanes on a
//!   [`ShardExecutor`](xupd_exec::ShardExecutor)), plus per-op-class
//!   latency histograms and the modelled-makespan scaling figure.
//!
//! **Determinism contract.** Final store state is a fold of each
//! document's canonical op subsequence. Placement is deterministic,
//! lanes are FIFO, and one lane owns all of a document's ops — so the
//! state dump is byte-identical at any `XUPD_THREADS`. Timing
//! (histograms, wall/busy nanoseconds) is measurement, never state.

pub mod replay;
pub mod store;

pub use replay::{replay_concurrent, replay_reference, LaneMetrics, OpClass, ReplayReport};
pub use store::{DocSlot, DocStats, Store, StoreConfig, StoreError};
