//! The sharded document store.
//!
//! A [`Store`] holds a fleet of [`Document`]s hash-partitioned across a
//! fixed number of **shards**. Each document lives behind its own
//! `RwLock`, so:
//!
//! * **writes** are serialized per shard by the replay driver (one
//!   writer lane per shard on a [`xupd_exec::ShardExecutor`]) and apply
//!   validated [`MutationLog`] batches through the analyzed
//!   [`Document::apply_log`] path — never raw tree edits;
//! * **reads** ([`Store::query_now`]) take a per-document read lock and
//!   serve registered queries from the document's maintained
//!   [`QueryCache`](xupd_framework::QueryCache) via the non-invalidating
//!   [`Document::cached_rows`] accessor — an in-flight write to one
//!   document never blocks readers of any other document, and a reader
//!   never triggers a snapshot rebuild.
//!
//! Placement is `splitmix64(doc_id) % shards`: deterministic across
//! runs and platforms (no `DefaultHasher`), and independent of worker
//! count, so the canonical op stream projects onto identical per-lane
//! sequences everywhere.
//!
//! [`Store::state_dump`] serializes every document (compact XML bytes,
//! per-document [`DocStats`], cache counters) in document-id order —
//! the byte string the differential suite compares across executor
//! widths.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use xupd_framework::document::{Document, DocumentError};
use xupd_framework::driver::DriveStats;
use xupd_framework::{mutations, AnalyzedPlan, ApplyOptions, MutationLog, QueryId};
use xupd_labelcore::LabelingScheme;
use xupd_workloads::Script;
use xupd_xmldom::{serialize_compact, TreeError, XmlTree};

/// `splitmix64` — the shard placement hash. Fixed constants, no
/// process-seeded state, identical on every platform.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Recover a lock from a poisoned state: the protected data is a
/// document slot whose invariants hold between operations, and the
/// replay driver re-raises worker panics itself — so the store keeps
/// serving rather than cascading the panic.
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Store-level failure.
#[derive(Debug)]
pub enum StoreError {
    /// The document id is not in the fleet.
    UnknownDoc(u32),
    /// The query class index exceeds the registered classes.
    UnknownQuery(usize),
    /// A tree / labelling operation failed.
    Tree(TreeError),
    /// Registering a query failed (bad expression).
    Document(DocumentError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownDoc(id) => write!(f, "unknown document {id}"),
            StoreError::UnknownQuery(c) => write!(f, "unknown query class {c}"),
            StoreError::Tree(e) => write!(f, "{e}"),
            StoreError::Document(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<TreeError> for StoreError {
    fn from(e: TreeError) -> StoreError {
        StoreError::Tree(e)
    }
}

impl From<DocumentError> for StoreError {
    fn from(e: DocumentError) -> StoreError {
        StoreError::Document(e)
    }
}

/// Deterministic per-document counters: everything here is a function
/// of the document's canonical op subsequence, never of timing, so the
/// differential suite compares them byte-for-byte across widths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocStats {
    /// Visits begun ([`FleetOpKind::Open`](xupd_workloads::FleetOpKind)).
    pub opens: u64,
    /// Visits ended.
    pub closes: u64,
    /// Registered queries served through a writer lane.
    pub queries: u64,
    /// Total result rows those queries returned.
    pub rows_served: u64,
    /// Mutation-log batches applied.
    pub batches: u64,
    /// Nodes inserted across all batches.
    pub inserts: u64,
    /// Subtrees deleted across all batches.
    pub deletes: u64,
    /// Label relabelings the scheme performed.
    pub relabeled: u64,
    /// Operations rejected (validation failures) — counted, not fatal.
    pub errors: u64,
}

impl DocStats {
    fn absorb_batch(&mut self, d: &DriveStats) {
        self.batches += 1;
        self.inserts += d.inserts as u64;
        self.deletes += d.deletes as u64;
        self.relabeled += d.relabeled;
    }
}

/// One document plus its registered query handles and counters.
pub struct DocSlot<S: LabelingScheme + Clone + 'static> {
    doc: Document<S>,
    queries: Vec<QueryId>,
    stats: DocStats,
}

impl<S: LabelingScheme + Clone + 'static> DocSlot<S> {
    /// Read access to the document.
    pub fn doc(&self) -> &Document<S> {
        &self.doc
    }

    /// The slot's counters.
    pub fn stats(&self) -> DocStats {
        self.stats
    }
}

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Shard count (= writer lanes). Clamped to at least 1.
    pub shards: usize,
    /// XPath expressions registered on every document at build time;
    /// fleet `Query(class)` ops index into this list.
    pub query_exprs: Vec<String>,
}

impl StoreConfig {
    /// The fleet default: 8 shards, the three query classes the
    /// XMark-flavoured fleet documents answer.
    pub fn fleet() -> StoreConfig {
        StoreConfig {
            shards: 8,
            query_exprs: vec![
                "//item".to_string(),
                "//name".to_string(),
                "//person".to_string(),
            ],
        }
    }
}

/// The sharded fleet of documents. See the module docs for the
/// concurrency contract.
pub struct Store<S: LabelingScheme + Clone + 'static> {
    shards: Vec<BTreeMap<u32, Arc<RwLock<DocSlot<S>>>>>,
    query_classes: usize,
}

impl<S: LabelingScheme + Clone + 'static> Store<S> {
    /// Build a store over `trees` (document ids are the indices),
    /// labelling each under a clone of `scheme` and registering every
    /// configured query class with string values cached.
    pub fn build(scheme: &S, config: &StoreConfig, trees: &[XmlTree]) -> Result<Store<S>, StoreError> {
        let shard_count = config.shards.max(1);
        let mut shards: Vec<BTreeMap<u32, Arc<RwLock<DocSlot<S>>>>> =
            (0..shard_count).map(|_| BTreeMap::new()).collect();
        for (i, tree) in trees.iter().enumerate() {
            let id = i as u32;
            let mut doc = Document::encode(scheme.clone(), tree)?;
            let mut queries = Vec::with_capacity(config.query_exprs.len());
            for expr in &config.query_exprs {
                queries.push(doc.register_query(expr, true)?);
            }
            let slot = DocSlot {
                doc,
                queries,
                stats: DocStats::default(),
            };
            shards[shard_of(id, shard_count)].insert(id, Arc::new(RwLock::new(slot)));
        }
        Ok(Store {
            shards,
            query_classes: config.query_exprs.len(),
        })
    }

    /// Shard count (= writer lanes).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Documents in the fleet.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Registered query classes per document.
    pub fn query_classes(&self) -> usize {
        self.query_classes
    }

    /// The shard (writer lane) owning `doc`.
    pub fn shard_of(&self, doc: u32) -> usize {
        shard_of(doc, self.shards.len())
    }

    fn slot(&self, doc: u32) -> Result<&Arc<RwLock<DocSlot<S>>>, StoreError> {
        self.shards[self.shard_of(doc)]
            .get(&doc)
            .ok_or(StoreError::UnknownDoc(doc))
    }

    /// Begin a visit: bumps the open counter. (Documents are resident;
    /// open/close model session pinning, not paging.)
    pub fn open_doc(&self, doc: u32) -> Result<(), StoreError> {
        let slot = self.slot(doc)?;
        write_lock(slot).stats.opens += 1;
        Ok(())
    }

    /// End a visit.
    pub fn close_doc(&self, doc: u32) -> Result<(), StoreError> {
        let slot = self.slot(doc)?;
        write_lock(slot).stats.closes += 1;
        Ok(())
    }

    /// Serve a registered query through the writer lane: counts a
    /// cache hit, returns the row count. Must only run on the
    /// document's lane — the mutable cache path is not for concurrent
    /// readers (they use [`Store::query_now`]).
    pub fn serve_query(&self, doc: u32, class: usize) -> Result<usize, StoreError> {
        let slot = self.slot(doc)?;
        let mut g = write_lock(slot);
        let q = *g.queries.get(class).ok_or(StoreError::UnknownQuery(class))?;
        let rows = g.doc.query_cached(q)?.len();
        g.stats.queries += 1;
        g.stats.rows_served += rows as u64;
        Ok(rows)
    }

    /// Apply an update script as one atomic mutation-log batch: the
    /// script is converted against the document's current tree
    /// ([`mutations::batch_of`]), validated, applied through the
    /// analyzed [`Document::apply_log`] path, and absorbed by the query
    /// cache. Returns the batch's [`DriveStats`].
    pub fn apply_script(&self, doc: u32, script: &Script) -> Result<DriveStats, StoreError> {
        let slot = self.slot(doc)?;
        let mut g = write_lock(slot);
        let log = mutations::batch_of(script, g.doc.tree())?;
        let stats = g.doc.apply_log(&log)?;
        g.stats.absorb_batch(&stats);
        Ok(stats)
    }

    /// Apply a pre-built [`MutationLog`] to one document under `opts`
    /// (see [`ApplyOptions`]), holding that document's write lock for
    /// the whole batch. The store-level counterpart of
    /// [`Document::apply_opts`].
    pub fn apply_opts(
        &self,
        doc: u32,
        log: &MutationLog,
        opts: ApplyOptions,
    ) -> Result<DriveStats, StoreError> {
        let slot = self.slot(doc)?;
        let mut g = write_lock(slot);
        let stats = g.doc.apply_opts(log, opts)?;
        g.stats.absorb_batch(&stats);
        Ok(stats)
    }

    /// Compile-then-apply under one write lock: `compile` sees the
    /// document's current tree and returns a `(log, plan)` pair, which
    /// is applied through [`Document::apply_planned`] before the lock
    /// is released — so the tree the log was compiled against is
    /// exactly the tree it mutates. This is the seam the flux DSL's
    /// `Store::update` rides on; the error type is generic so compiler
    /// diagnostics pass through unwrapped.
    pub fn update_with<E, F>(&self, doc: u32, opts: ApplyOptions, compile: F) -> Result<DriveStats, E>
    where
        E: From<StoreError>,
        F: FnOnce(&XmlTree) -> Result<(MutationLog, AnalyzedPlan), E>,
    {
        let slot = self.slot(doc).map_err(E::from)?;
        let mut g = write_lock(slot);
        let (log, plan) = compile(g.doc.tree())?;
        let stats = g
            .doc
            .apply_planned(&log, &plan, opts)
            .map_err(StoreError::from)?;
        g.stats.absorb_batch(&stats);
        Ok(stats)
    }

    /// Snapshot-isolated concurrent read: the registered query's
    /// current row count served from the maintained cache under a
    /// **read** lock, with no snapshot rebuild and no counter updates.
    /// Returns `None` if the document is unknown, the class is out of
    /// range, or the cache is stale (never happens on the mutation-log
    /// path).
    pub fn query_now(&self, doc: u32, class: usize) -> Option<usize> {
        let slot = self.shards[self.shard_of(doc)].get(&doc)?;
        let g = read_lock(slot);
        let q = *g.queries.get(class)?;
        g.doc.cached_rows(q).map(<[usize]>::len)
    }

    /// Fold `f` over every document in id order (read locks).
    pub fn for_each_doc<F: FnMut(u32, &DocSlot<S>)>(&self, mut f: F) {
        let mut ids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.keys().copied())
            .collect();
        ids.sort_unstable();
        for id in ids {
            if let Ok(slot) = self.slot(id) {
                f(id, &read_lock(slot));
            }
        }
    }

    /// The counters of one document.
    pub fn doc_stats(&self, doc: u32) -> Result<DocStats, StoreError> {
        Ok(read_lock(self.slot(doc)?).stats)
    }

    /// Serialize the full store state — per document: compact XML
    /// bytes, [`DocStats`], cache counters, snapshot rebuild count — in
    /// document-id order. Two runs that executed the same canonical
    /// per-document op sequences produce byte-identical dumps,
    /// whatever the executor width.
    pub fn state_dump(&self) -> String {
        let mut out = String::new();
        self.for_each_doc(|id, slot| {
            let c = slot.doc.cache_stats();
            let s = slot.stats;
            let _ = writeln!(
                out,
                "doc {id} shard={shard} nodes={nodes} rebuilds={rb} \
                 stats[opens={opens} closes={closes} queries={queries} rows={rows} \
                 batches={batches} inserts={ins} deletes={del} relabeled={rel} errors={err}] \
                 cache[hits={hits} absorbed={abs} unaffected={una} repaired={rep} rebuilt={reb}]",
                shard = self.shard_of(id),
                nodes = slot.doc.tree().len(),
                rb = slot.doc.snapshot_rebuilds(),
                opens = s.opens,
                closes = s.closes,
                queries = s.queries,
                rows = s.rows_served,
                batches = s.batches,
                ins = s.inserts,
                del = s.deletes,
                rel = s.relabeled,
                err = s.errors,
                hits = c.hits,
                abs = c.batches_absorbed,
                una = c.unaffected,
                rep = c.repaired,
                reb = c.rebuilt,
            );
            out.push_str(&serialize_compact(slot.doc.tree()));
            out.push('\n');
        });
        out
    }

    /// Count a rejected operation against the document (deterministic:
    /// rejection is a function of the op and the document state).
    pub(crate) fn count_error(&self, doc: u32) {
        if let Ok(slot) = self.slot(doc) {
            write_lock(slot).stats.errors += 1;
        }
    }

    /// The slot handle for `doc` — the raw writer-lane seam. Outside
    /// `crates/store` every mutation must go through the lane API
    /// ([`Store::apply_script`] & friends); lint rule R11 flags direct
    /// calls to this accessor elsewhere.
    #[doc(hidden)]
    pub fn doc_mut(&self, doc: u32) -> Result<Arc<RwLock<DocSlot<S>>>, StoreError> {
        Ok(Arc::clone(self.slot(doc)?))
    }
}

/// Deterministic shard placement.
fn shard_of(doc: u32, shards: usize) -> usize {
    (splitmix64(u64::from(doc)) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, ScriptKind};

    fn small_store() -> Store<Qed> {
        let trees: Vec<XmlTree> = (0..12).map(|i| docs::xmark_like(i, 40)).collect();
        let mut cfg = StoreConfig::fleet();
        cfg.shards = 4;
        Store::build(&Qed::new(), &cfg, &trees).unwrap()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let store = small_store();
        assert_eq!(store.len(), 12);
        assert_eq!(store.shards(), 4);
        for doc in 0..12u32 {
            assert_eq!(store.shard_of(doc), shard_of(doc, 4));
            assert!(store.shard_of(doc) < 4);
            assert!(store.doc_stats(doc).is_ok());
        }
        assert!(matches!(
            store.doc_stats(99).unwrap_err(),
            StoreError::UnknownDoc(99)
        ));
        // splitmix spreads 12 docs over more than one shard
        let distinct: std::collections::BTreeSet<usize> =
            (0..12u32).map(|d| store.shard_of(d)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn write_path_maintains_queries_and_stats() {
        let store = small_store();
        store.open_doc(3).unwrap();
        let before = store.serve_query(3, 0).unwrap();
        let script = Script::generate(ScriptKind::AppendOnly, 4, 40, 9);
        store.apply_script(3, &script).unwrap();
        let after = store.serve_query(3, 0).unwrap();
        assert!(after >= before, "cache tracked the batch");
        store.close_doc(3).unwrap();

        let s = store.doc_stats(3).unwrap();
        assert_eq!((s.opens, s.closes, s.queries, s.batches), (1, 1, 2, 1));
        assert_eq!(s.inserts, 4);
        assert_eq!(s.rows_served, (before + after) as u64);

        // concurrent read path agrees and performs no rebuilds
        assert_eq!(store.query_now(3, 0), Some(after));
        assert_eq!(store.query_now(3, 99), None);
        assert_eq!(store.query_now(99, 0), None);
        store.for_each_doc(|id, slot| {
            if id == 3 {
                assert_eq!(slot.doc().snapshot_rebuilds(), 0, "no snapshot ever built");
            }
        });
    }

    #[test]
    fn state_dump_is_stable_and_ordered() {
        let store = small_store();
        store.apply_script(1, &Script::generate(ScriptKind::Random, 5, 40, 2))
            .unwrap();
        let a = store.state_dump();
        let b = store.state_dump();
        assert_eq!(a, b, "dump is a pure read");
        let ids: Vec<&str> = a
            .lines()
            .filter(|l| l.starts_with("doc "))
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        assert_eq!(ids.len(), 12);
        assert!(ids.windows(2).all(|w| w[0].parse::<u32>().unwrap()
            < w[1].parse::<u32>().unwrap()));
        assert!(a.contains("<"), "dump embeds serialized documents");
    }

    #[test]
    fn unknown_query_class_is_an_error_not_a_panic() {
        let store = small_store();
        assert!(matches!(
            store.serve_query(0, 77).unwrap_err(),
            StoreError::UnknownQuery(77)
        ));
        let err = format!("{}", StoreError::UnknownDoc(5));
        assert!(err.contains("5"));
    }
}
