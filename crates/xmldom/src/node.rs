//! Node identifiers and the XPath node taxonomy.

use std::fmt;

/// A stable handle to a node inside an [`crate::XmlTree`] arena.
///
/// Identifiers are never reused: deleting a subtree retires its ids
/// permanently. This keeps external side tables (such as a labelling-scheme
/// assignment) trivially correct — a stale id can be detected, never
/// silently aliased to a new node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw arena index. Intended for side tables that
    /// store dense per-node data; passing an index that was never issued by
    /// the owning tree yields an id the tree will report as dead.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The node kinds of the XPath data model.
///
/// The paper's tree model (Figure 1(b), Figure 2) gives attributes their own
/// labelled nodes, ordered before the element's other children; we follow
/// that convention.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The document root. Exactly one per tree; it is created with the tree
    /// and can never be detached or deleted.
    Document,
    /// An element node, e.g. `<book>`.
    Element {
        /// Tag name.
        name: String,
    },
    /// An attribute node, e.g. `genre="Fantasy"`.
    Attribute {
        /// Attribute name.
        name: String,
        /// Attribute value (entity-decoded).
        value: String,
    },
    /// A text node. Consecutive text is merged by the parser.
    Text {
        /// Character data (entity-decoded).
        value: String,
    },
    /// A comment node, `<!-- ... -->`.
    Comment {
        /// Comment body.
        value: String,
    },
    /// A processing instruction, `<?target data?>`.
    Pi {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

impl NodeKind {
    /// Convenience constructor for an element node.
    pub fn element(name: impl Into<String>) -> Self {
        NodeKind::Element { name: name.into() }
    }

    /// Convenience constructor for an attribute node.
    pub fn attribute(name: impl Into<String>, value: impl Into<String>) -> Self {
        NodeKind::Attribute {
            name: name.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a text node.
    pub fn text(value: impl Into<String>) -> Self {
        NodeKind::Text {
            value: value.into(),
        }
    }

    /// Convenience constructor for a comment node.
    pub fn comment(value: impl Into<String>) -> Self {
        NodeKind::Comment {
            value: value.into(),
        }
    }

    /// Convenience constructor for a processing-instruction node.
    pub fn pi(target: impl Into<String>, data: impl Into<String>) -> Self {
        NodeKind::Pi {
            target: target.into(),
            data: data.into(),
        }
    }

    /// True for [`NodeKind::Element`].
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// True for [`NodeKind::Attribute`].
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }

    /// True for [`NodeKind::Text`].
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }

    /// The element or attribute name, if this kind carries one.
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name } | NodeKind::Attribute { name, .. } => Some(name),
            NodeKind::Pi { target, .. } => Some(target),
            _ => None,
        }
    }

    /// The textual value carried by this node, if any (attribute value,
    /// text content, comment body or PI data).
    pub fn value(&self) -> Option<&str> {
        match self {
            NodeKind::Attribute { value, .. }
            | NodeKind::Text { value }
            | NodeKind::Comment { value } => Some(value),
            NodeKind::Pi { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Short type tag used by the encoding-scheme table (Figure 2 column
    /// "Node Type").
    pub fn type_tag(&self) -> &'static str {
        match self {
            NodeKind::Document => "Document",
            NodeKind::Element { .. } => "Element",
            NodeKind::Attribute { .. } => "Attribute",
            NodeKind::Text { .. } => "Text",
            NodeKind::Comment { .. } => "Comment",
            NodeKind::Pi { .. } => "PI",
        }
    }
}

impl fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Document => write!(f, "#document"),
            NodeKind::Element { name } => write!(f, "<{name}>"),
            NodeKind::Attribute { name, value } => write!(f, "@{name}={value:?}"),
            NodeKind::Text { value } => write!(f, "#text({value:?})"),
            NodeKind::Comment { value } => write!(f, "<!--{value}-->"),
            NodeKind::Pi { target, data } => write!(f, "<?{target} {data}?>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId(42);
        assert_eq!(NodeId::from_index(id.index()), id);
    }

    #[test]
    fn kind_constructors_and_accessors() {
        let e = NodeKind::element("book");
        assert!(e.is_element());
        assert_eq!(e.name(), Some("book"));
        assert_eq!(e.value(), None);
        assert_eq!(e.type_tag(), "Element");

        let a = NodeKind::attribute("genre", "Fantasy");
        assert!(a.is_attribute());
        assert_eq!(a.name(), Some("genre"));
        assert_eq!(a.value(), Some("Fantasy"));

        let t = NodeKind::text("Wayfarer");
        assert!(t.is_text());
        assert_eq!(t.value(), Some("Wayfarer"));
        assert_eq!(t.name(), None);

        let c = NodeKind::comment("note");
        assert_eq!(c.value(), Some("note"));
        assert_eq!(c.type_tag(), "Comment");

        let p = NodeKind::pi("xml-stylesheet", "href=x");
        assert_eq!(p.name(), Some("xml-stylesheet"));
        assert_eq!(p.value(), Some("href=x"));
        assert_eq!(p.type_tag(), "PI");
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeKind::element("a")), "<a>");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }
}
