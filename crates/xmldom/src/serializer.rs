//! Serialization of an [`XmlTree`] back to textual XML.
//!
//! Definition 2 of the paper requires that an encoding scheme "permit the
//! full reconstruction of the textual XML document"; the serializer is the
//! final step of that reconstruction and is exercised by the round-trip
//! tests in `xupd-encoding`.

use crate::node::{NodeId, NodeKind};
use crate::tree::XmlTree;
use std::fmt::Write;

/// Serialize the whole document on one line, no added whitespace.
pub fn serialize_compact(tree: &XmlTree) -> String {
    let mut out = String::new();
    for child in tree.children(tree.root()) {
        write_node(tree, child, &mut out, None, 0);
    }
    out
}

/// Serialize with two-space indentation. Text-bearing elements are kept on
/// one line so that text content is not polluted with indentation.
pub fn serialize_pretty(tree: &XmlTree) -> String {
    let mut out = String::new();
    for child in tree.children(tree.root()) {
        write_node(tree, child, &mut out, Some("  "), 0);
        out.push('\n');
    }
    out
}

/// Serialize the subtree rooted at `id` compactly.
pub fn serialize_subtree(tree: &XmlTree, id: NodeId) -> String {
    let mut out = String::new();
    write_node(tree, id, &mut out, None, 0);
    out
}

fn write_node(tree: &XmlTree, id: NodeId, out: &mut String, indent: Option<&str>, depth: usize) {
    match tree.kind(id) {
        NodeKind::Document => {
            for c in tree.children(id) {
                write_node(tree, c, out, indent, depth);
            }
        }
        NodeKind::Element { name } => {
            let (attrs, children): (Vec<NodeId>, Vec<NodeId>) = tree
                .children(id)
                .partition(|&c| tree.kind(c).is_attribute());
            out.push('<');
            out.push_str(name);
            for a in attrs {
                if let NodeKind::Attribute { name, value } = tree.kind(a) {
                    // fmt::Write to String is infallible
                    let _ = write!(out, " {name}=\"{}\"", escape_attr(value));
                }
            }
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let inline = indent.is_none()
                || children
                    .iter()
                    .all(|&c| matches!(tree.kind(c), NodeKind::Text { .. }));
            for &c in &children {
                if !inline {
                    out.push('\n');
                    push_indent(out, indent, depth + 1);
                }
                write_node(tree, c, out, indent, depth + 1);
            }
            if !inline {
                out.push('\n');
                push_indent(out, indent, depth);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Attribute { .. } => {
            // Attributes detached from an element context serialize to
            // nothing; they are emitted inside their owner's start tag.
        }
        NodeKind::Text { value } => out.push_str(&escape_text(value)),
        NodeKind::Comment { value } => {
            out.push_str("<!--");
            out.push_str(value);
            out.push_str("-->");
        }
        NodeKind::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

fn push_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

/// Escape character data for element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted output.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src = "<a x=\"1\"><b>hi</b><c/><!--n--><?p d?></a>";
        let t = parse(src).unwrap();
        assert_eq!(serialize_compact(&t), src);
    }

    #[test]
    fn escaping_round_trip() {
        let src = "<a x=\"&lt;&quot;&amp;\">a &amp; b &lt; c</a>";
        let t = parse(src).unwrap();
        let out = serialize_compact(&t);
        let t2 = parse(&out).unwrap();
        let a = t2.document_element().unwrap();
        assert_eq!(t2.attribute(a, "x"), Some("<\"&"));
        assert_eq!(t2.text_content(a), "a & b < c");
    }

    #[test]
    fn self_closing_for_empty_elements() {
        let t = parse("<a><b></b></a>").unwrap();
        assert_eq!(serialize_compact(&t), "<a><b/></a>");
    }

    #[test]
    fn pretty_indents_structure() {
        let t = parse("<a><b>x</b><c><d/></c></a>").unwrap();
        let pretty = serialize_pretty(&t);
        assert!(pretty.contains("\n  <b>x</b>"), "{pretty}");
        assert!(pretty.contains("\n    <d/>"), "{pretty}");
        // pretty output re-parses to an equivalent compact form
        let t2 = parse(&pretty).unwrap();
        assert_eq!(serialize_compact(&t2), serialize_compact(&t));
    }

    #[test]
    fn subtree_serialization() {
        let t = parse("<a><b q=\"2\">x</b><c/></a>").unwrap();
        let a = t.document_element().unwrap();
        let b = t.children(a).next().unwrap();
        assert_eq!(serialize_subtree(&t, b), "<b q=\"2\">x</b>");
    }
}
