//! A hand-written, dependency-free XML parser.
//!
//! Supports the subset of XML 1.0 needed by the reproduction: elements,
//! attributes (with entity decoding), character data, CDATA sections,
//! comments, processing instructions, the XML declaration (skipped) and
//! DOCTYPE declarations (skipped, internal subsets ignored). Namespaces are
//! treated lexically (prefixes are kept as part of the name), which matches
//! how the surveyed labelling schemes treat names — they never interpret
//! them (§2.3: no labelling scheme captures names or content at all).

use crate::error::{ParseError, ParseErrorKind};
use crate::node::{NodeId, NodeKind};
use crate::tree::XmlTree;

/// Parse an XML document into an [`XmlTree`].
///
/// Whitespace-only text between elements is preserved only when
/// `keep_whitespace` would be true; this entry point drops it, which is what
/// the paper's figures assume (the Figure 1 tree has no whitespace nodes).
/// Use [`parse_with_options`] to keep whitespace-only text nodes.
pub fn parse(input: &str) -> Result<XmlTree, ParseError> {
    parse_with_options(input, &ParseOptions::default())
}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Keep text nodes that consist solely of whitespace. Defaults to
    /// `false` (the convention used by the paper's example trees).
    pub keep_whitespace_text: bool,
    /// Keep comment nodes. Defaults to `true`.
    pub keep_comments: bool,
    /// Keep processing-instruction nodes. Defaults to `true`.
    pub keep_pis: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            keep_whitespace_text: false,
            keep_comments: true,
            keep_pis: true,
        }
    }
}

/// Parse with explicit [`ParseOptions`].
pub fn parse_with_options(input: &str, opts: &ParseOptions) -> Result<XmlTree, ParseError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
        opts,
    }
    .run()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        self.err_at(kind, self.pos)
    }

    fn err_at(&self, kind: ParseErrorKind, offset: usize) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..offset.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            kind,
            offset,
            line,
            column: col,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    #[inline]
    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn require(&mut self, s: &'static str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(ParseErrorKind::Expected(s)))
        }
    }

    /// Re-slice parser input as UTF-8. The input arrived as `&str`, so
    /// slices on match boundaries are always valid; a failure is an
    /// internal bug surfaced as [`ParseErrorKind::Internal`], not a panic.
    fn utf8(&self, bytes: &'a [u8]) -> Result<&'a str, ParseError> {
        std::str::from_utf8(bytes)
            .map_err(|_| self.err(ParseErrorKind::Internal("input slice was valid UTF-8")))
    }

    /// Attach a freshly created node under a parent that is live by
    /// construction; a failure is an internal bug surfaced as
    /// [`ParseErrorKind::Internal`], not a panic.
    fn attach(&self, tree: &mut XmlTree, parent: NodeId, child: NodeId) -> Result<(), ParseError> {
        tree.append_child(parent, child).map_err(|_| {
            self.err(ParseErrorKind::Internal(
                "fresh node attaches under a live parent",
            ))
        })
    }

    /// Consume up to and including `end`, returning the content before it.
    fn take_until(&mut self, end: &str, ctx: &'static str) -> Result<&'a str, ParseError> {
        let hay = &self.input[self.pos..];
        let needle = end.as_bytes();
        let mut i = 0;
        while i + needle.len() <= hay.len() {
            if &hay[i..i + needle.len()] == needle {
                let s = self.utf8(&hay[..i])?;
                self.pos += i + needle.len();
                return Ok(s);
            }
            i += 1;
        }
        Err(self.err(ParseErrorKind::UnexpectedEof(ctx)))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            _ => return Err(self.err(ParseErrorKind::InvalidName)),
        }
        while let Some(b) = self.peek() {
            if Self::is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.utf8(&self.input[start..self.pos])
    }

    fn decode_entities(&self, raw: &str, base: usize) -> Result<String, ParseError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] != b'&' {
                // copy one UTF-8 char
                let ch_len = utf8_len(bytes[i]);
                out.push_str(&raw[i..i + ch_len]);
                i += ch_len;
                continue;
            }
            let semi = raw[i + 1..]
                .find(';')
                .ok_or_else(|| self.err_at(ParseErrorKind::BadEntity(String::new()), base + i))?;
            let ent = &raw[i + 1..i + 1 + semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let v = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                        self.err_at(ParseErrorKind::BadEntity(ent.to_string()), base + i)
                    })?;
                    out.push(
                        char::from_u32(v)
                            .ok_or_else(|| self.err_at(ParseErrorKind::BadCharRef(v), base + i))?,
                    );
                }
                _ if ent.starts_with('#') => {
                    let v: u32 = ent[1..].parse().map_err(|_| {
                        self.err_at(ParseErrorKind::BadEntity(ent.to_string()), base + i)
                    })?;
                    out.push(
                        char::from_u32(v)
                            .ok_or_else(|| self.err_at(ParseErrorKind::BadCharRef(v), base + i))?,
                    );
                }
                _ => return Err(self.err_at(ParseErrorKind::BadEntity(ent.to_string()), base + i)),
            }
            i += semi + 2;
        }
        Ok(out)
    }

    fn run(mut self) -> Result<XmlTree, ParseError> {
        let mut tree = XmlTree::new();
        let root = tree.root();
        // stack of open elements; the document root is the base
        let mut stack: Vec<(NodeId, String)> = Vec::new();
        let mut saw_document_element = false;
        let mut pending_text = String::new();
        let mut pending_text_start = 0usize;

        macro_rules! flush_text {
            ($tree:expr, $stack:expr) => {
                if !pending_text.is_empty() {
                    let keep = self.opts.keep_whitespace_text
                        || !pending_text.chars().all(char::is_whitespace);
                    if keep {
                        let parent = match $stack.last() {
                            Some(&(p, _)) => p,
                            None => {
                                if pending_text.chars().all(char::is_whitespace) {
                                    pending_text.clear();
                                    root // unreachable attach below is skipped by clear
                                } else {
                                    return Err(self.err_at(
                                        ParseErrorKind::TrailingContent,
                                        pending_text_start,
                                    ));
                                }
                            }
                        };
                        if !pending_text.is_empty() {
                            let decoded =
                                self.decode_entities(&pending_text, pending_text_start)?;
                            let n = $tree.create(NodeKind::Text { value: decoded });
                            self.attach(&mut $tree, parent, n)?;
                        }
                    }
                    pending_text.clear();
                }
            };
        }

        while self.pos < self.input.len() {
            if self.starts_with("<?") {
                flush_text!(tree, stack);
                self.bump(2);
                let target = self.name()?.to_string();
                self.skip_ws();
                let data = self.take_until("?>", "processing instruction")?;
                if target.eq_ignore_ascii_case("xml") {
                    // XML declaration: skip.
                } else if self.opts.keep_pis {
                    let parent = stack.last().map(|&(p, _)| p).unwrap_or(root);
                    let n = tree.create(NodeKind::Pi {
                        target,
                        data: data.trim_end().to_string(),
                    });
                    self.attach(&mut tree, parent, n)?;
                }
            } else if self.starts_with("<!--") {
                flush_text!(tree, stack);
                self.bump(4);
                let body = self.take_until("-->", "comment")?.to_string();
                if self.opts.keep_comments {
                    let parent = stack.last().map(|&(p, _)| p).unwrap_or(root);
                    let n = tree.create(NodeKind::Comment { value: body });
                    self.attach(&mut tree, parent, n)?;
                }
            } else if self.starts_with("<![CDATA[") {
                self.bump(9);
                let start = self.pos;
                let body = self.take_until("]]>", "CDATA section")?;
                // CDATA is literal text — but entity decoding must NOT apply.
                let Some(&(parent, _)) = stack.last() else {
                    return Err(self.err_at(ParseErrorKind::TrailingContent, start));
                };
                flush_text!(tree, stack);
                let n = tree.create(NodeKind::Text {
                    value: body.to_string(),
                });
                self.attach(&mut tree, parent, n)?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                flush_text!(tree, stack);
                // Skip to the matching '>' accounting for an internal subset
                // in [...].
                self.bump(9);
                let mut depth = 0i32;
                loop {
                    match self.peek() {
                        None => return Err(self.err(ParseErrorKind::UnexpectedEof("DOCTYPE"))),
                        Some(b'[') => {
                            depth += 1;
                            self.bump(1);
                        }
                        Some(b']') => {
                            depth -= 1;
                            self.bump(1);
                        }
                        Some(b'>') if depth <= 0 => {
                            self.bump(1);
                            break;
                        }
                        Some(_) => self.bump(1),
                    }
                }
            } else if self.starts_with("</") {
                flush_text!(tree, stack);
                self.bump(2);
                let name = self.name()?;
                self.skip_ws();
                self.require(">")?;
                match stack.pop() {
                    Some((_, open)) if open == name => {}
                    Some((_, open)) => {
                        return Err(self.err(ParseErrorKind::MismatchedClose {
                            expected: open,
                            found: name.to_string(),
                        }))
                    }
                    None => return Err(self.err(ParseErrorKind::TrailingContent)),
                }
            } else if self.peek() == Some(b'<') {
                flush_text!(tree, stack);
                self.bump(1);
                let name = self.name()?.to_string();
                let parent = match stack.last() {
                    Some(&(p, _)) => p,
                    None if !saw_document_element => root,
                    None => return Err(self.err(ParseErrorKind::TrailingContent)),
                };
                let elem = tree.create(NodeKind::Element { name: name.clone() });
                self.attach(&mut tree, parent, elem)?;
                if stack.is_empty() {
                    saw_document_element = true;
                }
                // attributes
                let mut attr_names: Vec<String> = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump(1);
                            stack.push((elem, name));
                            break;
                        }
                        Some(b'/') => {
                            self.require("/>")?;
                            break; // self-closing: do not push
                        }
                        Some(b) if Parser::is_name_start(b) => {
                            let astart = self.pos;
                            let aname = self.name()?.to_string();
                            if attr_names.contains(&aname) {
                                return Err(
                                    self.err_at(ParseErrorKind::DuplicateAttribute(aname), astart)
                                );
                            }
                            self.skip_ws();
                            self.require("=")?;
                            self.skip_ws();
                            let quote = match self.peek() {
                                Some(q @ (b'"' | b'\'')) => {
                                    self.bump(1);
                                    q
                                }
                                _ => return Err(self.err(ParseErrorKind::Expected("quote"))),
                            };
                            let vstart = self.pos;
                            let raw = if quote == b'"' {
                                self.take_until("\"", "attribute value")?
                            } else {
                                self.take_until("'", "attribute value")?
                            };
                            let value = self.decode_entities(raw, vstart)?;
                            let a = tree.create(NodeKind::Attribute {
                                name: aname.clone(),
                                value,
                            });
                            self.attach(&mut tree, elem, a)?;
                            attr_names.push(aname);
                        }
                        Some(_) => {
                            return Err(self.err(ParseErrorKind::Expected("attribute, '>' or '/>'")))
                        }
                        None => return Err(self.err(ParseErrorKind::UnexpectedEof("start tag"))),
                    }
                }
            } else {
                // character data
                if pending_text.is_empty() {
                    pending_text_start = self.pos;
                }
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let chunk = self.utf8(&self.input[start..self.pos])?;
                pending_text.push_str(chunk);
            }
        }
        flush_text!(tree, stack);
        if let Some((_, open)) = stack.pop() {
            return Err(self.err(ParseErrorKind::UnexpectedEof(Box::leak(
                format!("element <{open}>").into_boxed_str(),
            ))));
        }
        if !saw_document_element {
            return Err(self.err(ParseErrorKind::NoDocumentElement));
        }
        Ok(tree)
    }
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn simple_document() {
        let t = parse("<a><b>hi</b><c/></a>").unwrap();
        let a = t.document_element().unwrap();
        assert_eq!(t.kind(a).name(), Some("a"));
        let kids: Vec<_> = t.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.text_content(kids[0]), "hi");
        assert_eq!(t.kind(kids[1]).name(), Some("c"));
        t.validate().unwrap();
    }

    #[test]
    fn attributes_become_first_children() {
        let t = parse("<e a=\"1\" b='2'>t</e>").unwrap();
        let e = t.document_element().unwrap();
        let kids: Vec<_> = t.children(e).collect();
        assert_eq!(kids.len(), 3);
        assert!(t.kind(kids[0]).is_attribute());
        assert!(t.kind(kids[1]).is_attribute());
        assert!(t.kind(kids[2]).is_text());
        assert_eq!(t.attribute(e, "a"), Some("1"));
        assert_eq!(t.attribute(e, "b"), Some("2"));
    }

    #[test]
    fn entities_decoded_in_text_and_attributes() {
        let t = parse("<e a=\"&lt;&amp;&gt;\">x &amp; y &#65;&#x42;</e>").unwrap();
        let e = t.document_element().unwrap();
        assert_eq!(t.attribute(e, "a"), Some("<&>"));
        assert_eq!(t.text_content(e), "x & y AB");
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse("<e>&nope;</e>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadEntity(e) if e == "nope"));
    }

    #[test]
    fn cdata_is_literal() {
        let t = parse("<e><![CDATA[a < b & c]]></e>").unwrap();
        let e = t.document_element().unwrap();
        assert_eq!(t.text_content(e), "a < b & c");
    }

    #[test]
    fn comments_and_pis_kept() {
        let t = parse("<?xml version=\"1.0\"?><e><!--note--><?php echo?></e>").unwrap();
        let e = t.document_element().unwrap();
        let kids: Vec<_> = t.children(e).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.kind(kids[0]), &NodeKind::comment("note"));
        assert!(matches!(t.kind(kids[1]), NodeKind::Pi { target, .. } if target == "php"));
    }

    #[test]
    fn comments_and_pis_dropped_when_configured() {
        let opts = ParseOptions {
            keep_comments: false,
            keep_pis: false,
            ..Default::default()
        };
        let t = parse_with_options("<e><!--note--><?php echo?></e>", &opts).unwrap();
        let e = t.document_element().unwrap();
        assert_eq!(t.children(e).count(), 0);
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let t = parse("<a>\n  <b/>\n</a>").unwrap();
        let a = t.document_element().unwrap();
        assert_eq!(t.children(a).count(), 1);
        let opts = ParseOptions {
            keep_whitespace_text: true,
            ..Default::default()
        };
        let t2 = parse_with_options("<a>\n  <b/>\n</a>", &opts).unwrap();
        let a2 = t2.document_element().unwrap();
        assert_eq!(t2.children(a2).count(), 3);
    }

    #[test]
    fn mismatched_close_reports_names() {
        let err = parse("<a><b></a>").unwrap_err();
        match err.kind {
            ParseErrorKind::MismatchedClose { expected, found } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn unclosed_element_is_eof_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn trailing_element_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(a) if a == "x"));
    }

    #[test]
    fn doctype_skipped() {
        let t = parse("<!DOCTYPE html [ <!ENTITY x \"y\"> ]><a/>").unwrap();
        assert!(t.document_element().is_some());
    }

    #[test]
    fn empty_input_has_no_document_element() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NoDocumentElement));
    }

    #[test]
    fn error_position_line_column() {
        let err = parse("<a>\n<b x=></b></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn unicode_text_survives() {
        let t = parse("<e>héllo 世界</e>").unwrap();
        let e = t.document_element().unwrap();
        assert_eq!(t.text_content(e), "héllo 世界");
    }
}
