//! A fluent builder for constructing documents programmatically, used by
//! workload generators and tests where going through the parser would be
//! wasteful.

use crate::node::{NodeId, NodeKind};
use crate::tree::XmlTree;

/// Builds an [`XmlTree`] with a cursor-based API.
///
/// ```
/// use xupd_xmldom::{TreeBuilder, serialize_compact};
///
/// let tree = TreeBuilder::new()
///     .open("book")
///     .attr("isbn", "123")
///     .open("title").text("Wayfarer").close()
///     .close()
///     .finish();
/// assert_eq!(
///     serialize_compact(&tree),
///     "<book isbn=\"123\"><title>Wayfarer</title></book>"
/// );
/// ```
pub struct TreeBuilder {
    tree: XmlTree,
    stack: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Start a new document.
    pub fn new() -> Self {
        let tree = XmlTree::new();
        let root = tree.root();
        TreeBuilder {
            tree,
            stack: vec![root],
        }
    }

    fn cursor(&self) -> NodeId {
        // The stack is seeded with the root and close() never pops the
        // last entry, so the fallback is unreachable; the root is the
        // safe degenerate cursor.
        self.stack.last().copied().unwrap_or_else(|| self.tree.root())
    }

    /// Create a node of `kind` and attach it under the cursor. The
    /// attach is infallible by construction (fresh detached node, live
    /// anchor): checked in debug builds rather than panicking in release.
    fn append(&mut self, kind: NodeKind) -> NodeId {
        let n = self.tree.create(kind);
        let attached = self.tree.append_child(self.cursor(), n);
        debug_assert!(attached.is_ok(), "fresh node attaches under live cursor");
        n
    }

    /// Open a child element and move the cursor into it.
    pub fn open(mut self, name: impl Into<String>) -> Self {
        let e = self.append(NodeKind::element(name));
        self.stack.push(e);
        self
    }

    /// Close the current element, moving the cursor back to its parent.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "close() with no open element");
        self.stack.pop();
        self
    }

    /// Add an attribute to the current element.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.append(NodeKind::attribute(name, value));
        self
    }

    /// Add a text child to the current element.
    pub fn text(mut self, value: impl Into<String>) -> Self {
        self.append(NodeKind::text(value));
        self
    }

    /// Add a comment child.
    pub fn comment(mut self, value: impl Into<String>) -> Self {
        self.append(NodeKind::comment(value));
        self
    }

    /// Add a processing-instruction child.
    pub fn pi(mut self, target: impl Into<String>, data: impl Into<String>) -> Self {
        self.append(NodeKind::pi(target, data));
        self
    }

    /// Shorthand: `open(name).text(value).close()`.
    pub fn leaf(self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.open(name).text(value).close()
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn finish(self) -> XmlTree {
        assert!(
            self.stack.len() == 1,
            "finish() with {} unclosed element(s)",
            self.stack.len() - 1
        );
        self.tree
    }

    /// Finish building even with open elements (auto-closing them), and
    /// also return the id of the last node the cursor pointed at.
    pub fn finish_lenient(self) -> XmlTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::serialize_compact;

    #[test]
    fn nested_structure() {
        let t = TreeBuilder::new()
            .open("a")
            .open("b")
            .leaf("c", "x")
            .close()
            .comment("done")
            .close()
            .finish();
        assert_eq!(serialize_compact(&t), "<a><b><c>x</c></b><!--done--></a>");
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_element() {
        let _ = TreeBuilder::new().open("a").finish();
    }

    #[test]
    #[should_panic(expected = "no open element")]
    fn close_panics_at_root() {
        let _ = TreeBuilder::new().close();
    }

    #[test]
    fn lenient_finish_allows_open_elements() {
        let t = TreeBuilder::new().open("a").open("b").finish_lenient();
        assert_eq!(t.len(), 3);
    }
}
