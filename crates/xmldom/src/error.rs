//! Error types for tree manipulation and XML parsing.

use crate::node::NodeId;
use std::fmt;

/// Errors raised by structural operations on an [`crate::XmlTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id refers to a deleted node.
    DeadNode(NodeId),
    /// Attempted to detach, delete or re-parent the document root.
    RootImmutable,
    /// Attempted to attach a node that is already attached somewhere.
    AlreadyAttached(NodeId),
    /// Attempted to attach a node under (or next to) itself or its own
    /// descendant, which would create a cycle.
    WouldCycle(NodeId),
    /// The reference sibling has no parent (is detached), so there is no
    /// position "before"/"after" it.
    NoParent(NodeId),
    /// A structural invariant check failed; carries a human-readable
    /// description. Only produced by [`crate::XmlTree::validate`].
    Invariant(String),
    /// A node that the caller's invariants require to have a parent is
    /// detached (e.g. a freshly inserted node handed to a labelling
    /// scheme before being attached).
    MissingParent(NodeId),
    /// A node id that does not denote a live node was handed to an API
    /// that requires one (out of the arena's id space, or retired).
    DanglingNodeId(NodeId),
    /// A live node unexpectedly has no label in a labelling side table
    /// that is supposed to cover every live node.
    Unlabeled(NodeId),
    /// A batch log creates the same log-local id twice (carries the raw
    /// log id, which shares no namespace with [`NodeId`]).
    DuplicateCreate(u32),
    /// A batch log writes to a node it has already consumed (deleted or
    /// replaced it, or one of its ancestors) earlier in the same batch.
    ConflictingWrite(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DeadNode(id) => write!(f, "node {id} has been deleted"),
            TreeError::RootImmutable => write!(f, "the document root cannot be moved or deleted"),
            TreeError::AlreadyAttached(id) => {
                write!(f, "node {id} is already attached to a parent")
            }
            TreeError::WouldCycle(id) => {
                write!(f, "attaching node {id} here would create a cycle")
            }
            TreeError::NoParent(id) => write!(f, "node {id} is detached; no sibling position"),
            TreeError::Invariant(msg) => write!(f, "tree invariant violated: {msg}"),
            TreeError::MissingParent(id) => write!(f, "node {id} unexpectedly has no parent"),
            TreeError::DanglingNodeId(id) => write!(f, "node id {id} is dangling (dead or out of range)"),
            TreeError::Unlabeled(id) => write!(f, "node {id} has no label"),
            TreeError::DuplicateCreate(lid) => {
                write!(f, "log id #{lid} is created more than once in the batch")
            }
            TreeError::ConflictingWrite(id) => {
                write!(f, "conflicting writes: node {id} was already consumed by the batch")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors raised by the XML parser, with byte offset and 1-based line/column
/// of the offending input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A tag, attribute or PI target name was empty or started with an
    /// invalid character.
    InvalidName,
    /// Expected a specific token (e.g. `=` after an attribute name).
    Expected(&'static str),
    /// A closing tag did not match the innermost open element.
    MismatchedClose {
        /// Name the parser expected to be closed.
        expected: String,
        /// Name found in the closing tag.
        found: String,
    },
    /// Text or markup found after the document element closed, or a closing
    /// tag with no element open.
    TrailingContent,
    /// An entity reference was malformed or unknown (only the five
    /// predefined entities and numeric character references are supported).
    BadEntity(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// The document contained no element at all.
    NoDocumentElement,
    /// A numeric character reference does not denote a valid char.
    BadCharRef(u32),
    /// An internal parser invariant failed (a tree attach or UTF-8
    /// re-slice that is unreachable for well-formed parser state). Never
    /// produced by malformed *input*; surfacing it as an error instead of
    /// panicking keeps the parser total.
    Internal(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            ParseErrorKind::InvalidName => write!(f, "invalid name"),
            ParseErrorKind::Expected(tok) => write!(f, "expected {tok}"),
            ParseErrorKind::MismatchedClose { expected, found } => {
                write!(
                    f,
                    "mismatched closing tag: expected </{expected}>, found </{found}>"
                )
            }
            ParseErrorKind::TrailingContent => write!(f, "content after document element"),
            ParseErrorKind::BadEntity(e) => write!(f, "unknown or malformed entity '&{e};'"),
            ParseErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute '{a}'"),
            ParseErrorKind::NoDocumentElement => write!(f, "document has no root element"),
            ParseErrorKind::BadCharRef(v) => write!(f, "invalid character reference #{v}"),
            ParseErrorKind::Internal(msg) => write!(f, "internal parser invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError {
            kind: ParseErrorKind::Expected(">"),
            offset: 10,
            line: 2,
            column: 3,
        };
        let s = e.to_string();
        assert!(s.contains("line 2"), "{s}");
        assert!(s.contains("expected >"), "{s}");
    }

    /// Every `TreeError` variant has a distinct, non-empty rendering.
    #[test]
    fn tree_error_display_all_variants() {
        let id = NodeId(3);
        let cases: Vec<(TreeError, &str)> = vec![
            (TreeError::DeadNode(id), "deleted"),
            (TreeError::RootImmutable, "root"),
            (TreeError::AlreadyAttached(id), "already attached"),
            (TreeError::WouldCycle(id), "cycle"),
            (TreeError::NoParent(id), "no sibling position"),
            (TreeError::Invariant("x".into()), "invariant"),
            (TreeError::MissingParent(id), "no parent"),
            (TreeError::DanglingNodeId(id), "dangling"),
            (TreeError::Unlabeled(id), "no label"),
            (TreeError::DuplicateCreate(3), "created more than once"),
            (TreeError::ConflictingWrite(id), "conflicting writes"),
        ];
        let mut renderings = Vec::new();
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{e:?} → {s}");
            renderings.push(s);
        }
        renderings.sort();
        renderings.dedup();
        assert_eq!(renderings.len(), 11, "renderings are distinct");
        // id-carrying variants name the node
        assert!(TreeError::DeadNode(id).to_string().contains("n3"));
        assert!(TreeError::MissingParent(id).to_string().contains("n3"));
        assert!(TreeError::DanglingNodeId(id).to_string().contains("n3"));
        assert!(TreeError::Unlabeled(id).to_string().contains("n3"));
        assert!(TreeError::DuplicateCreate(3).to_string().contains("#3"));
        assert!(TreeError::ConflictingWrite(id).to_string().contains("n3"));
    }

    /// Every `ParseErrorKind` variant has a distinct, non-empty rendering.
    #[test]
    fn parse_error_display_all_variants() {
        let kinds: Vec<(ParseErrorKind, &str)> = vec![
            (ParseErrorKind::UnexpectedEof("comment"), "end of input"),
            (ParseErrorKind::InvalidName, "invalid name"),
            (ParseErrorKind::Expected(">"), "expected >"),
            (
                ParseErrorKind::MismatchedClose {
                    expected: "a".into(),
                    found: "b".into(),
                },
                "</a>",
            ),
            (ParseErrorKind::TrailingContent, "after document element"),
            (ParseErrorKind::BadEntity("nope".into()), "&nope;"),
            (ParseErrorKind::DuplicateAttribute("x".into()), "'x'"),
            (ParseErrorKind::NoDocumentElement, "no root element"),
            (ParseErrorKind::BadCharRef(0xD800), "#55296"),
            (ParseErrorKind::Internal("attach"), "internal"),
        ];
        let mut renderings = Vec::new();
        for (kind, needle) in kinds {
            let s = ParseError {
                kind,
                offset: 0,
                line: 1,
                column: 1,
            }
            .to_string();
            assert!(s.contains(needle), "{s}");
            renderings.push(s);
        }
        renderings.sort();
        renderings.dedup();
        assert_eq!(renderings.len(), 10, "renderings are distinct");
    }
}
