//! # xupd-xmldom — ordered XML tree substrate
//!
//! The XPath data model, and every labelling scheme surveyed in *Desirable
//! Properties for XML Update Mechanisms* (O'Connor & Roantree, EDBT 2010),
//! is defined over an **ordered rooted tree** representation of an XML
//! document, not over the textual document itself (§2.1 of the paper).
//!
//! This crate provides that substrate:
//!
//! * [`XmlTree`] — an arena-allocated ordered tree with O(1) structural
//!   update operations (insert first/last child, insert before/after a
//!   sibling, detach, delete subtree);
//! * [`NodeKind`] — the node taxonomy of the XPath data model (document,
//!   element, attribute, text, comment, processing instruction);
//! * a hand-written XML [`parser`] and [`serializer`] sufficient for the
//!   documents used throughout the reproduction (elements, attributes,
//!   text, CDATA, comments, processing instructions, the five predefined
//!   entities and numeric character references);
//! * ground-truth structural queries ([`XmlTree::doc_cmp`],
//!   [`XmlTree::is_ancestor`], [`XmlTree::depth`], axis enumeration) that
//!   the labelling-scheme property checkers compare against;
//! * the paper's Figure 1 sample document ([`sample::figure1_document`]),
//!   which several golden tests reproduce label-for-label.
//!
//! Attributes are modelled as ordinary nodes that sort before their owner
//! element's other children, exactly as in the paper's Figure 1(b)/Figure 2,
//! where the `genre` attribute receives its own pre/post label.
//!
//! ```
//! use xupd_xmldom::{parse, serialize_compact};
//!
//! let tree = parse("<a x=\"1\"><b>hi</b></a>").unwrap();
//! assert_eq!(serialize_compact(&tree), "<a x=\"1\"><b>hi</b></a>");
//! ```

pub mod builder;
pub mod error;
pub mod node;
pub mod parser;
pub mod sample;
pub mod serializer;
pub mod traverse;
pub mod tree;

/// The names of [`XmlTree`]'s structural mutator methods — the calls
/// that change tree shape (as opposed to node content). This is the
/// single source of truth consumed by both `xupd-lint`'s
/// `no-direct-batch-mutation` rule (R8 forbids calling these in per-op
/// replay loops outside the sanctioned edit paths) and the batch
/// analyzer's write-footprint table in `xupd_framework::analysis`; a
/// sync test on each side keeps them from drifting.
pub const STRUCTURAL_MUTATORS: &[&str] = &[
    "append_child",
    "prepend_child",
    "insert_before",
    "insert_after",
    "detach",
    "remove_subtree",
];

pub use builder::TreeBuilder;
pub use error::{ParseError, TreeError};
pub use node::{NodeId, NodeKind};
pub use parser::parse;
pub use serializer::{serialize_compact, serialize_pretty};
pub use traverse::{Postorder, Preorder};
pub use tree::XmlTree;
