//! The paper's running example: the sample XML file of Figure 1(a) and its
//! ten-node tree of Figure 1(b).
//!
//! Several golden tests (Figures 1–6) and the Figure 2 encoding table are
//! phrased over exactly this document, so it lives in the substrate crate
//! where every other crate can reach it.

use crate::builder::TreeBuilder;
use crate::node::NodeId;
use crate::tree::XmlTree;

/// The textual document of Figure 1(a).
pub const FIGURE1_XML: &str = r#"<book>
<title genre="Fantasy"> Wayfarer </title>
<author> Matthew Dickens </author>
<publisher>
<editor>
<name> Destiny Image </name>
<address> USA </address>
</editor>
<edition year="2004"> 1.0 </edition>
</publisher>
</book>"#;

/// Build the Figure 1(b) tree programmatically: ten labelled nodes, with
/// text leaves carrying the data values.
///
/// The paper's figure labels only the ten *structural* nodes (elements and
/// attributes) — text leaves "are considered by the XML encoding scheme and
/// not the labelling scheme" (§3.1.1). [`figure1_labelled_nodes`] returns
/// those ten nodes in the paper's preorder.
pub fn figure1_document() -> XmlTree {
    TreeBuilder::new()
        .open("book")
        .open("title")
        .attr("genre", "Fantasy")
        .text("Wayfarer")
        .close()
        .leaf("author", "Matthew Dickens")
        .open("publisher")
        .open("editor")
        .leaf("name", "Destiny Image")
        .leaf("address", "USA")
        .close()
        .open("edition")
        .attr("year", "2004")
        .text("1.0")
        .close()
        .close()
        .close()
        .finish()
}

/// The ten nodes of Figure 1(b) in the paper's preorder:
/// book, title, @genre, author, publisher, editor, name, address, edition,
/// @year.
pub fn figure1_labelled_nodes(tree: &XmlTree) -> Vec<NodeId> {
    // The labelled nodes are exactly the element and attribute nodes, in
    // document order.
    tree.preorder()
        .filter(|&n| {
            let k = tree.kind(n);
            k.is_element() || k.is_attribute()
        })
        .collect()
}

/// The paper's Figure 1(b) expected (pre, post) label pairs, in the order
/// returned by [`figure1_labelled_nodes`].
pub const FIGURE1_PRE_POST: [(u64, u64); 10] = [
    (0, 9), // book
    (1, 1), // title
    (2, 0), // @genre
    (3, 2), // author
    (4, 8), // publisher
    (5, 5), // editor
    (6, 3), // name
    (7, 4), // address
    (8, 7), // edition
    (9, 6), // @year
];

/// The rows of the paper's Figure 2 encoding table:
/// (pre, post, node type, parent pre, name, value).
pub const FIGURE2_ROWS: [(u64, u64, &str, Option<u64>, &str, &str); 10] = [
    (0, 9, "Element", None, "book", ""),
    (1, 1, "Element", Some(0), "title", "Wayfarer"),
    (2, 0, "Attribute", Some(1), "genre", "Fantasy"),
    (3, 2, "Element", Some(0), "author", "Matthew Dickens"),
    (4, 8, "Element", Some(0), "publisher", ""),
    (5, 5, "Element", Some(4), "editor", ""),
    (6, 3, "Element", Some(5), "name", "Destiny Image"),
    (7, 4, "Element", Some(5), "address", "USA"),
    (8, 7, "Element", Some(4), "edition", "1.0"),
    (9, 6, "Attribute", Some(8), "year", "2004"),
];

/// A ten-node abstract tree with the same *shape* as Figures 3–6 of the
/// paper (root with three children; first child has one child (plus, in
/// Figure 1, an attribute); the shapes used by the DeweyID / ORDPATH /
/// LSDX / ImprovedBinary illustrations).
///
/// Figures 3–6 all draw the same silhouette: a root, three children, and
/// under them the leaf rows shown in each figure. Returns the tree and the
/// nodes in document order (root first).
pub fn figure3_shape() -> (XmlTree, Vec<NodeId>) {
    // Shape from Figure 3 (DeweyID): root 1 with children 1.1, 1.2, 1.3;
    // 1.1 has children 1.1.1, 1.1.2; 1.2 has child 1.2.1; 1.3 has children
    // 1.3.1, 1.3.2, 1.3.3.
    let t = TreeBuilder::new()
        .open("r")
        .open("a")
        .open("a1")
        .close()
        .open("a2")
        .close()
        .close()
        .open("b")
        .open("b1")
        .close()
        .close()
        .open("c")
        .open("c1")
        .close()
        .open("c2")
        .close()
        .open("c3")
        .close()
        .close()
        .close()
        .finish();
    let nodes = t.preorder().filter(|&n| t.kind(n).is_element()).collect();
    (t, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::traverse::{postorder_ranks, preorder_ranks};
    use std::collections::HashMap;

    #[test]
    fn parsed_figure1_matches_programmatic_figure1() {
        let parsed = parse(FIGURE1_XML).unwrap();
        let built = figure1_document();
        // Same structural skeleton: compare (kind tag, name, depth) in
        // document order over labelled nodes.
        let sig = |t: &XmlTree| -> Vec<(String, String, u32)> {
            figure1_labelled_nodes(t)
                .into_iter()
                .map(|n| {
                    (
                        t.kind(n).type_tag().to_string(),
                        t.kind(n).name().unwrap_or("").to_string(),
                        t.depth(n),
                    )
                })
                .collect()
        };
        assert_eq!(sig(&parsed), sig(&built));
    }

    #[test]
    fn figure1_pre_post_golden() {
        let t = figure1_document();
        let nodes = figure1_labelled_nodes(&t);
        assert_eq!(nodes.len(), 10);
        // Ranks computed over the labelled (element+attribute) nodes only,
        // exactly as the paper's figure does.
        let book = nodes[0];
        let pre_seq: Vec<_> = t
            .preorder_from(book)
            .filter(|&n| t.kind(n).is_element() || t.kind(n).is_attribute())
            .collect();
        let post_seq: Vec<_> = crate::traverse::Postorder::from(&t, book)
            .filter(|&n| t.kind(n).is_element() || t.kind(n).is_attribute())
            .collect();
        for (i, &n) in nodes.iter().enumerate() {
            let pre = pre_seq.iter().position(|&x| x == n).unwrap() as u64;
            let post = post_seq.iter().position(|&x| x == n).unwrap() as u64;
            assert_eq!((pre, post), FIGURE1_PRE_POST[i], "node {i}");
        }
    }

    #[test]
    fn whole_tree_ranks_are_consistent() {
        let t = figure1_document();
        let pre: HashMap<_, _> = preorder_ranks(&t).into_iter().collect();
        let post: HashMap<_, _> = postorder_ranks(&t).into_iter().collect();
        assert_eq!(pre.len(), t.len());
        assert_eq!(post.len(), t.len());
    }

    #[test]
    fn figure3_shape_has_ten_element_nodes() {
        let (t, nodes) = figure3_shape();
        assert_eq!(nodes.len(), 10);
        t.validate().unwrap();
        // root has 3 children, first child 2, second 1, third 3
        let root = nodes[0];
        let kids: Vec<_> = t.children(root).collect();
        assert_eq!(kids.len(), 3);
        assert_eq!(t.child_count(kids[0]), 2);
        assert_eq!(t.child_count(kids[1]), 1);
        assert_eq!(t.child_count(kids[2]), 3);
    }
}
