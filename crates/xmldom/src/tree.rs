//! The arena-allocated ordered XML tree and its structural update
//! operations.
//!
//! All structural mutations the paper classifies (§3.1: *structural
//! updates* — insertion and deletion of leaf nodes, internal nodes and
//! subtrees) are provided as O(1) pointer surgery, plus O(subtree) deletion.
//! Content updates (renaming, changing text) never disturb node identity or
//! order, matching the paper's observation that only structural updates
//! stress a labelling scheme.

use crate::error::TreeError;
use crate::node::{NodeId, NodeKind};
use crate::traverse::{Postorder, Preorder};
use std::cmp::Ordering;

#[derive(Clone, Debug)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    prev_sibling: Option<NodeId>,
    next_sibling: Option<NodeId>,
    alive: bool,
}

/// An ordered rooted tree over [`NodeKind`] nodes.
///
/// The tree always contains a single [`NodeKind::Document`] root created by
/// [`XmlTree::new`]. Node ids are dense arena indices and are never reused
/// after deletion, so side tables keyed by [`NodeId`] stay sound across
/// arbitrary update sequences.
#[derive(Clone, Debug)]
pub struct XmlTree {
    nodes: Vec<NodeData>,
    alive: usize,
}

impl Default for XmlTree {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlTree {
    /// Create a tree holding only the document root.
    pub fn new() -> Self {
        XmlTree {
            nodes: vec![NodeData {
                kind: NodeKind::Document,
                parent: None,
                first_child: None,
                last_child: None,
                prev_sibling: None,
                next_sibling: None,
                alive: true,
            }],
            alive: 1,
        }
    }

    /// The document root id (always the same for the life of the tree).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of live nodes, including the document root.
    #[inline]
    pub fn len(&self) -> usize {
        self.alive
    }

    /// True when only the document root exists.
    pub fn is_empty(&self) -> bool {
        self.alive <= 1
    }

    /// Total ids ever issued (live + dead). Useful to size side tables.
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Is `id` a live node of this tree?
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    fn get(&self, id: NodeId) -> &NodeData {
        let n = &self.nodes[id.index()];
        debug_assert!(n.alive, "access to dead node {id:?}");
        n
    }

    fn get_mut(&mut self, id: NodeId) -> &mut NodeData {
        let n = &mut self.nodes[id.index()];
        debug_assert!(n.alive, "access to dead node {id:?}");
        n
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.get(id).kind
    }

    /// Mutable access to the node's kind — this is a *content update* in
    /// the paper's taxonomy and never affects labels.
    #[inline]
    pub fn kind_mut(&mut self, id: NodeId) -> &mut NodeKind {
        &mut self.get_mut(id).kind
    }

    /// Parent, if attached and not the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.get(id).parent
    }

    /// First child in document order.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.get(id).first_child
    }

    /// Last child in document order.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.get(id).last_child
    }

    /// Previous sibling.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.get(id).prev_sibling
    }

    /// Next sibling.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.get(id).next_sibling
    }

    /// Allocate a new, detached node of the given kind.
    pub fn create(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            alive: true,
        });
        self.alive += 1;
        id
    }

    fn check_attachable(&self, child: NodeId, anchor: NodeId) -> Result<(), TreeError> {
        if !self.is_alive(child) {
            return Err(TreeError::DeadNode(child));
        }
        if !self.is_alive(anchor) {
            return Err(TreeError::DeadNode(anchor));
        }
        if child == self.root() {
            return Err(TreeError::RootImmutable);
        }
        if self.get(child).parent.is_some() {
            return Err(TreeError::AlreadyAttached(child));
        }
        // Walk up from the anchor: the child must not be one of its
        // ancestors (or the anchor itself).
        let mut cur = Some(anchor);
        while let Some(a) = cur {
            if a == child {
                return Err(TreeError::WouldCycle(child));
            }
            cur = self.get(a).parent;
        }
        Ok(())
    }

    /// Append `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), TreeError> {
        self.check_attachable(child, parent)?;
        let old_last = self.get(parent).last_child;
        {
            let c = self.get_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = old_last;
            c.next_sibling = None;
        }
        match old_last {
            Some(l) => self.get_mut(l).next_sibling = Some(child),
            None => self.get_mut(parent).first_child = Some(child),
        }
        self.get_mut(parent).last_child = Some(child);
        Ok(())
    }

    /// Insert `child` as the first child of `parent`.
    pub fn prepend_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), TreeError> {
        self.check_attachable(child, parent)?;
        let old_first = self.get(parent).first_child;
        {
            let c = self.get_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = None;
            c.next_sibling = old_first;
        }
        match old_first {
            Some(f) => self.get_mut(f).prev_sibling = Some(child),
            None => self.get_mut(parent).last_child = Some(child),
        }
        self.get_mut(parent).first_child = Some(child);
        Ok(())
    }

    /// Insert `child` immediately before `sibling` under the same parent.
    pub fn insert_before(&mut self, sibling: NodeId, child: NodeId) -> Result<(), TreeError> {
        self.check_attachable(child, sibling)?;
        let parent = self
            .get(sibling)
            .parent
            .ok_or(TreeError::NoParent(sibling))?;
        let prev = self.get(sibling).prev_sibling;
        {
            let c = self.get_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = prev;
            c.next_sibling = Some(sibling);
        }
        self.get_mut(sibling).prev_sibling = Some(child);
        match prev {
            Some(p) => self.get_mut(p).next_sibling = Some(child),
            None => self.get_mut(parent).first_child = Some(child),
        }
        Ok(())
    }

    /// Insert `child` immediately after `sibling` under the same parent.
    pub fn insert_after(&mut self, sibling: NodeId, child: NodeId) -> Result<(), TreeError> {
        self.check_attachable(child, sibling)?;
        let parent = self
            .get(sibling)
            .parent
            .ok_or(TreeError::NoParent(sibling))?;
        let next = self.get(sibling).next_sibling;
        {
            let c = self.get_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = Some(sibling);
            c.next_sibling = next;
        }
        self.get_mut(sibling).next_sibling = Some(child);
        match next {
            Some(n) => self.get_mut(n).prev_sibling = Some(child),
            None => self.get_mut(parent).last_child = Some(child),
        }
        Ok(())
    }

    /// Detach `id` from its parent, keeping its subtree intact. The node
    /// may later be re-attached anywhere (subtree move).
    pub fn detach(&mut self, id: NodeId) -> Result<(), TreeError> {
        if !self.is_alive(id) {
            return Err(TreeError::DeadNode(id));
        }
        if id == self.root() {
            return Err(TreeError::RootImmutable);
        }
        let (parent, prev, next) = {
            let n = self.get(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        let Some(parent) = parent else {
            return Ok(()); // already detached
        };
        match prev {
            Some(p) => self.get_mut(p).next_sibling = next,
            None => self.get_mut(parent).first_child = next,
        }
        match next {
            Some(nx) => self.get_mut(nx).prev_sibling = prev,
            None => self.get_mut(parent).last_child = prev,
        }
        let n = self.get_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
        Ok(())
    }

    /// Delete the subtree rooted at `id`, retiring every id in it.
    /// Returns the number of nodes removed.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<usize, TreeError> {
        self.detach(id)?;
        let doomed: Vec<NodeId> = Preorder::from(self, id).collect();
        for d in &doomed {
            let n = &mut self.nodes[d.index()];
            n.alive = false;
            n.parent = None;
            n.first_child = None;
            n.last_child = None;
            n.prev_sibling = None;
            n.next_sibling = None;
        }
        self.alive -= doomed.len();
        Ok(doomed.len())
    }

    /// Iterator over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            tree: self,
            next: self.first_child(id),
        }
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Preorder (document-order) traversal of the whole tree, including the
    /// document root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder::from(self, self.root())
    }

    /// Preorder traversal of the subtree rooted at `id`.
    pub fn preorder_from(&self, id: NodeId) -> Preorder<'_> {
        Preorder::from(self, id)
    }

    /// Postorder traversal of the whole tree.
    pub fn postorder(&self) -> Postorder<'_> {
        Postorder::from(self, self.root())
    }

    /// Nesting depth: the root is at depth 0, its children at depth 1, …
    /// This is the ground truth the *Level Encoding* property checker
    /// compares labels against.
    pub fn depth(&self, id: NodeId) -> u32 {
        let mut d = 0;
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent(p);
        }
        d
    }

    /// Ground-truth ancestor test (strict: a node is not its own ancestor).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = self.parent(desc);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Ground-truth document-order comparison by comparing root paths.
    ///
    /// An ancestor precedes its descendants (preorder convention, as in the
    /// paper's pre-labelled figures).
    pub fn doc_cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let pa = self.root_path(a);
        let pb = self.root_path(b);
        // Compare child-index paths lexicographically; a prefix (ancestor)
        // sorts first.
        pa.cmp(&pb)
    }

    /// Child-index path from the root to `id` (root has the empty path).
    pub fn root_path(&self, id: NodeId) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            rev.push(self.child_index(cur));
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// 0-based position of `id` among its siblings (0 for a detached node
    /// or the root).
    pub fn child_index(&self, id: NodeId) -> u32 {
        let mut i = 0;
        let mut cur = self.prev_sibling(id);
        while let Some(p) = cur {
            i += 1;
            cur = self.prev_sibling(p);
        }
        i
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.preorder_from(id).count()
    }

    /// All live node ids in document order. Allocates; intended for tests
    /// and checkers, not hot paths.
    pub fn ids_in_doc_order(&self) -> Vec<NodeId> {
        self.preorder().collect()
    }

    /// The single element child of the document root, if present (the
    /// document element).
    pub fn document_element(&self) -> Option<NodeId> {
        self.children(self.root())
            .find(|&c| self.kind(c).is_element())
    }

    /// Concatenated text content of the subtree rooted at `id`, in document
    /// order (attribute values excluded, like XPath `string()` on elements).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.preorder_from(id) {
            if let NodeKind::Text { value } = self.kind(n) {
                out.push_str(value);
            }
        }
        out
    }

    /// Find the value of the attribute `name` on element `id`.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.children(id).find_map(|c| match self.kind(c) {
            NodeKind::Attribute { name: n, value } if n == name => Some(value.as_str()),
            _ => None,
        })
    }

    /// Exhaustively check the doubly-linked structural invariants. Used by
    /// tests and failure-injection suites; O(n).
    pub fn validate(&self) -> Result<(), TreeError> {
        let mut seen = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            seen += 1;
            let id = NodeId(i as u32);
            // parent/child linkage
            if let Some(fc) = n.first_child {
                if self.nodes[fc.index()].parent != Some(id) {
                    return Err(TreeError::Invariant(format!(
                        "first child of {id} does not point back"
                    )));
                }
                if self.nodes[fc.index()].prev_sibling.is_some() {
                    return Err(TreeError::Invariant(format!(
                        "first child of {id} has a prev sibling"
                    )));
                }
            }
            if let Some(lc) = n.last_child {
                if self.nodes[lc.index()].next_sibling.is_some() {
                    return Err(TreeError::Invariant(format!(
                        "last child of {id} has a next sibling"
                    )));
                }
            }
            if n.first_child.is_some() != n.last_child.is_some() {
                return Err(TreeError::Invariant(format!(
                    "{id} has mismatched first/last child"
                )));
            }
            // sibling chain symmetric
            if let Some(ns) = n.next_sibling {
                if self.nodes[ns.index()].prev_sibling != Some(id) {
                    return Err(TreeError::Invariant(format!(
                        "next sibling of {id} does not point back"
                    )));
                }
                if self.nodes[ns.index()].parent != n.parent {
                    return Err(TreeError::Invariant(format!(
                        "siblings of {id} disagree on parent"
                    )));
                }
            }
            // child chain reaches last_child
            let mut cur = n.first_child;
            let mut prev = None;
            while let Some(c) = cur {
                if !self.nodes[c.index()].alive {
                    return Err(TreeError::Invariant(format!("dead child under {id}")));
                }
                prev = cur;
                cur = self.nodes[c.index()].next_sibling;
            }
            if prev != n.last_child {
                return Err(TreeError::Invariant(format!(
                    "child chain of {id} does not end at last_child"
                )));
            }
        }
        if seen != self.alive {
            return Err(TreeError::Invariant(format!(
                "alive count {} != scanned {seen}",
                self.alive
            )));
        }
        Ok(())
    }
}

/// Iterator over the children of a node. See [`XmlTree::children`].
pub struct Children<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.next_sibling(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(t: &mut XmlTree, name: &str) -> NodeId {
        t.create(NodeKind::element(name))
    }

    #[test]
    fn new_tree_has_only_root() {
        let t = XmlTree::new();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.kind(t.root()), &NodeKind::Document);
        t.validate().unwrap();
    }

    #[test]
    fn append_and_order() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        let c = elem(&mut t, "c");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        t.append_child(a, c).unwrap();
        assert_eq!(t.children(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(t.ids_in_doc_order(), vec![r, a, b, c]);
        assert_eq!(t.doc_cmp(b, c), Ordering::Less);
        assert_eq!(t.doc_cmp(a, b), Ordering::Less, "ancestor first");
        assert_eq!(t.doc_cmp(c, c), Ordering::Equal);
        t.validate().unwrap();
    }

    #[test]
    fn prepend_insert_before_after() {
        let mut t = XmlTree::new();
        let r = t.root();
        let p = elem(&mut t, "p");
        t.append_child(r, p).unwrap();
        let b = elem(&mut t, "b");
        t.append_child(p, b).unwrap();
        let a = elem(&mut t, "a");
        t.prepend_child(p, a).unwrap();
        let c = elem(&mut t, "c");
        t.insert_after(b, c).unwrap();
        let ab = elem(&mut t, "ab");
        t.insert_before(b, ab).unwrap();
        let names: Vec<_> = t
            .children(p)
            .map(|n| t.kind(n).name().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "ab", "b", "c"]);
        assert_eq!(t.child_index(b), 2);
        t.validate().unwrap();
    }

    #[test]
    fn detach_and_reattach_moves_subtree() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        let c = elem(&mut t, "c");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        t.append_child(b, c).unwrap();
        t.detach(b).unwrap();
        assert_eq!(t.children(a).count(), 0);
        assert_eq!(t.parent(b), None);
        assert!(t.is_alive(c));
        t.append_child(r, b).unwrap();
        assert_eq!(t.ids_in_doc_order(), vec![r, a, b, c]);
        t.validate().unwrap();
    }

    #[test]
    fn remove_subtree_retires_ids() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        let c = elem(&mut t, "c");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        t.append_child(b, c).unwrap();
        let removed = t.remove_subtree(b).unwrap();
        assert_eq!(removed, 2);
        assert!(!t.is_alive(b));
        assert!(!t.is_alive(c));
        assert!(t.is_alive(a));
        assert_eq!(t.len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn root_is_immutable() {
        let mut t = XmlTree::new();
        let r = t.root();
        assert_eq!(t.detach(r), Err(TreeError::RootImmutable));
        assert_eq!(t.remove_subtree(r), Err(TreeError::RootImmutable));
        let a = elem(&mut t, "a");
        t.append_child(r, a).unwrap();
        assert_eq!(t.append_child(a, r), Err(TreeError::RootImmutable));
    }

    #[test]
    fn cycle_rejected() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        t.detach(a).unwrap();
        assert_eq!(t.append_child(b, a), Err(TreeError::WouldCycle(a)));
        assert_eq!(t.append_child(a, a), Err(TreeError::WouldCycle(a)));
    }

    #[test]
    fn double_attach_rejected() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        t.append_child(r, a).unwrap();
        assert_eq!(t.append_child(r, a), Err(TreeError::AlreadyAttached(a)));
    }

    #[test]
    fn insert_relative_to_detached_sibling_fails() {
        let mut t = XmlTree::new();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        assert_eq!(t.insert_before(a, b), Err(TreeError::NoParent(a)));
        assert_eq!(t.insert_after(a, b), Err(TreeError::NoParent(a)));
    }

    #[test]
    fn dead_node_operations_fail() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        t.append_child(r, a).unwrap();
        t.remove_subtree(a).unwrap();
        let b = elem(&mut t, "b");
        assert_eq!(t.append_child(a, b), Err(TreeError::DeadNode(a)));
        assert_eq!(t.detach(a), Err(TreeError::DeadNode(a)));
    }

    #[test]
    fn depth_and_ancestry() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        let c = elem(&mut t, "c");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        t.append_child(b, c).unwrap();
        assert_eq!(t.depth(r), 0);
        assert_eq!(t.depth(a), 1);
        assert_eq!(t.depth(c), 3);
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(r, c));
        assert!(!t.is_ancestor(c, a));
        assert!(!t.is_ancestor(a, a), "strict ancestry");
    }

    #[test]
    fn attribute_and_text_accessors() {
        let mut t = XmlTree::new();
        let r = t.root();
        let e = elem(&mut t, "title");
        t.append_child(r, e).unwrap();
        let at = t.create(NodeKind::attribute("genre", "Fantasy"));
        t.append_child(e, at).unwrap();
        let tx = t.create(NodeKind::text("Wayfarer"));
        t.append_child(e, tx).unwrap();
        assert_eq!(t.attribute(e, "genre"), Some("Fantasy"));
        assert_eq!(t.attribute(e, "missing"), None);
        assert_eq!(t.text_content(e), "Wayfarer");
    }

    #[test]
    fn doc_cmp_across_branches() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        t.append_child(r, a).unwrap();
        t.append_child(r, b).unwrap();
        let a1 = elem(&mut t, "a1");
        t.append_child(a, a1).unwrap();
        // a1 (deep in first branch) precedes b (second branch)
        assert_eq!(t.doc_cmp(a1, b), Ordering::Less);
        assert_eq!(t.doc_cmp(b, a1), Ordering::Greater);
    }

    #[test]
    fn subtree_size_counts_self() {
        let mut t = XmlTree::new();
        let r = t.root();
        let a = elem(&mut t, "a");
        let b = elem(&mut t, "b");
        t.append_child(r, a).unwrap();
        t.append_child(a, b).unwrap();
        assert_eq!(t.subtree_size(a), 2);
        assert_eq!(t.subtree_size(r), 3);
    }
}
