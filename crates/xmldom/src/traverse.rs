//! Tree traversals (§3.1.1 of the paper).
//!
//! Preorder visits a node before its children; parsing an XML document in
//! document order *is* a preorder traversal, so preorder rank is the
//! canonical document order. Postorder visits a node after its children.
//! Containment labelling schemes are built directly on these two ranks:
//! `u` is an ancestor of `v` iff `pre(u) < pre(v)` and `post(v) < post(u)`
//! (Dietz's observation, \[6\] in the paper).

use crate::node::NodeId;
use crate::tree::XmlTree;

/// Preorder (document-order) iterator over a subtree.
pub struct Preorder<'a> {
    tree: &'a XmlTree,
    start: NodeId,
    next: Option<NodeId>,
}

impl<'a> Preorder<'a> {
    /// Traverse the subtree rooted at `start` (inclusive).
    pub fn from(tree: &'a XmlTree, start: NodeId) -> Self {
        Preorder {
            tree,
            start,
            next: Some(start),
        }
    }
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // descend, else advance to next sibling, else climb until a sibling
        // exists — stopping at the subtree root.
        self.next = if let Some(c) = self.tree.first_child(cur) {
            Some(c)
        } else {
            let mut up = cur;
            loop {
                if up == self.start {
                    break None;
                }
                if let Some(s) = self.tree.next_sibling(up) {
                    break Some(s);
                }
                match self.tree.parent(up) {
                    Some(p) => up = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

/// Postorder iterator over a subtree.
pub struct Postorder<'a> {
    tree: &'a XmlTree,
    start: NodeId,
    next: Option<NodeId>,
}

impl<'a> Postorder<'a> {
    /// Traverse the subtree rooted at `start` (inclusive).
    pub fn from(tree: &'a XmlTree, start: NodeId) -> Self {
        // The first postorder node is the leftmost leaf.
        let mut first = start;
        while let Some(c) = tree.first_child(first) {
            first = c;
        }
        Postorder {
            tree,
            start,
            next: Some(first),
        }
    }
}

impl Iterator for Postorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = if cur == self.start {
            None
        } else if let Some(s) = self.tree.next_sibling(cur) {
            // descend to the leftmost leaf of the next sibling
            let mut d = s;
            while let Some(c) = self.tree.first_child(d) {
                d = c;
            }
            Some(d)
        } else {
            self.tree.parent(cur)
        };
        Some(cur)
    }
}

/// Assign preorder ranks (0-based) to every node in the subtree, in a
/// single streaming pass.
pub fn preorder_ranks(tree: &XmlTree) -> Vec<(NodeId, u64)> {
    tree.preorder()
        .enumerate()
        .map(|(i, id)| (id, i as u64))
        .collect()
}

/// Assign postorder ranks (0-based) to every node in the subtree.
pub fn postorder_ranks(tree: &XmlTree) -> Vec<(NodeId, u64)> {
    tree.postorder()
        .enumerate()
        .map(|(i, id)| (id, i as u64))
        .collect()
}

/// Ground-truth enumeration of the XPath `following` axis of `id`:
/// every node after `id` in document order that is not a descendant of `id`.
pub fn following(tree: &XmlTree, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut in_subtree: Vec<NodeId> = tree.preorder_from(id).collect();
    in_subtree.sort_unstable();
    let mut passed = false;
    for n in tree.preorder() {
        if n == id {
            passed = true;
            continue;
        }
        if passed && in_subtree.binary_search(&n).is_err() {
            out.push(n);
        }
    }
    out
}

/// Ground-truth enumeration of the XPath `preceding` axis of `id`:
/// every node before `id` in document order that is not an ancestor of `id`.
pub fn preceding(tree: &XmlTree, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    for n in tree.preorder() {
        if n == id {
            break;
        }
        if !tree.is_ancestor(n, id) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    /// Build the 10-node tree of the paper's Figure 1(b).
    fn fig1() -> (XmlTree, Vec<NodeId>) {
        let mut t = XmlTree::new();
        let book = t.create(NodeKind::element("book"));
        t.append_child(t.root(), book).unwrap();
        let title = t.create(NodeKind::element("title"));
        t.append_child(book, title).unwrap();
        let genre = t.create(NodeKind::attribute("genre", "Fantasy"));
        t.append_child(title, genre).unwrap();
        let author = t.create(NodeKind::element("author"));
        t.append_child(book, author).unwrap();
        let publisher = t.create(NodeKind::element("publisher"));
        t.append_child(book, publisher).unwrap();
        let editor = t.create(NodeKind::element("editor"));
        t.append_child(publisher, editor).unwrap();
        let name = t.create(NodeKind::element("name"));
        t.append_child(editor, name).unwrap();
        let address = t.create(NodeKind::element("address"));
        t.append_child(editor, address).unwrap();
        let edition = t.create(NodeKind::element("edition"));
        t.append_child(publisher, edition).unwrap();
        let year = t.create(NodeKind::attribute("year", "2004"));
        t.append_child(edition, year).unwrap();
        (
            t,
            vec![
                book, title, genre, author, publisher, editor, name, address, edition, year,
            ],
        )
    }

    #[test]
    fn figure1_pre_post_ranks() {
        // The paper's Figure 1(b) labels (pre, post), computed over the ten
        // document nodes (the document root excluded, as in the figure).
        let (t, nodes) = fig1();
        let expected_pre_post: &[(u64, u64)] = &[
            (0, 9), // book
            (1, 1), // title
            (2, 0), // genre
            (3, 2), // author
            (4, 8), // publisher
            (5, 5), // editor
            (6, 3), // name
            (7, 4), // address
            (8, 7), // edition
            (9, 6), // year
        ];
        let book = nodes[0];
        let pre: Vec<NodeId> = Preorder::from(&t, book).collect();
        let post: Vec<NodeId> = Postorder::from(&t, book).collect();
        for (i, &(ep, epost)) in expected_pre_post.iter().enumerate() {
            let node = nodes[i];
            let p = pre.iter().position(|&n| n == node).unwrap() as u64;
            let q = post.iter().position(|&n| n == node).unwrap() as u64;
            assert_eq!((p, q), (ep, epost), "node index {i}");
        }
    }

    #[test]
    fn preorder_matches_doc_cmp() {
        let (t, _) = fig1();
        let order = t.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(t.doc_cmp(w[0], w[1]), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn postorder_visits_parents_after_children() {
        let (t, _) = fig1();
        let post: Vec<NodeId> = t.postorder().collect();
        for (i, &n) in post.iter().enumerate() {
            if let Some(p) = t.parent(n) {
                let pi = post.iter().position(|&x| x == p).unwrap();
                assert!(pi > i, "parent must come after child in postorder");
            }
        }
    }

    #[test]
    fn dietz_containment_property() {
        // u ancestor of v ⟺ pre(u) < pre(v) ∧ post(v) < post(u)
        let (t, _) = fig1();
        let pre: std::collections::HashMap<_, _> = preorder_ranks(&t).into_iter().collect();
        let post: std::collections::HashMap<_, _> = postorder_ranks(&t).into_iter().collect();
        let all = t.ids_in_doc_order();
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                let by_rank = pre[&u] < pre[&v] && post[&v] < post[&u];
                assert_eq!(by_rank, t.is_ancestor(u, v), "{u:?} vs {v:?}");
            }
        }
    }

    #[test]
    fn following_and_preceding_partition() {
        // following(x) ∪ preceding(x) ∪ ancestors(x) ∪ descendants(x) ∪ {x}
        // = all nodes (XPath axis partition).
        let (t, nodes) = fig1();
        let all = t.ids_in_doc_order();
        for &x in &nodes {
            let f = following(&t, x);
            let p = preceding(&t, x);
            let mut count = f.len() + p.len() + 1; // self
            for &n in &all {
                if n != x && (t.is_ancestor(n, x) || t.is_ancestor(x, n)) {
                    count += 1;
                }
            }
            assert_eq!(count, all.len(), "axis partition for {x:?}");
        }
    }

    #[test]
    fn subtree_preorder_stays_in_subtree() {
        let (t, nodes) = fig1();
        let publisher = nodes[4];
        let sub: Vec<NodeId> = t.preorder_from(publisher).collect();
        assert_eq!(sub.len(), 6); // publisher, editor, name, address, edition, year
        for &n in &sub[1..] {
            assert!(t.is_ancestor(publisher, n));
        }
    }
}
