//! Robustness: the parser must never panic — arbitrary input either
//! parses or returns a positioned error; valid documents round-trip.

use proptest::prelude::*;
use xupd_xmldom::{parse, serialize_compact};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No input panics the parser.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// XML-ish soup (angle brackets, quotes, entities) never panics.
    #[test]
    fn xmlish_soup_never_panics(input in "[<>/=\"'&;a-z0-9 \\[\\]!?-]{0,200}") {
        let _ = parse(&input);
    }

    /// Anything that parses also serializes and re-parses to the same
    /// compact form (idempotent normal form).
    #[test]
    fn parse_is_idempotent_on_its_own_output(input in "[<>/=\"'&;a-z0-9 ]{0,200}") {
        if let Ok(tree) = parse(&input) {
            let out = serialize_compact(&tree);
            let again = parse(&out).expect("serializer output re-parses");
            prop_assert_eq!(serialize_compact(&again), out);
        }
    }
}
