//! Robustness: the parser must never panic — arbitrary input either
//! parses or returns a positioned error; valid documents round-trip.
//! Runs on the hermetic `xupd-testkit` harness; 256 cases per property,
//! panics are caught, shrunk and reported with the reproducing seed.

use xupd_testkit::prop::{any_strings, strings, Config};
use xupd_testkit::{prop_assert_eq, props};
use xupd_xmldom::{parse, serialize_compact};

props! {
    config = Config::with_cases(256);

    /// No input panics the parser.
    fn parser_never_panics(input in any_strings(0, 200)) {
        let _ = parse(&input);
    }

    /// XML-ish soup (angle brackets, quotes, entities) never panics.
    fn xmlish_soup_never_panics(input in strings("<>/=\"'&;abcdefghijklmnopqrstuvwxyz0123456789 []!?-", 0, 200)) {
        let _ = parse(&input);
    }

    /// Anything that parses also serializes and re-parses to the same
    /// compact form (idempotent normal form).
    fn parse_is_idempotent_on_its_own_output(input in strings("<>/=\"'&;abcdefghijklmnopqrstuvwxyz0123456789 ", 0, 200)) {
        if let Ok(tree) = parse(&input) {
            let out = serialize_compact(&tree);
            let again = parse(&out).expect("serializer output re-parses");
            prop_assert_eq!(serialize_compact(&again), out);
        }
    }
}
