//! # xupd-flux — a FLUX-style typed update DSL over mutation logs
//!
//! The paper's §3 surveys update-language proposals and singles out
//! FLUX-style statically checked updates as the desirable shape: say
//! *what* changes declaratively, reject unsound programs **before**
//! touching the document, and compile the rest to a certified batch.
//! This crate is that front end for the repo's [`MutationLog`] engine:
//!
//! ```text
//!   source ─lex/parse→ Vec<Stmt> ─check→ diagnostics (F001..F012)
//!          ─lower→ MutationLog ─analyze→ AnalyzedPlan
//!          ─apply_planned→ Document / Store
//! ```
//!
//! * [`lexer`] / [`parser`] — hand-rolled, span-carrying, panic-free
//!   on arbitrary byte soup;
//! * [`check`] — the static pass: shape errors (F005), root mutations
//!   (F009), write-after-consumed (F006), double text writes (F007),
//!   move-into-own-subtree (F008), all reported with source spans;
//! * [`lower`] — snapshot (XQuery-Update-style) semantics: every path
//!   resolves against the *original* tree, the whole program becomes
//!   one atomic log;
//! * [`DocumentUpdate`] / [`StoreUpdate`] — `doc.update("...")` /
//!   `store.update(id, "...")` extension traits riding the unified
//!   [`ApplyOptions`] apply path.
//!
//! Statically rejected programs are *also* dynamically rejected: every
//! check in [`check`] has a lowering-, validator- or apply-time
//! counterpart, so skipping the checker can never smuggle an unsound
//! edit through (`compile_unchecked` exists to prove exactly that in
//! the property suite).

pub mod ast;
pub mod check;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod paths;

use xupd_framework::analysis::{self, AnalyzedPlan, ApplyOptions};
use xupd_framework::document::{Document, DocumentError};
use xupd_framework::driver::DriveStats;
use xupd_framework::mutations::MutationLog;
use xupd_labelcore::LabelingScheme;
use xupd_store::{Store, StoreError};
use xupd_xmldom::XmlTree;

pub use ast::{InsertPos, PathArg, Stmt, TreeArg};
pub use diag::{Diagnostic, Span};

/// A parsed flux program: the source text plus its statement list.
/// Parsing alone only guarantees syntax (F001–F004); call
/// [`FluxProgram::check`] for the static pass or go straight to
/// [`FluxProgram::compile`], which runs it.
#[derive(Debug, Clone)]
pub struct FluxProgram {
    src: String,
    stmts: Vec<Stmt>,
}

/// A compiled update: the validated [`MutationLog`] plus its eager
/// [`AnalyzedPlan`], ready for [`Document::apply_planned`] (no
/// re-analysis at apply time).
#[derive(Debug, Clone)]
pub struct CompiledUpdate {
    /// The mutation batch — byte-identical to what a careful caller
    /// would hand-build against the same tree.
    pub log: MutationLog,
    /// The analyzer's certificate bundle over `log`.
    pub plan: AnalyzedPlan,
}

impl FluxProgram {
    /// Parse `src`. Syntax and path/tree-literal errors (F001–F004)
    /// are fatal here; the deeper static checks run in
    /// [`FluxProgram::check`].
    pub fn parse(src: &str) -> Result<FluxProgram, Vec<Diagnostic>> {
        match parser::parse(src) {
            Ok(stmts) => Ok(FluxProgram {
                src: src.to_string(),
                stmts,
            }),
            Err(d) => Err(vec![d]),
        }
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The parsed statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Run the static checking pass; empty means clean.
    pub fn check(&self) -> Vec<Diagnostic> {
        check::check(&self.stmts)
    }

    /// Compile against `tree`: static check, snapshot lowering
    /// (F010–F012 strict-match and kind errors), then validation +
    /// analysis of the produced log (a rejection there — impossible
    /// for logs this lowering emits, kept as a safety net — is F020).
    pub fn compile(&self, tree: &XmlTree) -> Result<CompiledUpdate, Vec<Diagnostic>> {
        let diags = self.check();
        if !diags.is_empty() {
            return Err(diags);
        }
        let log = lower::lower(&self.stmts, tree).map_err(|d| vec![d])?;
        let plan = analysis::analyze(&log, tree).map_err(|e| {
            vec![Diagnostic::new(
                "F020",
                Span::at(&self.src, 0, 0),
                format!("compiled log rejected by validator: {e}"),
            )]
        })?;
        Ok(CompiledUpdate { log, plan })
    }

    /// Lower **without** the static pass — only syntax and the
    /// lowering-time guards stand between the program and a log. The
    /// no-false-accepts property suite uses this to prove every
    /// statically rejected program also fails dynamically (here, in
    /// the validator, or at apply time). Not part of the supported
    /// apply path.
    pub fn compile_unchecked(&self, tree: &XmlTree) -> Result<MutationLog, Diagnostic> {
        lower::lower(&self.stmts, tree)
    }
}

/// One-call static service for tooling (`xupd … flux-check`): parse +
/// check, returning every diagnostic found. Parse errors are fatal to
/// the deeper pass, so they come back alone.
pub fn check_source(src: &str) -> Vec<Diagnostic> {
    match FluxProgram::parse(src) {
        Ok(p) => p.check(),
        Err(ds) => ds,
    }
}

/// Everything `update` can report: static/compile diagnostics or a
/// document/store failure at apply time.
#[derive(Debug)]
pub enum FluxError {
    /// Compilation rejected the program; at least one diagnostic.
    Static(Vec<Diagnostic>),
    /// The document apply path failed.
    Document(DocumentError),
    /// The store apply path failed.
    Store(StoreError),
}

impl std::fmt::Display for FluxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FluxError::Static(ds) => {
                let mut first = true;
                for d in ds {
                    if !first {
                        writeln!(f)?;
                    }
                    first = false;
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            FluxError::Document(e) => write!(f, "{e}"),
            FluxError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FluxError {}

impl From<Vec<Diagnostic>> for FluxError {
    fn from(ds: Vec<Diagnostic>) -> FluxError {
        FluxError::Static(ds)
    }
}

impl From<DocumentError> for FluxError {
    fn from(e: DocumentError) -> FluxError {
        FluxError::Document(e)
    }
}

impl From<StoreError> for FluxError {
    fn from(e: StoreError) -> FluxError {
        FluxError::Store(e)
    }
}

/// `doc.update("insert <x/> into /r;")` — compile a flux program
/// against the document's current tree and apply it atomically.
/// Defined as an extension trait because `Document` lives below this
/// crate in the dependency order.
pub trait DocumentUpdate {
    /// Compile + apply under [`ApplyOptions::default`] (analyzed
    /// order).
    fn update(&mut self, src: &str) -> Result<DriveStats, FluxError>;
    /// Compile + apply under explicit options.
    fn update_opts(&mut self, src: &str, opts: ApplyOptions) -> Result<DriveStats, FluxError>;
}

impl<S: LabelingScheme + Clone + 'static> DocumentUpdate for Document<S> {
    fn update(&mut self, src: &str) -> Result<DriveStats, FluxError> {
        self.update_opts(src, ApplyOptions::default())
    }

    fn update_opts(&mut self, src: &str, opts: ApplyOptions) -> Result<DriveStats, FluxError> {
        let program = FluxProgram::parse(src)?;
        let compiled = program.compile(self.tree())?;
        self.apply_planned(&compiled.log, &compiled.plan, opts)
            .map_err(|e| FluxError::Document(DocumentError::Tree(e)))
    }
}

/// `store.update(doc, "…")` — compile against the target document's
/// tree **under its write lock** (via [`Store::update_with`]) so the
/// snapshot the program sees is exactly the tree it mutates.
pub trait StoreUpdate {
    /// Compile + apply under [`ApplyOptions::default`].
    fn update(&self, doc: u32, src: &str) -> Result<DriveStats, FluxError>;
    /// Compile + apply under explicit options.
    fn update_opts(&self, doc: u32, src: &str, opts: ApplyOptions)
        -> Result<DriveStats, FluxError>;
}

impl<S: LabelingScheme + Clone + 'static> StoreUpdate for Store<S> {
    fn update(&self, doc: u32, src: &str) -> Result<DriveStats, FluxError> {
        self.update_opts(doc, src, ApplyOptions::default())
    }

    fn update_opts(
        &self,
        doc: u32,
        src: &str,
        opts: ApplyOptions,
    ) -> Result<DriveStats, FluxError> {
        let program = FluxProgram::parse(src)?;
        self.update_with(doc, opts, |tree| {
            let c = program.compile(tree)?;
            Ok((c.log, c.plan))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::qed::Qed;

    fn doc() -> Document<Qed> {
        let tree = xupd_xmldom::parse("<r><a>one</a><b/></r>").unwrap();
        Document::encode(Qed::new(), &tree).unwrap()
    }

    #[test]
    fn document_update_round_trip() {
        let mut d = doc();
        d.update("insert <c n=\"1\">two</c> into /r; set /r/a/text() to \"ONE\";")
            .unwrap();
        let out = xupd_xmldom::serialize_compact(d.tree());
        assert!(out.contains("<c n=\"1\">two</c>"), "{out}");
        assert!(out.contains("<a>ONE</a>"), "{out}");
        assert!(d.verify().unwrap().is_sound());
    }

    #[test]
    fn static_rejection_is_reported_not_applied() {
        let mut d = doc();
        let before = xupd_xmldom::serialize_compact(d.tree());
        let err = d.update("delete /r/a; set /r/a/text() to \"x\";");
        match err {
            Err(FluxError::Static(ds)) => assert_eq!(ds[0].code, "F006"),
            other => panic!("expected static rejection, got {other:?}"),
        }
        assert_eq!(before, xupd_xmldom::serialize_compact(d.tree()));
    }

    #[test]
    fn check_source_surfaces_parse_errors() {
        let ds = check_source("insert <p> into /r;");
        assert_eq!(ds[0].code, "F003");
        assert!(check_source("delete /r/b;").is_empty());
    }

    #[test]
    fn compiled_update_matches_hand_built_source_of_truth() {
        let d = doc();
        let p = FluxProgram::parse("delete /r/b;").unwrap();
        let c = p.compile(d.tree()).unwrap();
        assert_eq!(c.log.len(), 1);
        assert_eq!(c.plan.len(), c.log.len());
    }

    #[test]
    fn flux_error_display_lists_all_diagnostics() {
        let ds = vec![
            Diagnostic::new("F005", Span::at("x", 0, 1), "one"),
            Diagnostic::new("F007", Span::at("x", 0, 1), "two"),
        ];
        let msg = format!("{}", FluxError::Static(ds));
        assert!(msg.contains("F005") && msg.contains("F007"), "{msg}");
        assert_eq!(msg.lines().count(), 2);
    }
}
