//! Lowering: a checked flux program + a tree snapshot → a
//! [`MutationLog`].
//!
//! The DSL has **snapshot semantics** (as in XQuery Update / FLUX):
//! every path resolves against the tree as it was *before* the
//! program, statements never observe earlier statements' effects, and
//! the whole program becomes one atomic log. That keeps lowering a
//! pure function of `(program, tree)` and makes the static checker's
//! literal-prefix reasoning sound.
//!
//! **Strict match**: a direct statement target that resolves to the
//! empty set is a lowering error (F010) — silently doing nothing hides
//! typos, the classic argument for typed updates. Only `for` headers
//! may match zero nodes (iteration over an empty set is a no-op).
//!
//! Targets of `delete` / `replace` / `move` run through the covering
//! filter: when a match is a descendant of another match, the ancestor
//! subsumes it (deleting a subtree deletes its descendants), so only
//! subtree roots lower into mutations — nested matches never produce
//! self-conflicting logs.

use crate::ast::{InsertPos, PathArg, Stmt, TreeArg};
use crate::diag::Diagnostic;
use crate::paths::Resolver;
use xupd_framework::{LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_xmldom::{NodeId, XmlTree};

/// Lower `stmts` against `tree`, or report the first lowering error
/// (F010 no match, F011 target kind, F012 ambiguous destination).
pub fn lower(stmts: &[Stmt], tree: &XmlTree) -> Result<MutationLog, Diagnostic> {
    let resolver = Resolver::new(tree);
    let mut lo = Lowerer {
        tree,
        resolver,
        next_id: 0,
        log: MutationLog::new(),
    };
    lo.block(stmts, tree.root())?;
    Ok(lo.log)
}

struct Lowerer<'t> {
    tree: &'t XmlTree,
    resolver: Resolver<'t>,
    next_id: u32,
    log: MutationLog,
}

impl Lowerer<'_> {
    fn fresh(&mut self) -> LogId {
        let id = LogId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Resolve a path from `ctx` (used when relative) or the root.
    fn resolve(&self, path: &PathArg, ctx: NodeId) -> Vec<NodeId> {
        let start = if path.relative { ctx } else { self.tree.root() };
        self.resolver.resolve(&path.expr, start)
    }

    /// Resolve a direct statement target: strict match (F010 on ∅).
    fn resolve_strict(&self, path: &PathArg, ctx: NodeId) -> Result<Vec<NodeId>, Diagnostic> {
        let nodes = self.resolve(path, ctx);
        if nodes.is_empty() {
            return Err(Diagnostic::new(
                "F010",
                path.span,
                format!("path {:?} matched no node", path.raw),
            ));
        }
        Ok(nodes)
    }

    /// Reject targets no statement may touch: the document root and
    /// attribute nodes (F011). `what` names the statement for the
    /// message.
    fn guard_target(
        &self,
        node: NodeId,
        path: &PathArg,
        what: &str,
    ) -> Result<(), Diagnostic> {
        if node == self.tree.root() {
            return Err(Diagnostic::new(
                "F011",
                path.span,
                format!("cannot {what} the document root"),
            ));
        }
        if self.tree.kind(node).is_attribute() {
            return Err(Diagnostic::new(
                "F011",
                path.span,
                format!("cannot {what} an attribute node"),
            ));
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt], ctx: NodeId) -> Result<(), Diagnostic> {
        for stmt in stmts {
            self.stmt(stmt, ctx)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, ctx: NodeId) -> Result<(), Diagnostic> {
        match stmt {
            Stmt::Insert {
                tree, pos, path, ..
            } => {
                let targets = self.resolve_strict(path, ctx)?;
                for t in targets {
                    let place = self.anchor_place(*pos, t, path, "insert")?;
                    self.emit_fragment(tree, place)?;
                }
                Ok(())
            }
            Stmt::Delete { path, .. } => {
                let targets = self.resolve_strict(path, ctx)?;
                for t in self.resolver.covering(&targets) {
                    self.guard_target(t, path, "delete")?;
                    self.log.push(Mutation::Delete {
                        target: NodeRef::Node(t),
                    });
                }
                Ok(())
            }
            Stmt::Replace { path, tree, .. } => {
                let targets = self.resolve_strict(path, ctx)?;
                let froot = self.fragment_root(tree)?;
                for t in self.resolver.covering(&targets) {
                    self.guard_target(t, path, "replace")?;
                    let id = self.fresh();
                    let name = tree.tree.kind(froot).name().unwrap_or("").to_string();
                    self.log.push(Mutation::Replace {
                        target: NodeRef::Node(t),
                        id,
                        name,
                    });
                    self.emit_children(&tree.tree, froot, id)?;
                }
                Ok(())
            }
            Stmt::Rename {
                path, name, ..
            } => {
                let targets = self.resolve_strict(path, ctx)?;
                for t in targets {
                    self.guard_target(t, path, "rename")?;
                    if !self.tree.kind(t).is_element() {
                        return Err(Diagnostic::new(
                            "F011",
                            path.span,
                            format!("rename target {:?} is not an element", path.raw),
                        ));
                    }
                    // A fresh element takes the old node's position, the
                    // children re-parent under it, the old node goes.
                    let id = self.fresh();
                    self.log.push(Mutation::CreateElement {
                        id,
                        name: name.clone(),
                        place: Place::After(NodeRef::Node(t)),
                    });
                    for c in self.tree.children(t) {
                        self.log.push(Mutation::MoveSubtree {
                            target: NodeRef::Node(c),
                            place: Place::LastChildOf(NodeRef::New(id)),
                        });
                    }
                    self.log.push(Mutation::Delete {
                        target: NodeRef::Node(t),
                    });
                }
                Ok(())
            }
            Stmt::Move {
                path, pos, dest, ..
            } => {
                let sources = self.resolve_strict(path, ctx)?;
                let dests = self.resolve_strict(dest, ctx)?;
                if dests.len() > 1 {
                    return Err(Diagnostic::new(
                        "F012",
                        dest.span,
                        format!(
                            "move destination {:?} is ambiguous ({} matches)",
                            dest.raw,
                            dests.len()
                        ),
                    ));
                }
                let place = self.anchor_place(*pos, dests[0], dest, "move")?;
                let mut kept = self.resolver.covering(&sources);
                // Repeated first-into / after inserts at one anchor
                // stack in reverse, so emit sources back-to-front to
                // preserve their document order.
                if matches!(pos, InsertPos::FirstInto | InsertPos::After) {
                    kept.reverse();
                }
                for s in kept {
                    self.guard_target(s, path, "move")?;
                    self.log.push(Mutation::MoveSubtree {
                        target: NodeRef::Node(s),
                        place,
                    });
                }
                Ok(())
            }
            Stmt::Set { path, text, .. } => {
                let targets = self.resolve_strict(path, ctx)?;
                for t in targets {
                    if !self.tree.kind(t).is_text() {
                        return Err(Diagnostic::new(
                            "F011",
                            path.span,
                            format!("set target {:?} is not a text node", path.raw),
                        ));
                    }
                    self.log.push(Mutation::SetText {
                        target: NodeRef::Node(t),
                        text: text.clone(),
                    });
                }
                Ok(())
            }
            Stmt::For { path, body, .. } => {
                // Iteration over the empty set is a no-op, not an error.
                for t in self.resolve(path, ctx) {
                    self.block(body, t)?;
                }
                Ok(())
            }
        }
    }

    /// The landing [`Place`] for an insert/move at `target`, with the
    /// anchor-kind guards: child positions need an element (or the
    /// root) anchor, sibling positions need a non-root, non-attribute
    /// anchor.
    fn anchor_place(
        &self,
        pos: InsertPos,
        target: NodeId,
        path: &PathArg,
        what: &str,
    ) -> Result<Place, Diagnostic> {
        let anchor = NodeRef::Node(target);
        match pos {
            InsertPos::Into | InsertPos::FirstInto => {
                let kind = self.tree.kind(target);
                if !kind.is_element() && target != self.tree.root() {
                    return Err(Diagnostic::new(
                        "F011",
                        path.span,
                        format!(
                            "{what} destination {:?} cannot hold children",
                            path.raw
                        ),
                    ));
                }
                Ok(if pos == InsertPos::Into {
                    Place::LastChildOf(anchor)
                } else {
                    Place::FirstChildOf(anchor)
                })
            }
            InsertPos::Before | InsertPos::After => {
                self.guard_target(target, path, &format!("{what} relative to"))?;
                Ok(if pos == InsertPos::Before {
                    Place::Before(anchor)
                } else {
                    Place::After(anchor)
                })
            }
        }
    }

    /// The fragment's root element (its parse already guaranteed one).
    fn fragment_root(&self, tree: &TreeArg) -> Result<NodeId, Diagnostic> {
        tree.tree.document_element().ok_or_else(|| {
            Diagnostic::new("F003", tree.span, "tree literal has no root element")
        })
    }

    /// Emit the whole fragment at `place`: its root element, then every
    /// descendant in preorder under log-id parents.
    fn emit_fragment(&mut self, tree: &TreeArg, place: Place) -> Result<LogId, Diagnostic> {
        let froot = self.fragment_root(tree)?;
        let id = self.fresh();
        let name = tree.tree.kind(froot).name().unwrap_or("").to_string();
        self.log.push(Mutation::CreateElement { id, name, place });
        self.emit_children(&tree.tree, froot, id)?;
        Ok(id)
    }

    /// Emit `parent`'s fragment subtree (excluding `parent` itself)
    /// under the already-created log node `under`.
    fn emit_children(
        &mut self,
        frag: &XmlTree,
        parent: NodeId,
        under: LogId,
    ) -> Result<(), Diagnostic> {
        let children: Vec<NodeId> = frag.children(parent).collect();
        for c in children {
            let place = Place::LastChildOf(NodeRef::New(under));
            let kind = frag.kind(c).clone();
            if kind.is_element() {
                let id = self.fresh();
                let name = kind.name().unwrap_or("").to_string();
                self.log.push(Mutation::CreateElement { id, name, place });
                self.emit_children(frag, c, id)?;
            } else {
                let id = self.fresh();
                self.log.push(Mutation::CreateNode { id, kind, place });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sample() -> XmlTree {
        match xupd_xmldom::parse(
            r#"<r><s id="1"><x>one</x></s><s id="2"/><t><x>two</x></t></r>"#,
        ) {
            Ok(t) => t,
            Err(e) => panic!("sample parse: {e}"),
        }
    }

    fn lower_src(tree: &XmlTree, src: &str) -> Result<MutationLog, Diagnostic> {
        let stmts = match parse(src) {
            Ok(s) => s,
            Err(d) => panic!("parse failed on {src:?}: {d}"),
        };
        lower(&stmts, tree)
    }

    fn ok(tree: &XmlTree, src: &str) -> MutationLog {
        match lower_src(tree, src) {
            Ok(log) => log,
            Err(d) => panic!("lowering failed on {src:?}: {d}"),
        }
    }

    #[test]
    fn insert_lowers_fragment_walk() {
        let t = sample();
        let log = ok(&t, "insert <m><n>v</n></m> into /r/t");
        let ops: Vec<&Mutation> = log.iter().collect();
        assert_eq!(ops.len(), 3);
        assert!(matches!(
            ops[0],
            Mutation::CreateElement { id: LogId(0), .. }
        ));
        assert!(matches!(
            ops[1],
            Mutation::CreateElement {
                id: LogId(1),
                place: Place::LastChildOf(NodeRef::New(LogId(0))),
                ..
            }
        ));
        assert!(matches!(
            ops[2],
            Mutation::CreateNode {
                place: Place::LastChildOf(NodeRef::New(LogId(1))),
                ..
            }
        ));
    }

    #[test]
    fn multi_target_insert_repeats_fragment() {
        let t = sample();
        let log = ok(&t, "insert <m/> into /r/s");
        assert_eq!(log.len(), 2, "one create per target");
    }

    #[test]
    fn delete_applies_covering_filter() {
        let t = sample();
        let log = ok(&t, "delete //x");
        assert_eq!(log.len(), 2);
        let nested = ok(&t, "delete /r/s[1]; delete //*");
        // //* covers everything under r: only r survives the filter,
        // plus the earlier statement's delete.
        assert_eq!(nested.len(), 2);
    }

    #[test]
    fn rename_preserves_children() {
        let t = sample();
        let log = ok(&t, "rename /r/s[1] to q");
        let ops: Vec<&Mutation> = log.iter().collect();
        // create + 2 child moves (attribute node + x element) + delete
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], Mutation::CreateElement { .. }));
        assert!(matches!(ops[1], Mutation::MoveSubtree { .. }));
        assert!(matches!(ops[2], Mutation::MoveSubtree { .. }));
        assert!(matches!(ops[3], Mutation::Delete { .. }));
    }

    #[test]
    fn strict_match_rejects_empty_targets() {
        let t = sample();
        let d = lower_src(&t, "delete /r/nope").unwrap_err();
        assert_eq!(d.code, "F010");
        // ...but a for over nothing is fine.
        assert!(ok(&t, "for /r/nope do delete . end").is_empty());
    }

    #[test]
    fn kind_guards_reject_bad_targets() {
        let t = sample();
        assert_eq!(lower_src(&t, "set /r/t to \"x\"").unwrap_err().code, "F011");
        assert_eq!(
            lower_src(&t, "insert <m/> into /r/s/x/text()")
                .unwrap_err()
                .code,
            "F011"
        );
        // Lowering re-checks what the static pass catches (F009/F005),
        // so compile_unchecked can never emit a root or attribute edit.
        assert_eq!(lower_src(&t, "delete /.").unwrap_err().code, "F011");
        assert_eq!(
            lower_src(&t, "delete /r/s[1]/@id").unwrap_err().code,
            "F011"
        );
    }

    #[test]
    fn ambiguous_move_destination_is_f012() {
        let t = sample();
        assert_eq!(
            lower_src(&t, "move /r/t into /r/s").unwrap_err().code,
            "F012"
        );
    }

    #[test]
    fn move_after_emits_sources_in_reverse() {
        let t = sample();
        let log = ok(&t, "move /r/s after /r/t");
        let ops: Vec<&Mutation> = log.iter().collect();
        assert_eq!(ops.len(), 2);
        // Reverse emission: s[2] first, then s[1], so the final sibling
        // order stays s[1], s[2].
        let (first, second) = match (ops[0], ops[1]) {
            (
                Mutation::MoveSubtree {
                    target: NodeRef::Node(a),
                    ..
                },
                Mutation::MoveSubtree {
                    target: NodeRef::Node(b),
                    ..
                },
            ) => (*a, *b),
            other => panic!("expected two moves, got {other:?}"),
        };
        assert!(t.doc_cmp(second, first) == std::cmp::Ordering::Less);
    }

    #[test]
    fn for_iterates_in_doc_order() {
        let t = sample();
        let log = ok(&t, "for /r/s do insert <m/> into . end");
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn strict_match_applies_per_iteration() {
        let t = sample();
        // s[2] has no x child, so the body's strict target fails there.
        let d = lower_src(&t, "for /r/s do set ./x/text() to \"v\" end").unwrap_err();
        assert_eq!(d.code, "F010");
        // Scoped to the s that has an x, it lowers.
        let log = ok(&t, "for /r/s[1] do set ./x/text() to \"v\" end");
        assert_eq!(log.len(), 1);
    }
}
