//! XPath resolution directly over an [`XmlTree`] — the lowering-time
//! twin of the encoded-document evaluator in `xupd_encoding::xpath`.
//!
//! Lowering happens *before* any labelling or encoding exists (a flux
//! program compiles against the bare tree), so the encoded-document
//! evaluator cannot be used. This walker implements the same step
//! semantics — same axes, node tests, predicate handling, document
//! order and duplicate elimination — over tree links plus a preorder
//! rank/extent table built once per [`Resolver`]. The differential
//! test in `tests/flux_differential.rs` pins walker results against
//! `XPathExpr::evaluate` on an encoded twin of the same document.

use xupd_encoding::XPathExpr;
use xupd_xmldom::{NodeId, XmlTree};

// The Step/Axis/NodeTest/Pred vocabulary is re-exported by
// xupd_encoding's xpath module.
use xupd_encoding::xpath::{Axis, NodeTest, Pred};

/// Preorder rank/extent tables over one tree snapshot, shared by every
/// path resolution of a compile.
pub struct Resolver<'t> {
    tree: &'t XmlTree,
    /// Live node ids in document order.
    order: Vec<NodeId>,
    /// `rank[node.index()]` = position in `order` (usize::MAX = dead).
    rank: Vec<usize>,
    /// `extent[node.index()]` = one past the last rank of the node's
    /// subtree (half-open preorder interval).
    extent: Vec<usize>,
}

impl<'t> Resolver<'t> {
    /// Build the rank/extent tables for `tree` (O(n)).
    pub fn new(tree: &'t XmlTree) -> Resolver<'t> {
        let order = tree.ids_in_doc_order();
        let bound = tree.id_bound();
        let mut rank = vec![usize::MAX; bound];
        for (r, &id) in order.iter().enumerate() {
            rank[id.index()] = r;
        }
        // Subtree extents from one reverse doc-order sweep: when a node
        // is visited, all its descendants (which follow it in preorder)
        // already carry their extents, so its own extent is its last
        // child's — or rank+1 for a leaf.
        let mut extent = vec![0usize; bound];
        for &id in order.iter().rev() {
            let i = id.index();
            extent[i] = match tree.children(id).last() {
                Some(last) => extent[last.index()],
                None => rank[i] + 1,
            };
        }
        Resolver {
            tree,
            order,
            rank,
            extent,
        }
    }

    /// The tree this resolver indexes.
    pub fn tree(&self) -> &'t XmlTree {
        self.tree
    }

    fn rank_of(&self, id: NodeId) -> usize {
        self.rank.get(id.index()).copied().unwrap_or(usize::MAX)
    }

    fn extent_of(&self, id: NodeId) -> usize {
        self.extent.get(id.index()).copied().unwrap_or(0)
    }

    /// Evaluate `expr`'s steps from `start` (the document root for
    /// absolute paths, the `for` context node for relative ones).
    /// Results are in document order without duplicates — the same
    /// contract as `XPathExpr::evaluate`.
    pub fn resolve(&self, expr: &XPathExpr, start: NodeId) -> Vec<NodeId> {
        let mut context = vec![start];
        let mut scratch: Vec<NodeId> = Vec::new();
        for step in expr.steps() {
            let mut next: Vec<NodeId> = Vec::new();
            let mut ordered = true;
            for &ctx in &context {
                scratch.clear();
                self.axis_nodes(ctx, step.axis, &mut scratch);
                scratch.retain(|&n| self.test_matches(n, step.axis, &step.test));
                for pred in &step.preds {
                    match pred {
                        Pred::Position(k) => {
                            let kept = k.checked_sub(1).and_then(|i| scratch.get(i)).copied();
                            scratch.clear();
                            scratch.extend(kept);
                        }
                        Pred::AttrEq(name, value) => {
                            scratch.retain(|&n| {
                                self.tree.attribute(n, name) == Some(value.as_str())
                            });
                        }
                    }
                }
                for &c in &scratch {
                    if ordered {
                        if let Some(&last) = next.last() {
                            if self.rank_of(c) <= self.rank_of(last) {
                                ordered = false;
                            }
                        }
                    }
                    next.push(c);
                }
            }
            if !ordered {
                next.sort_unstable_by_key(|&n| self.rank_of(n));
                next.dedup();
            }
            context = next;
        }
        context
    }

    /// All nodes on `axis` from `ctx`, in the axis's natural order
    /// (document order for every axis the parser produces, ancestors
    /// root-first — mirroring the encoded evaluator).
    fn axis_nodes(&self, ctx: NodeId, axis: Axis, out: &mut Vec<NodeId>) {
        let tree = self.tree;
        match axis {
            Axis::Child => out.extend(tree.children(ctx)),
            Axis::Descendant => {
                let (r, e) = (self.rank_of(ctx), self.extent_of(ctx));
                if r != usize::MAX {
                    out.extend_from_slice(&self.order[r + 1..e]);
                }
            }
            Axis::DescendantOrSelf => {
                let (r, e) = (self.rank_of(ctx), self.extent_of(ctx));
                if r != usize::MAX {
                    out.extend_from_slice(&self.order[r..e]);
                }
            }
            Axis::Parent => out.extend(tree.parent(ctx)),
            Axis::Ancestor => {
                let mut cur = tree.parent(ctx);
                while let Some(p) = cur {
                    out.push(p);
                    cur = tree.parent(p);
                }
                out.reverse();
            }
            Axis::Following => {
                let e = self.extent_of(ctx);
                if e <= self.order.len() {
                    out.extend_from_slice(&self.order[e..]);
                }
            }
            Axis::Preceding => {
                let r = self.rank_of(ctx);
                if r != usize::MAX {
                    out.extend(
                        self.order[..r]
                            .iter()
                            .copied()
                            .filter(|&j| self.extent_of(j) <= r),
                    );
                }
            }
            Axis::FollowingSibling => {
                let mut cur = tree.next_sibling(ctx);
                while let Some(s) = cur {
                    out.push(s);
                    cur = tree.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = tree.prev_sibling(ctx);
                while let Some(s) = cur {
                    out.push(s);
                    cur = tree.prev_sibling(s);
                }
                out.reverse();
            }
            Axis::Attribute => {
                out.extend(tree.children(ctx).filter(|&c| tree.kind(c).is_attribute()));
            }
            Axis::SelfAxis => out.push(ctx),
        }
    }

    fn test_matches(&self, id: NodeId, axis: Axis, test: &NodeTest) -> bool {
        let kind = self.tree.kind(id);
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => kind.is_text(),
            NodeTest::Any => {
                if axis == Axis::Attribute {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                }
            }
            NodeTest::Name(name) => {
                if axis == Axis::Attribute {
                    kind.is_attribute() && kind.name() == Some(name)
                } else {
                    kind.is_element() && kind.name() == Some(name)
                }
            }
        }
    }

    /// Drop every node that lies inside the subtree of an earlier node
    /// in `nodes` (which must be in document order) — the covering
    /// filter `delete`/`replace`/`move` sources use so nested matches
    /// never lower into self-conflicting mutations.
    pub fn covering(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut kept = Vec::with_capacity(nodes.len());
        let mut max_end = 0usize;
        for &n in nodes {
            let r = self.rank_of(n);
            if r == usize::MAX {
                continue;
            }
            if r >= max_end {
                kept.push(n);
                max_end = self.extent_of(n);
            } else {
                // Inside an earlier kept subtree: extents nest, so any
                // rank below max_end is covered.
                max_end = max_end.max(self.extent_of(n));
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_encoding::parse_xpath;

    fn sample() -> XmlTree {
        // <r><s id="1"><x>one</x></s><s id="2"/><t><x>two</x></t></r>
        match xupd_xmldom::parse(
            r#"<r><s id="1"><x>one</x></s><s id="2"/><t><x>two</x></t></r>"#,
        ) {
            Ok(t) => t,
            Err(e) => panic!("sample parse: {e}"),
        }
    }

    fn resolve(tree: &XmlTree, path: &str) -> Vec<NodeId> {
        let r = Resolver::new(tree);
        let expr = parse_xpath(path).unwrap();
        r.resolve(&expr, tree.root())
    }

    fn names(tree: &XmlTree, ids: &[NodeId]) -> Vec<String> {
        ids.iter()
            .map(|&i| {
                tree.kind(i)
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{:?}", tree.kind(i)))
            })
            .collect()
    }

    #[test]
    fn child_and_descendant_steps() {
        let t = sample();
        assert_eq!(names(&t, &resolve(&t, "/r/s")), ["s", "s"]);
        assert_eq!(names(&t, &resolve(&t, "//x")), ["x", "x"]);
        assert_eq!(resolve(&t, "/r/s/x").len(), 1);
        assert!(resolve(&t, "/r/missing").is_empty());
    }

    #[test]
    fn positional_and_attribute_predicates() {
        let t = sample();
        assert_eq!(resolve(&t, "/r/s[2]").len(), 1);
        assert_eq!(resolve(&t, "/r/s[3]").len(), 0);
        let by_attr = resolve(&t, "/r/s[@id=\"2\"]");
        assert_eq!(by_attr, resolve(&t, "/r/s[2]"));
    }

    #[test]
    fn text_and_self_steps() {
        let t = sample();
        let texts = resolve(&t, "/r/s/x/text()");
        assert_eq!(texts.len(), 1);
        assert!(t.kind(texts[0]).is_text());
        assert_eq!(resolve(&t, "/."), [t.root()]);
    }

    #[test]
    fn sibling_and_upward_axes() {
        let t = sample();
        let second_s = resolve(&t, "/r/s[2]")[0];
        let r = Resolver::new(&t);
        let prev = r.resolve(&parse_xpath("/r/s[2]/preceding-sibling::*").unwrap(), t.root());
        assert_eq!(names(&t, &prev), ["s"]);
        let anc = r.resolve(&parse_xpath("/r/s[2]/ancestor::*").unwrap(), t.root());
        assert_eq!(names(&t, &anc), ["r"]);
        assert_eq!(t.parent(second_s), Some(anc[0]));
    }

    #[test]
    fn covering_filter_drops_nested_matches() {
        let t = sample();
        let r = Resolver::new(&t);
        let all = r.resolve(&parse_xpath("//*").unwrap(), t.root());
        let covered = r.covering(&all);
        // Only the document element survives: everything else nests
        // inside it.
        assert_eq!(names(&t, &covered), ["r"]);
        let disjoint = r.resolve(&parse_xpath("//x").unwrap(), t.root());
        assert_eq!(r.covering(&disjoint).len(), 2);
    }

    #[test]
    fn relative_resolution_from_context() {
        let t = sample();
        let r = Resolver::new(&t);
        let ctx = r.resolve(&parse_xpath("/r/t").unwrap(), t.root())[0];
        let xs = r.resolve(&parse_xpath("/x").unwrap(), ctx);
        assert_eq!(names(&t, &xs), ["x"]);
        assert_eq!(t.parent(xs[0]), Some(ctx));
    }
}
