//! Span-carrying diagnostics for the flux DSL.
//!
//! Every stage of the pipeline — lexing, parsing, static checking,
//! lowering, validation — reports through the same [`Diagnostic`]
//! shape, so the CLI and the golden tests can treat all failure
//! classes uniformly. Codes partition the failure space:
//!
//! | code | stage    | meaning                                          |
//! |------|----------|--------------------------------------------------|
//! | F001 | lex/parse| syntax error (bad token, missing keyword, ...)    |
//! | F002 | parse    | malformed XPath in a path argument                |
//! | F003 | parse    | malformed XML tree literal                        |
//! | F004 | parse    | relative path outside a `for` body                |
//! | F005 | check    | target shape vs statement kind (text()/attribute) |
//! | F006 | check    | write into a previously deleted/replaced subtree  |
//! | F007 | check    | two `set` writes to the same text slot            |
//! | F008 | check    | `move` of a subtree into itself                   |
//! | F009 | check    | mutation of the document root                     |
//! | F010 | lower    | statement target matched no node (strict match)   |
//! | F011 | lower    | target node kind does not fit the statement       |
//! | F012 | lower    | ambiguous `move` destination (>1 match)           |
//! | F020 | validate | compiled log rejected by the shadow simulation    |

use std::fmt;

/// A half-open byte range into the program source, with the 1-based
/// line/column of its start (columns count characters, not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`, in characters.
    pub col: u32,
}

impl Span {
    /// A span covering `start..end` whose line/column are computed by
    /// walking `src` (safe on arbitrary byte offsets: counting stops at
    /// the nearest char boundary at or before `start`).
    pub fn at(src: &str, start: usize, end: usize) -> Span {
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, c) in src.char_indices() {
            if i + c.len_utf8() > start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both operands.
    pub fn cover(self, other: Span) -> Span {
        let (first, start, end) = if self.start <= other.start {
            (self, self.start, self.end.max(other.end))
        } else {
            (other, other.start, self.end.max(other.end))
        };
        Span {
            start,
            end,
            line: first.line,
            col: first.col,
        }
    }
}

/// One pipeline failure: a stable code, a human message and the source
/// span it anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`F001`..`F020`), see the module table.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Where in the program source.
    pub span: Span,
}

impl Diagnostic {
    /// A diagnostic anchored at `span`.
    pub fn new(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            span,
        }
    }

    /// Render as `line:col: CODE message` — the lint-style single-line
    /// form the `flux-check` CLI mode prints.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.span.line, self.span.col, self.code, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_col_counting() {
        let src = "ab\ncd\nef";
        let s = Span::at(src, 4, 5);
        assert_eq!((s.line, s.col), (2, 2));
        let first = Span::at(src, 0, 1);
        assert_eq!((first.line, first.col), (1, 1));
    }

    #[test]
    fn span_at_tolerates_non_boundary_offsets() {
        let src = "é x"; // 'é' is two bytes
        let s = Span::at(src, 1, 2); // inside the 'é'
        assert_eq!((s.line, s.col), (1, 1));
    }

    #[test]
    fn cover_takes_earliest_anchor() {
        let src = "abc def";
        let a = Span::at(src, 4, 7);
        let b = Span::at(src, 0, 3);
        let c = a.cover(b);
        assert_eq!((c.start, c.end, c.line, c.col), (0, 7, 1, 1));
    }

    #[test]
    fn render_is_lint_style() {
        let d = Diagnostic::new("F001", Span::at("x", 0, 1), "unexpected token");
        assert_eq!(d.render(), "1:1: F001 unexpected token");
        assert_eq!(d.to_string(), d.render());
    }
}
