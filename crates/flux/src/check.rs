//! The static checking pass: rejects ill-formed programs *before* any
//! document is touched, with span-carrying diagnostics.
//!
//! Two sub-passes:
//!
//! * **Shape** (F005, F009) — every path is checked against its
//!   [`XPathExpr::access_pattern`] plan: `set` must end in a `text()`
//!   step, child-position inserts and `rename` must not target text
//!   nodes, attribute-axis steps are rejected everywhere (attribute
//!   nodes are not updatable through flux), and no statement may
//!   mutate the document root. Shape is context-free, so this pass
//!   recurses into `for` bodies.
//! * **Sequence** (F006, F007, F008) — write-after-delete, double
//!   text-slot writes and moves into their own subtree, detected over
//!   *literal* paths (chains of named child steps, optionally with a
//!   positional predicate, ending at an element or `text()` step).
//!   Because the DSL has snapshot semantics — every path resolves
//!   against the original tree and the whole program is one atomic
//!   [`MutationLog`](xupd_framework::MutationLog) — identical literal
//!   prefixes denote identical node sets, which makes the pass sound:
//!   every statically rejected program is also rejected by strict-
//!   match lowering, the shadow-simulation validator or atomic apply
//!   (the `no_false_accepts` property in `tests/flux_differential.rs`
//!   pins this). The sequence pass stays at the top level: `for`
//!   bodies may execute zero times, so conflicts through iteration are
//!   left to the validator.

use crate::ast::{InsertPos, PathArg, Stmt};
use crate::diag::Diagnostic;
use xupd_encoding::xpath::{Axis, NodeTest, Pred, Step};

/// Run the full static pass, returning every diagnostic in program
/// order.
pub fn check(stmts: &[Stmt]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    shape_walk(stmts, false, &mut diags);
    sequence_check(stmts, &mut diags);
    diags
}

// ---------- shape pass (F005 / F009) ----------------------------------

fn shape_walk(stmts: &[Stmt], ctx_is_root: bool, diags: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        for path in stmt_paths(stmt) {
            if has_attribute_axis(path) {
                diags.push(Diagnostic::new(
                    "F005",
                    path.span,
                    format!(
                        "path {:?} selects attribute nodes, which cannot be \
                         updated through flux",
                        path.raw
                    ),
                ));
            }
        }
        match stmt {
            Stmt::Insert { pos, path, .. } => match pos {
                InsertPos::Into | InsertPos::FirstInto => {
                    if ends_in_text(path) {
                        diags.push(Diagnostic::new(
                            "F005",
                            path.span,
                            "cannot insert children into a text node",
                        ));
                    }
                }
                InsertPos::Before | InsertPos::After => {
                    if selects_root(path, ctx_is_root) {
                        diags.push(Diagnostic::new(
                            "F009",
                            path.span,
                            "cannot insert siblings of the document root",
                        ));
                    }
                }
            },
            Stmt::Delete { path, .. } | Stmt::Replace { path, .. } => {
                if selects_root(path, ctx_is_root) {
                    diags.push(Diagnostic::new(
                        "F009",
                        path.span,
                        format!("cannot {} the document root", stmt.keyword()),
                    ));
                }
            }
            Stmt::Rename { path, .. } => {
                if ends_in_text(path) {
                    diags.push(Diagnostic::new(
                        "F005",
                        path.span,
                        "rename targets elements, not text nodes",
                    ));
                }
                if selects_root(path, ctx_is_root) {
                    diags.push(Diagnostic::new(
                        "F009",
                        path.span,
                        "cannot rename the document root",
                    ));
                }
            }
            Stmt::Move {
                path, pos, dest, ..
            } => {
                if selects_root(path, ctx_is_root) {
                    diags.push(Diagnostic::new(
                        "F009",
                        path.span,
                        "cannot move the document root",
                    ));
                }
                match pos {
                    InsertPos::Into | InsertPos::FirstInto => {
                        if ends_in_text(dest) {
                            diags.push(Diagnostic::new(
                                "F005",
                                dest.span,
                                "cannot move children into a text node",
                            ));
                        }
                    }
                    InsertPos::Before | InsertPos::After => {
                        if selects_root(dest, ctx_is_root) {
                            diags.push(Diagnostic::new(
                                "F009",
                                dest.span,
                                "cannot insert siblings of the document root",
                            ));
                        }
                    }
                }
            }
            Stmt::Set { path, .. } => {
                if !ends_in_text(path) {
                    diags.push(Diagnostic::new(
                        "F005",
                        path.span,
                        format!(
                            "set target {:?} must end in a text() step",
                            path.raw
                        ),
                    ));
                }
            }
            Stmt::For { path, body, .. } => {
                shape_walk(body, selects_root(path, ctx_is_root), diags);
            }
        }
    }
}

/// Every path argument a statement carries, for path-generic checks.
fn stmt_paths(stmt: &Stmt) -> Vec<&PathArg> {
    match stmt {
        Stmt::Insert { path, .. }
        | Stmt::Delete { path, .. }
        | Stmt::Replace { path, .. }
        | Stmt::Rename { path, .. }
        | Stmt::Set { path, .. }
        | Stmt::For { path, .. } => vec![path],
        Stmt::Move { path, dest, .. } => vec![path, dest],
    }
}

fn has_attribute_axis(path: &PathArg) -> bool {
    path.expr.steps().iter().any(|s| s.axis == Axis::Attribute)
}

fn ends_in_text(path: &PathArg) -> bool {
    // The raw last step is enough — plan fusion never rewrites the
    // final node test (and `AccessPattern::compile` per call would
    // allocate the whole plan just to look at one step).
    matches!(
        path.expr.steps().last(),
        Some(Step {
            test: NodeTest::Text,
            ..
        })
    )
}

/// Whether the path can only resolve to the document root: every step
/// is a `self::` step and, for a relative path, the context node is
/// itself known to be the root.
fn selects_root(path: &PathArg, ctx_is_root: bool) -> bool {
    if path.relative && !ctx_is_root {
        return false;
    }
    path.expr.steps().iter().all(|s| s.axis == Axis::SelfAxis)
}

// ---------- sequence pass (F006 / F007 / F008) ------------------------

/// One step of a literal path: a named child step (optionally
/// positional), or the final `text()` step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LitStep {
    /// `name` or `name[k]`.
    Name(String, Option<usize>),
    /// `text()` or `text()[k]` — only ever last.
    Text(Option<usize>),
}

/// Extract the literal form of an absolute path: child-axis steps with
/// name tests (a final `text()` step allowed), predicates restricted
/// to at most one positional. Anything else — descendant steps,
/// attribute predicates, relative paths — returns `None` and the path
/// is exempt from sequence checking.
fn literal(path: &PathArg) -> Option<Vec<LitStep>> {
    if path.relative {
        return None;
    }
    let steps = path.expr.steps();
    let mut lit = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        if step.axis != Axis::Child {
            return None;
        }
        let pos = match step.preds.as_slice() {
            [] => None,
            [Pred::Position(k)] => Some(*k),
            _ => return None,
        };
        match &step.test {
            NodeTest::Name(name) => lit.push(LitStep::Name(name.clone(), pos)),
            NodeTest::Text if i + 1 == steps.len() => lit.push(LitStep::Text(pos)),
            _ => return None,
        }
    }
    Some(lit)
}

/// Is `p` a (non-strict) prefix of `q`? Steps must be identical —
/// `s` and `s[2]` are treated as incomparable, never equal.
fn is_prefix(p: &[LitStep], q: &[LitStep]) -> bool {
    p.len() <= q.len() && p.iter().zip(q).all(|(a, b)| a == b)
}

fn sequence_check(stmts: &[Stmt], diags: &mut Vec<Diagnostic>) {
    // (literal path, consumed-exactly-or-as-subtree, keyword) of every
    // earlier consuming statement.
    struct Consumed {
        lit: Vec<LitStep>,
        subtree: bool,
        keyword: &'static str,
    }
    let mut consumed: Vec<Consumed> = Vec::new();
    let mut text_writes: Vec<Vec<LitStep>> = Vec::new();

    for stmt in stmts {
        // `for` headers are not strict-match targets and body effects
        // depend on the iteration count — leave those to the validator.
        if matches!(stmt, Stmt::For { .. }) {
            continue;
        }
        for path in stmt_paths(stmt) {
            let Some(lit) = literal(path) else { continue };
            for c in &consumed {
                let hit = if c.subtree {
                    is_prefix(&c.lit, &lit)
                } else {
                    c.lit == lit
                };
                if hit {
                    diags.push(Diagnostic::new(
                        "F006",
                        path.span,
                        format!(
                            "path {:?} was consumed by an earlier `{}` statement",
                            path.raw, c.keyword
                        ),
                    ));
                    break;
                }
            }
        }
        match stmt {
            Stmt::Delete { path, .. } | Stmt::Replace { path, .. } => {
                if let Some(lit) = literal(path) {
                    consumed.push(Consumed {
                        lit,
                        subtree: true,
                        keyword: stmt.keyword(),
                    });
                }
            }
            Stmt::Rename { path, .. } => {
                // Rename re-parents the children under the replacement
                // element — only the renamed node itself is consumed.
                if let Some(lit) = literal(path) {
                    consumed.push(Consumed {
                        lit,
                        subtree: false,
                        keyword: "rename",
                    });
                }
            }
            Stmt::Set { path, .. } => {
                if let Some(lit) = literal(path) {
                    if text_writes.contains(&lit) {
                        diags.push(Diagnostic::new(
                            "F007",
                            path.span,
                            format!(
                                "text slot {:?} is already written by an \
                                 earlier `set` statement",
                                path.raw
                            ),
                        ));
                    } else {
                        text_writes.push(lit);
                    }
                }
            }
            Stmt::Move {
                path, pos, dest, ..
            } => {
                if let (Some(src), Some(dst)) = (literal(path), literal(dest)) {
                    let cycle = match pos {
                        InsertPos::Into | InsertPos::FirstInto => is_prefix(&src, &dst),
                        // Before/after a node strictly inside the moved
                        // subtree re-parents it into itself; before/after
                        // itself is position-dependent, so no claim.
                        InsertPos::Before | InsertPos::After => {
                            src.len() < dst.len() && is_prefix(&src, &dst)
                        }
                    };
                    if cycle {
                        diags.push(Diagnostic::new(
                            "F008",
                            dest.span,
                            format!(
                                "destination {:?} lies inside the moved \
                                 subtree {:?}",
                                dest.raw, path.raw
                            ),
                        ));
                    }
                }
            }
            Stmt::Insert { .. } | Stmt::For { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn codes(src: &str) -> Vec<&'static str> {
        let stmts = match parse(src) {
            Ok(s) => s,
            Err(d) => panic!("parse failed on {src:?}: {d}"),
        };
        check(&stmts).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_programs_have_no_diagnostics() {
        assert!(codes("insert <m/> into /r/s; delete /r/t").is_empty());
        assert!(codes("set /r/s/text() to \"x\"; set /r/t/text() to \"y\"").is_empty());
        assert!(codes("for /r/s do insert <m/> into . end").is_empty());
    }

    #[test]
    fn f005_shapes() {
        assert_eq!(codes("set /r/s to \"x\""), ["F005"]);
        assert_eq!(codes("insert <m/> into /r/s/text()"), ["F005"]);
        assert_eq!(codes("rename /r/s/text() to x"), ["F005"]);
        assert_eq!(codes("delete /r/s/@id"), ["F005"]);
        assert_eq!(codes("move /r/s into /r/t/text()"), ["F005"]);
    }

    #[test]
    fn f009_root_mutations() {
        assert_eq!(codes("delete /."), ["F009"]);
        assert_eq!(codes("replace /. with <r/>"), ["F009"]);
        assert_eq!(codes("rename /. to r"), ["F009"]);
        assert_eq!(codes("insert <m/> before /."), ["F009"]);
        // Root mutation through a `for` context that is provably root.
        assert_eq!(codes("for /. do delete . end"), ["F009"]);
        // Inserting *into* the root is fine.
        assert!(codes("insert <m/> into /.").is_empty());
    }

    #[test]
    fn f006_write_after_delete() {
        assert_eq!(codes("delete /r/s; set /r/s/x/text() to \"v\""), ["F006"]);
        assert_eq!(codes("replace /r/s with <t/>; delete /r/s[1]"), [] as [&str; 0]);
        assert_eq!(codes("replace /r/s with <t/>; delete /r/s"), ["F006"]);
        assert_eq!(codes("rename /r/s to t; delete /r/s"), ["F006"]);
        // Rename does not consume the children.
        assert!(codes("rename /r/s to t; delete /r/s/x").is_empty());
        // Deleting an ancestor after a descendant is legal.
        assert!(codes("delete /r/s/x; delete /r/s").is_empty());
    }

    #[test]
    fn f007_double_text_write() {
        assert_eq!(
            codes("set /r/s/text() to \"a\"; set /r/s/text() to \"b\""),
            ["F007"]
        );
        assert!(codes("set /r/s[1]/text() to \"a\"; set /r/s[2]/text() to \"b\"").is_empty());
    }

    #[test]
    fn f008_move_into_own_subtree() {
        assert_eq!(codes("move /r/s into /r/s/x"), ["F008"]);
        assert_eq!(codes("move /r/s into /r/s"), ["F008"]);
        assert_eq!(codes("move /r/s before /r/s/x"), ["F008"]);
        // Before/after the node itself is position-dependent: no claim.
        assert!(codes("move /r/s after /r/s").is_empty());
        assert!(codes("move /r/s into /r/t").is_empty());
    }

    #[test]
    fn non_literal_paths_are_exempt_from_sequence_checks() {
        assert!(codes("delete //s; set /r/s/x/text() to \"v\"").is_empty());
        assert!(codes("delete /r/s; set //s/x/text() to \"v\"").is_empty());
    }
}
