//! Recursive-descent parser for the flux update DSL.
//!
//! Grammar (statements separated by `;`, separators optional before
//! `end` / end of input, `#` line comments):
//!
//! ```text
//! program := { stmt ';' }
//! stmt    := 'insert' TREE pos PATH
//!          | 'delete' PATH
//!          | 'replace' PATH 'with' TREE
//!          | 'rename' PATH 'to' NAME
//!          | 'move' PATH pos PATH
//!          | 'set' PATH 'to' STRING
//!          | 'for' PATH 'do' { stmt ';' } 'end'
//! pos     := 'into' | 'first' 'into' | 'before' | 'after'
//! ```
//!
//! Path arguments are handed to `xupd_encoding::parse_xpath` (F002 on
//! rejection), tree literals to `xupd_xmldom::parse` (F003). Relative
//! paths (`.` / `./rest`) are only meaningful inside a `for` body and
//! are rejected with F004 elsewhere.

use crate::ast::{InsertPos, PathArg, Stmt, TreeArg};
use crate::diag::{Diagnostic, Span};
use crate::lexer::{lex, TokKind, Token};
use xupd_encoding::parse_xpath;

/// Parse `src` into a statement list, or the first diagnostic.
pub fn parse(src: &str) -> Result<Vec<Stmt>, Diagnostic> {
    let toks = lex(src)?;
    let mut p = Parser {
        src,
        toks: &toks,
        i: 0,
        for_depth: 0,
    };
    let stmts = p.program(false)?;
    if let Some(t) = p.peek() {
        return Err(Diagnostic::new(
            "F001",
            t.span,
            format!("expected a statement, found {:?}", t.text(src)),
        ));
    }
    Ok(stmts)
}

struct Parser<'s, 't> {
    src: &'s str,
    toks: &'t [Token],
    i: usize,
    for_depth: u32,
}

impl Parser<'_, '_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).copied();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eof_span(&self) -> Span {
        Span::at(self.src, self.src.len(), self.src.len())
    }

    fn peek_word(&self) -> Option<&str> {
        self.peek().and_then(|t| {
            (t.kind == TokKind::Word).then(|| t.text(self.src))
        })
    }

    /// Statements until `end` (when `in_for`) or end of input.
    fn program(&mut self, in_for: bool) -> Result<Vec<Stmt>, Diagnostic> {
        let mut stmts = Vec::new();
        loop {
            while self.peek().map(|t| t.kind) == Some(TokKind::Semi) {
                self.i += 1;
            }
            match self.peek() {
                None => return Ok(stmts),
                Some(_) if in_for && self.peek_word() == Some("end") => return Ok(stmts),
                Some(_) => stmts.push(self.stmt()?),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let t = self.bump().ok_or_else(|| {
            Diagnostic::new("F001", self.eof_span(), "expected a statement")
        })?;
        if t.kind != TokKind::Word {
            return Err(Diagnostic::new(
                "F001",
                t.span,
                format!("expected a statement keyword, found {:?}", t.text(self.src)),
            ));
        }
        let start = t.span;
        match t.text(self.src) {
            "insert" => {
                let tree = self.tree_arg()?;
                let pos = self.insert_pos()?;
                let path = self.path_arg()?;
                let span = start.cover(path.span);
                Ok(Stmt::Insert {
                    tree,
                    pos,
                    path,
                    span,
                })
            }
            "delete" => {
                let path = self.path_arg()?;
                let span = start.cover(path.span);
                Ok(Stmt::Delete { path, span })
            }
            "replace" => {
                let path = self.path_arg()?;
                self.keyword("with")?;
                let tree = self.tree_arg()?;
                let span = start.cover(tree.span);
                Ok(Stmt::Replace { path, tree, span })
            }
            "rename" => {
                let path = self.path_arg()?;
                self.keyword("to")?;
                let name_tok = self.expect_tok(TokKind::Word, "an element name")?;
                let name = name_tok.text(self.src).to_string();
                let span = start.cover(name_tok.span);
                Ok(Stmt::Rename {
                    path,
                    name,
                    name_span: name_tok.span,
                    span,
                })
            }
            "move" => {
                let path = self.path_arg()?;
                let pos = self.insert_pos()?;
                let dest = self.path_arg()?;
                let span = start.cover(dest.span);
                Ok(Stmt::Move {
                    path,
                    pos,
                    dest,
                    span,
                })
            }
            "set" => {
                let path = self.path_arg()?;
                self.keyword("to")?;
                let text_tok = self.expect_tok(TokKind::Str, "a quoted string")?;
                // Strip the surrounding quotes (1 byte each).
                let text = self
                    .src
                    .get(text_tok.span.start + 1..text_tok.span.end.saturating_sub(1))
                    .unwrap_or("")
                    .to_string();
                let span = start.cover(text_tok.span);
                Ok(Stmt::Set { path, text, span })
            }
            "for" => {
                let path = self.path_arg()?;
                self.keyword("do")?;
                self.for_depth += 1;
                let body = self.program(true)?;
                self.for_depth -= 1;
                let end_tok = self.bump().ok_or_else(|| {
                    Diagnostic::new("F001", self.eof_span(), "missing `end` to close `for`")
                })?;
                // program(true) only stops at `end` or EOF, so this
                // token is the `end` keyword.
                let span = start.cover(end_tok.span);
                Ok(Stmt::For { path, body, span })
            }
            other => Err(Diagnostic::new(
                "F001",
                t.span,
                format!("unknown statement keyword {other:?}"),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Token, Diagnostic> {
        let t = self.bump().ok_or_else(|| {
            Diagnostic::new("F001", self.eof_span(), format!("expected `{kw}`"))
        })?;
        if t.kind == TokKind::Word && t.text(self.src) == kw {
            Ok(t)
        } else {
            Err(Diagnostic::new(
                "F001",
                t.span,
                format!("expected `{kw}`, found {:?}", t.text(self.src)),
            ))
        }
    }

    fn expect_tok(&mut self, kind: TokKind, what: &str) -> Result<Token, Diagnostic> {
        let t = self.bump().ok_or_else(|| {
            Diagnostic::new("F001", self.eof_span(), format!("expected {what}"))
        })?;
        if t.kind == kind {
            Ok(t)
        } else {
            Err(Diagnostic::new(
                "F001",
                t.span,
                format!("expected {what}, found {:?}", t.text(self.src)),
            ))
        }
    }

    fn insert_pos(&mut self) -> Result<InsertPos, Diagnostic> {
        let t = self.expect_tok(TokKind::Word, "`into`, `first into`, `before` or `after`")?;
        match t.text(self.src) {
            "into" => Ok(InsertPos::Into),
            "first" => {
                self.keyword("into")?;
                Ok(InsertPos::FirstInto)
            }
            "before" => Ok(InsertPos::Before),
            "after" => Ok(InsertPos::After),
            other => Err(Diagnostic::new(
                "F001",
                t.span,
                format!("expected `into`, `first into`, `before` or `after`, found {other:?}"),
            )),
        }
    }

    fn path_arg(&mut self) -> Result<PathArg, Diagnostic> {
        let t = self.expect_tok(TokKind::Path, "a path")?;
        let raw = t.text(self.src).to_string();
        let relative = raw.starts_with('.');
        let parsed = if relative {
            if self.for_depth == 0 {
                return Err(Diagnostic::new(
                    "F004",
                    t.span,
                    format!("relative path {raw:?} is only allowed inside a `for` body"),
                ));
            }
            if raw == "." {
                // One self:: step — resolves to the context node.
                parse_xpath("/.")
            } else if let Some(rest) = raw.strip_prefix('.').filter(|r| r.starts_with('/')) {
                parse_xpath(rest)
            } else {
                return Err(Diagnostic::new(
                    "F002",
                    t.span,
                    format!("relative paths must be `.` or `./...`, got {raw:?}"),
                ));
            }
        } else {
            parse_xpath(&raw)
        };
        match parsed {
            Ok(expr) => Ok(PathArg {
                raw,
                expr,
                relative,
                span: t.span,
            }),
            Err(e) => Err(Diagnostic::new(
                "F002",
                t.span,
                format!("invalid path {raw:?}: {}", e.message),
            )),
        }
    }

    fn tree_arg(&mut self) -> Result<TreeArg, Diagnostic> {
        let t = self.expect_tok(TokKind::Tree, "an XML tree literal")?;
        let raw = t.text(self.src).to_string();
        let tree = xupd_xmldom::parse(&raw).map_err(|e| {
            Diagnostic::new("F003", t.span, format!("invalid tree literal: {e}"))
        })?;
        if tree.document_element().is_none() {
            return Err(Diagnostic::new(
                "F003",
                t.span,
                "tree literal has no root element",
            ));
        }
        Ok(TreeArg {
            raw,
            tree,
            span: t.span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Vec<Stmt> {
        match parse(src) {
            Ok(s) => s,
            Err(d) => panic!("parse failed on {src:?}: {d}"),
        }
    }

    #[test]
    fn all_statement_forms_parse() {
        let stmts = ok(r#"
            insert <m/> into /r/s;
            insert <m/> first into /r/s;
            insert <m/> before /r/s;
            delete /r/s[2];
            replace /r/s with <t><u/></t>;
            rename /r/s to cluster;
            move /r/s after /r/t;
            set /r/s/text() to "new text";
            for /r/s do insert <m/> into .; delete ./old end
        "#);
        assert_eq!(stmts.len(), 9);
        match &stmts[8] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn semicolons_are_separators_not_terminators() {
        assert_eq!(ok("delete /a; delete /b").len(), 2);
        assert_eq!(ok("delete /a; delete /b;").len(), 2);
        assert_eq!(ok(";;delete /a;;").len(), 1);
        assert!(ok("").is_empty());
        assert!(ok("# only a comment").is_empty());
    }

    #[test]
    fn relative_path_outside_for_is_f004() {
        let d = parse("delete ./x").unwrap_err();
        assert_eq!(d.code, "F004");
        assert_eq!((d.span.line, d.span.col), (1, 8));
    }

    #[test]
    fn bad_xpath_is_f002() {
        let d = parse("delete /a[").unwrap_err();
        assert_eq!(d.code, "F002");
    }

    #[test]
    fn bad_tree_literal_is_f003() {
        let d = parse("insert <a b=/> into /r").unwrap_err();
        assert_eq!(d.code, "F003");
    }

    #[test]
    fn missing_keyword_is_f001() {
        let d = parse("replace /a <b/>").unwrap_err();
        assert_eq!(d.code, "F001");
        assert!(d.message.contains("with"), "{}", d.message);
    }

    #[test]
    fn unknown_keyword_is_f001() {
        let d = parse("upsert <a/> into /r").unwrap_err();
        assert_eq!(d.code, "F001");
    }

    #[test]
    fn unclosed_for_is_f001() {
        let d = parse("for /a do delete ./x").unwrap_err();
        assert_eq!(d.code, "F001");
        assert!(d.message.contains("end"), "{}", d.message);
    }

    #[test]
    fn nested_for_with_relative_header() {
        let stmts = ok("for /r/s do for ./t do delete ./u end end");
        match &stmts[0] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::For { path, .. } => assert!(path.relative),
                other => panic!("expected nested for, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }
}
