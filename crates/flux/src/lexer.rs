//! Hand-rolled lexer for the flux update DSL (in the style of
//! `xupd-lint`'s Rust lexer, but for a far smaller token alphabet).
//!
//! The interesting tokens are *composite*: a `Path` token swallows a
//! whole XPath (`/site/people/person[2]`), a `Tree` token swallows a
//! balanced XML snippet (`<person><name>x</name></person>`), and a
//! `Str` token a double-quoted string. Keeping those as single tokens
//! means the parser never has to re-tokenize XPath or XML syntax — it
//! hands the raw text to `xupd_encoding::parse_xpath` /
//! `xupd_xmldom::parse` and converts their errors into span-carrying
//! diagnostics.
//!
//! The lexer walks `char_indices`, so every recorded offset is a char
//! boundary: arbitrary (even non-UTF-8-aligned mutations of) source
//! text can never make a downstream slice panic. The parser fuzz
//! property in `tests/flux_diagnostics.rs` pins this.

use crate::diag::{Diagnostic, Span};

/// Token kinds of the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// A bare word: keyword (`insert`, `into`, ...) or element name.
    Word,
    /// An XPath argument, starting with `/` or `.`.
    Path,
    /// A balanced XML tree literal, starting with `<`.
    Tree,
    /// A double-quoted string (quotes included in the span).
    Str,
    /// Statement separator `;`.
    Semi,
}

/// One token: kind plus the source span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokKind,
    /// Source range (byte offsets on char boundaries).
    pub span: Span,
}

impl Token {
    /// The token's raw text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.span.start..self.span.end).unwrap_or("")
    }
}

/// Lex `src` into tokens. `#` starts a comment running to end of line.
/// Returns the token stream or the first lexical error (unterminated
/// string / unbalanced tree literal).
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let end_of = |i: usize| -> usize {
        chars
            .get(i)
            .map(|&(off, _)| off)
            .unwrap_or(src.len())
    };
    // Token starts are strictly increasing, so line/column tracking is
    // one forward walk over the whole source (`Span::at` from scratch
    // per token would make lexing quadratic in program length).
    let mut cursor = PosCursor::default();
    let mut span_from = |chars: &[(usize, char)], start_i: usize, start: usize, end: usize| {
        let (line, col) = cursor.advance_to(chars, start_i);
        Span {
            start,
            end,
            line,
            col,
        }
    };
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let (off, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            ';' => {
                toks.push(Token {
                    kind: TokKind::Semi,
                    span: span_from(&chars, i, off, end_of(i + 1)),
                });
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].1 != '"' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Diagnostic::new(
                        "F001",
                        Span::at(src, off, src.len()),
                        "unterminated string literal",
                    ));
                }
                i += 1; // past the closing quote
                toks.push(Token {
                    kind: TokKind::Str,
                    span: span_from(&chars, start, chars[start].0, end_of(i)),
                });
            }
            '/' | '.' => {
                let (start_i, start) = (i, off);
                i = lex_path(&chars, i);
                toks.push(Token {
                    kind: TokKind::Path,
                    span: span_from(&chars, start_i, start, end_of(i)),
                });
            }
            '<' => {
                let (start_i, start) = (i, off);
                i = lex_tree(&chars, i).ok_or_else(|| {
                    Diagnostic::new(
                        "F003",
                        Span::at(src, start, src.len()),
                        "unbalanced XML tree literal",
                    )
                })?;
                toks.push(Token {
                    kind: TokKind::Tree,
                    span: span_from(&chars, start_i, start, end_of(i)),
                });
            }
            c if is_word_char(c) => {
                let (start_i, start) = (i, off);
                while i < chars.len() && is_word_char(chars[i].1) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Word,
                    span: span_from(&chars, start_i, start, end_of(i)),
                });
            }
            _ => {
                return Err(Diagnostic::new(
                    "F001",
                    Span::at(src, off, end_of(i + 1)),
                    format!("unexpected character {c:?}"),
                ));
            }
        }
    }
    Ok(toks)
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Forward-only line/column tracker over the lexer's char table.
struct PosCursor {
    idx: usize,
    line: u32,
    col: u32,
}

impl Default for PosCursor {
    fn default() -> Self {
        PosCursor {
            idx: 0,
            line: 1,
            col: 1,
        }
    }
}

impl PosCursor {
    /// Line/column of `chars[target]`, advancing the cursor there.
    /// Targets must be non-decreasing across calls.
    fn advance_to(&mut self, chars: &[(usize, char)], target: usize) -> (u32, u32) {
        while self.idx < target && self.idx < chars.len() {
            if chars[self.idx].1 == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.idx += 1;
        }
        (self.line, self.col)
    }
}

/// Consume a path starting at `chars[i]` (`/` or `.`): runs until
/// whitespace, `;` or `#` at bracket depth 0 outside quotes. Brackets
/// track `[...]` predicates, whose quoted values may contain anything.
fn lex_path(chars: &[(usize, char)], mut i: usize) -> usize {
    let mut depth = 0usize;
    let mut quote: Option<char> = None;
    while i < chars.len() {
        let c = chars[i].1;
        if let Some(q) = quote {
            if c == q {
                quote = None;
            }
        } else {
            match c {
                '"' | '\'' => quote = Some(c),
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                ';' | '#' if depth == 0 => break,
                c if c.is_whitespace() && depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Consume a balanced XML snippet starting at `chars[i] == '<'`.
/// Tracks element nesting: `<x>` opens, `</x>` closes, `<x/>` is
/// neutral, `<!-- -->` and `<?...?>` are skipped whole. Returns the
/// index one past the snippet, or `None` when the input ends before
/// the nesting balances.
fn lex_tree(chars: &[(usize, char)], mut i: usize) -> Option<usize> {
    let mut depth = 0usize;
    loop {
        if i >= chars.len() || chars[i].1 != '<' {
            return None;
        }
        // Classify the tag we are sitting on.
        let next = chars.get(i + 1).map(|&(_, c)| c)?;
        if next == '!' || next == '?' {
            // Comment / PI / doctype: skip to the closing '>'.
            i += 1;
            let mut quote: Option<char> = None;
            while i < chars.len() {
                let c = chars[i].1;
                if let Some(q) = quote {
                    if c == q {
                        quote = None;
                    }
                } else if c == '"' || c == '\'' {
                    quote = Some(c);
                } else if c == '>' {
                    break;
                }
                i += 1;
            }
            if i >= chars.len() {
                return None;
            }
            i += 1;
        } else {
            let closing = next == '/';
            // Scan to the matching '>', honouring attribute quotes.
            let mut quote: Option<char> = None;
            let mut prev = ' ';
            while i < chars.len() {
                let c = chars[i].1;
                if let Some(q) = quote {
                    if c == q {
                        quote = None;
                    }
                } else if c == '"' || c == '\'' {
                    quote = Some(c);
                } else if c == '>' {
                    break;
                }
                prev = c;
                i += 1;
            }
            if i >= chars.len() {
                return None;
            }
            let self_closing = prev == '/';
            i += 1;
            if closing {
                if depth == 0 {
                    return None; // stray `</x>` with nothing open
                }
                depth -= 1;
            } else if !self_closing {
                depth += 1;
            }
        }
        if depth == 0 {
            return Some(i);
        }
        // Skip intervening text content up to the next tag.
        while i < chars.len() && chars[i].1 != '<' {
            i += 1;
        }
        if i >= chars.len() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .iter()
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn words_paths_and_semis() {
        assert_eq!(
            kinds("delete /a/b;"),
            [TokKind::Word, TokKind::Path, TokKind::Semi]
        );
        assert_eq!(texts("delete /a/b;"), ["delete", "/a/b", ";"]);
    }

    #[test]
    fn path_swallows_predicates_with_spaces() {
        let src = r#"delete /a/b[@k="x y"]/c;"#;
        assert_eq!(texts(src)[1], r#"/a/b[@k="x y"]/c"#);
    }

    #[test]
    fn relative_paths_lex() {
        assert_eq!(texts("set ./name to \"x\"")[1], "./name");
        assert_eq!(texts("insert <x/> into .")[3], ".");
    }

    #[test]
    fn tree_literals_balance() {
        let src = "insert <p><n>hi</n></p> into /a";
        assert_eq!(texts(src)[1], "<p><n>hi</n></p>");
        let selfclosing = "insert <p k=\"v\"/> into /a";
        assert_eq!(texts(selfclosing)[1], "<p k=\"v\"/>");
        let comment = "insert <p><!-- < > --></p> into /a";
        assert_eq!(texts(comment)[1], "<p><!-- < > --></p>");
    }

    #[test]
    fn unbalanced_tree_is_f003() {
        // Depth never returns to zero before the input ends.
        for src in ["insert <p><n></p> ", "insert <p><n>", "insert </p>"] {
            let err = lex(src).unwrap_err();
            assert_eq!(err.code, "F003", "{src}");
        }
    }

    #[test]
    fn unterminated_string_is_f001() {
        let err = lex("set /a/text() to \"oops").unwrap_err();
        assert_eq!(err.code, "F001");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# a comment\ndelete /x # trailing\n;"),
            [TokKind::Word, TokKind::Path, TokKind::Semi]
        );
    }

    #[test]
    fn unexpected_character_is_f001() {
        let err = lex("delete /a ! ").unwrap_err();
        assert_eq!(err.code, "F001");
        assert!(err.message.contains('!'));
    }

    #[test]
    fn multibyte_source_never_panics() {
        // é and the snowman are multi-byte; offsets must stay on
        // boundaries.
        for src in ["insert <é>☃</é> into /a", "delete /☃", "# é☃\n;"] {
            let _ = lex(src);
        }
    }
}
