//! The flux DSL abstract syntax tree.
//!
//! Arguments keep their raw source text *and* their parsed form: paths
//! carry the compiled [`XPathExpr`] (so the static checker can reason
//! over axes/tests without re-parsing) and tree literals carry the
//! parsed [`XmlTree`] fragment (document node + one root element).
//! Every node carries the [`Span`] it came from, so any later stage —
//! static check, lowering, validation — can anchor a diagnostic to the
//! exact source range that caused it.

use crate::diag::Span;
use xupd_encoding::XPathExpr;
use xupd_xmldom::XmlTree;

/// A path argument: raw text, parsed steps and whether it was written
/// relative (`.` / `./rest`) — in which case `expr` holds the steps of
/// the `/rest` part and resolution starts at the `for` context node.
#[derive(Debug, Clone)]
pub struct PathArg {
    /// Raw source text of the path.
    pub raw: String,
    /// Parsed XPath (for a relative path: the steps after the leading
    /// `.`, parsed as if absolute; empty steps for bare `.`).
    pub expr: XPathExpr,
    /// `true` when written `.` / `./rest` (resolves from the `for`
    /// context node instead of the document root).
    pub relative: bool,
    /// Source range.
    pub span: Span,
}

/// A tree literal argument: the raw snippet and its parsed fragment.
/// The fragment's document node has exactly one element child (the
/// fragment root).
#[derive(Debug, Clone)]
pub struct TreeArg {
    /// Raw source text of the snippet.
    pub raw: String,
    /// Parsed fragment.
    pub tree: XmlTree,
    /// Source range.
    pub span: Span,
}

/// Where an `insert`/`move` lands relative to its path argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    /// `into`: last child of the target.
    Into,
    /// `first into`: first child of the target.
    FirstInto,
    /// `before`: preceding sibling of the target.
    Before,
    /// `after`: following sibling of the target.
    After,
}

/// One statement of the DSL.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `insert <tree> into|first into|before|after <path>`
    Insert {
        /// The fragment to create.
        tree: TreeArg,
        /// Landing position relative to each target.
        pos: InsertPos,
        /// Target path.
        path: PathArg,
        /// Whole-statement span.
        span: Span,
    },
    /// `delete <path>`
    Delete {
        /// Target path.
        path: PathArg,
        /// Whole-statement span.
        span: Span,
    },
    /// `replace <path> with <tree>`
    Replace {
        /// Target path.
        path: PathArg,
        /// The replacement fragment.
        tree: TreeArg,
        /// Whole-statement span.
        span: Span,
    },
    /// `rename <path> to <name>`
    Rename {
        /// Target path.
        path: PathArg,
        /// The new element name.
        name: String,
        /// Span of the name word.
        name_span: Span,
        /// Whole-statement span.
        span: Span,
    },
    /// `move <path> into|first into|before|after <path>`
    Move {
        /// Source path (the subtrees to move).
        path: PathArg,
        /// Landing position relative to the destination.
        pos: InsertPos,
        /// Destination path (must match exactly one node).
        dest: PathArg,
        /// Whole-statement span.
        span: Span,
    },
    /// `set <path> to "<text>"`
    Set {
        /// Target path (must select text nodes).
        path: PathArg,
        /// The new text value.
        text: String,
        /// Whole-statement span.
        span: Span,
    },
    /// `for <path> do <stmts> end` — iterate the path's matches in
    /// document order, lowering the body once per match with `.`
    /// bound to the match.
    For {
        /// Iteration path.
        path: PathArg,
        /// Body statements.
        body: Vec<Stmt>,
        /// Whole-statement span.
        span: Span,
    },
}

impl Stmt {
    /// The whole-statement span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Insert { span, .. }
            | Stmt::Delete { span, .. }
            | Stmt::Replace { span, .. }
            | Stmt::Rename { span, .. }
            | Stmt::Move { span, .. }
            | Stmt::Set { span, .. }
            | Stmt::For { span, .. } => *span,
        }
    }

    /// Statement keyword, for messages.
    pub fn keyword(&self) -> &'static str {
        match self {
            Stmt::Insert { .. } => "insert",
            Stmt::Delete { .. } => "delete",
            Stmt::Replace { .. } => "replace",
            Stmt::Rename { .. } => "rename",
            Stmt::Move { .. } => "move",
            Stmt::Set { .. } => "set",
            Stmt::For { .. } => "for",
        }
    }
}
