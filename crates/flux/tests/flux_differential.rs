//! Differential soundness suite for the flux compiler.
//!
//! Four oracles, each pinning one leg of the compilation contract:
//!
//! * **Hand-built log equality** — a fixture program and the expert
//!   client's hand-assembled [`MutationLog`] must serialize to the
//!   same bytes: the compiler adds nothing and loses nothing.
//! * **Plan apply ≡ sequential apply** — for random generated
//!   programs, applying the compiled log through its certified
//!   [`AnalyzedPlan`] must leave byte-identical trees, identical
//!   label renderings and identical work counters versus the plain
//!   sequential `apply_log_dyn`, for **every** scheme in the
//!   17-scheme registry (coalesced apply must match bytes and labels
//!   too). Schemes are independent, so the battery fans out on the
//!   `xupd-exec` pool and is `XUPD_THREADS`-invariant.
//! * **No false accepts** — every program the static checker rejects
//!   must also fail dynamically when forced through
//!   `compile_unchecked`: at lowering (the kind guards), in the
//!   shadow-simulation validator, or at atomic apply — and the
//!   document must be left untouched. A checker whose rejections the
//!   runtime would have permitted is lying about its necessity.
//! * **Walker ≡ evaluator** — the lowering-time path walker
//!   ([`Resolver`]) must agree node-for-node with the encoded-table
//!   XPath evaluator on random documents, with node identities mapped
//!   through `EncodedDocument::row_of_source`.

use xupd_encoding::{parse_xpath, EncodedDocument};
use xupd_flux::paths::Resolver;
use xupd_flux::FluxProgram;
use xupd_framework::analysis::{apply_plan_coalesced_dyn, apply_plan_dyn};
use xupd_framework::mutations::{
    self, apply_log_dyn, LogId, Mutation, MutationLog, NodeRef, Place,
};
use xupd_schemes::prefix::qed::Qed;
use xupd_schemes::registry;
use xupd_workloads::docs;
use xupd_xmldom::{serialize_compact, NodeKind, XmlTree};

// ---------------------------------------------------------------------
// Deterministic program generator (splitmix64 — no external RNG).
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// `<r>` + 2–4 sections + a single `<t/>` landing pad. Every section
/// has an `id` attribute, a text-bearing `<a>`, an empty `<b/>`, and
/// even sections a nested `<c><d>x</d></c>`.
fn base_doc(rng: &mut Rng) -> (XmlTree, usize) {
    let sections = 2 + rng.below(3);
    let mut src = String::from("<r>");
    for i in 0..sections {
        src.push_str(&format!("<s id=\"{i}\"><a>t{i}</a><b/>"));
        if i % 2 == 0 {
            src.push_str("<c><d>x</d></c>");
        }
        src.push_str("</s>");
    }
    src.push_str("<t/></r>");
    (xupd_xmldom::parse(&src).expect("static doc"), sections)
}

/// 1–4 statements drawn from every statement form, with section
/// indices kept in range so most programs compile; the rest (strict-
/// match misses, accidental F006/F007 conflicts) are skipped by the
/// caller and only their *count* is bounded.
fn gen_program(rng: &mut Rng, sections: usize) -> String {
    let n = 1 + rng.below(4);
    let mut src = String::new();
    for k in 0..n {
        let i = 1 + rng.below(sections);
        let stmt = match rng.below(8) {
            0 => {
                let pos = ["into", "first into", "before", "after"][rng.below(4)];
                format!("insert <m{k}>v</m{k}> {pos} /r/s[{i}];\n")
            }
            1 => format!("delete /r/s[{i}]/b;\n"),
            2 => format!("replace /r/s[{i}]/a with <z>w</z>;\n"),
            3 => format!("rename /r/s[{i}] to q{k};\n"),
            4 => format!("move /r/s[{i}]/b into /r/t;\n"),
            5 => format!("set /r/s[{i}]/a/text() to \"w{k}\";\n"),
            6 => "for /r/s do insert <f/> into . end\n".to_string(),
            _ => format!("insert <m{k}/> after /r/t;\n"),
        };
        src.push_str(&stmt);
    }
    src
}

// ---------------------------------------------------------------------
// 1. Hand-built log equality.
// ---------------------------------------------------------------------

#[test]
fn compiled_log_matches_hand_built_log_bytes() {
    let tree =
        xupd_xmldom::parse("<r><s><x>one</x><y/></s><s><x>two</x><y/></s></r>").unwrap();
    let program = FluxProgram::parse(
        "for /r/s do insert <item>v</item> into .; set ./x/text() to \"w\"; delete ./y; end",
    )
    .expect("well-formed source");
    let compiled = program.compile(&tree).expect("clean program");

    // The expert client's log, mirroring the compiler's LogId
    // allocation order (two fresh ids per section).
    let root = tree.document_element().unwrap();
    let mut hand = MutationLog::default();
    let mut next = 0u32;
    for s in tree.children(root).filter(|&n| tree.kind(n).is_element()) {
        let mut elems = tree.children(s).filter(|&c| tree.kind(c).is_element());
        let x = elems.next().unwrap();
        let y = elems.next().unwrap();
        let t = tree.children(x).find(|&c| tree.kind(c).is_text()).unwrap();
        let el = LogId(next);
        let txt = LogId(next + 1);
        next += 2;
        hand.push(Mutation::CreateElement {
            id: el,
            name: "item".to_string(),
            place: Place::LastChildOf(NodeRef::Node(s)),
        });
        hand.push(Mutation::CreateNode {
            id: txt,
            kind: NodeKind::text("v"),
            place: Place::LastChildOf(NodeRef::New(el)),
        });
        hand.push(Mutation::SetText {
            target: NodeRef::Node(t),
            text: "w".to_string(),
        });
        hand.push(Mutation::Delete {
            target: NodeRef::Node(y),
        });
    }

    assert_eq!(
        mutations::serialize(&compiled.log),
        mutations::serialize(&hand),
        "compiled and hand-built logs must be byte-identical"
    );
}

// ---------------------------------------------------------------------
// 2. Plan apply ≡ sequential apply, across the whole roster.
// ---------------------------------------------------------------------

#[test]
fn plan_apply_matches_sequential_apply_across_roster() {
    let entries = registry();
    assert_eq!(entries.len(), 17, "whole roster covered");

    let mut compiled_programs = Vec::new();
    let mut skipped = 0usize;
    for seed in 0..24u64 {
        let mut rng = Rng(0xf1u64 ^ (seed << 8));
        let (tree, sections) = base_doc(&mut rng);
        let src = gen_program(&mut rng, sections);
        let program = match FluxProgram::parse(&src) {
            Ok(p) => p,
            Err(ds) => panic!("generated source failed to parse: {ds:?}\n{src}"),
        };
        match program.compile(&tree) {
            Ok(c) => compiled_programs.push((tree, c.log, c.plan)),
            // Strict-match misses and accidental static conflicts are
            // legitimate rejections — skip, but bound their rate below.
            Err(_) => skipped += 1,
        }
    }
    assert!(
        compiled_programs.len() >= 8,
        "generator too conflict-prone: only {} of 24 programs compiled ({skipped} skipped)",
        compiled_programs.len()
    );

    // Labels compared per *document position*, not per arena index:
    // reordered apply allocates fresh arena ids in a different order,
    // but an order-independent scheme must still label the (byte-
    // identical) final document identically.
    fn doc_order_labels(tree: &XmlTree, session: &dyn xupd_labelcore::DynScheme) -> Vec<String> {
        tree.ids_in_doc_order()
            .into_iter()
            .map(|n| session.label_display(n).unwrap())
            .collect()
    }

    for (tree, log, plan) in &compiled_programs {
        let outcomes = xupd_exec::par_map(&entries, |entry| {
            // Sequential reference.
            let mut seq_session = entry.session();
            let mut seq_tree = tree.clone();
            seq_session.label_tree(&seq_tree).unwrap();
            let seq_stats = apply_log_dyn(&mut seq_tree, seq_session.as_mut(), log).unwrap();

            // Certified-plan path.
            let mut plan_session = entry.session();
            let mut plan_tree = tree.clone();
            plan_session.label_tree(&plan_tree).unwrap();
            let plan_stats =
                apply_plan_dyn(&mut plan_tree, plan_session.as_mut(), log, plan).unwrap();

            // Coalesced path: bytes and labels must still match (work
            // counters intentionally shrink, so they are not compared).
            let mut co_session = entry.session();
            let mut co_tree = tree.clone();
            co_session.label_tree(&co_tree).unwrap();
            apply_plan_coalesced_dyn(&mut co_tree, co_session.as_mut(), log, plan).unwrap();

            (
                entry.name(),
                (
                    serialize_compact(&seq_tree),
                    doc_order_labels(&seq_tree, seq_session.as_ref()),
                    (seq_stats.inserts, seq_stats.deletes, seq_stats.relabeled),
                ),
                (
                    serialize_compact(&plan_tree),
                    doc_order_labels(&plan_tree, plan_session.as_ref()),
                    (plan_stats.inserts, plan_stats.deletes, plan_stats.relabeled),
                ),
                (
                    serialize_compact(&co_tree),
                    doc_order_labels(&co_tree, co_session.as_ref()),
                ),
            )
        });
        for (name, seq, plan_out, co) in outcomes {
            assert_eq!(seq.0, plan_out.0, "{name}: tree bytes diverged");
            assert_eq!(seq.1, plan_out.1, "{name}: label renderings diverged");
            assert_eq!(seq.2, plan_out.2, "{name}: work counters diverged");
            assert_eq!(seq.0, co.0, "{name}: coalesced tree bytes diverged");
            assert_eq!(seq.1, co.1, "{name}: coalesced labels diverged");
        }
    }
}

// ---------------------------------------------------------------------
// 3. No false accepts: static rejection ⇒ dynamic rejection.
// ---------------------------------------------------------------------

#[test]
fn no_false_accepts() {
    // Every template trips the static checker; `{i}` is substituted
    // with a random in-range section index per round.
    const TEMPLATES: &[&str] = &[
        // F006: write after consume.
        "delete /r/s[{i}]; set /r/s[{i}]/a/text() to \"v\"",
        "replace /r/s[{i}] with <z/>; delete /r/s[{i}]",
        "rename /r/s[{i}] to q; delete /r/s[{i}]",
        "delete /r/s[{i}]; insert <m/> into /r/s[{i}]",
        // F007: double text-slot write.
        "set /r/s[{i}]/a/text() to \"a\"; set /r/s[{i}]/a/text() to \"b\"",
        // F008: move into own subtree.
        "move /r/s[{i}] into /r/s[{i}]/a",
        "move /r/s[{i}] before /r/s[{i}]/a",
        // F009: root mutation.
        "delete /.",
        "rename /. to z",
        "insert <m/> before /.",
        "for /. do delete . end",
        // F005: shape violations.
        "set /r/s[{i}] to \"x\"",
        "insert <m/> into /r/s[{i}]/a/text()",
        "rename /r/s[{i}]/a/text() to q",
        "delete /r/s[{i}]/@id",
        "move /r/s[{i}] into /r/s[{i}]/a/text()",
    ];

    for seed in 0..4u64 {
        let mut rng = Rng(0xace_u64 ^ seed);
        let (tree, sections) = base_doc(&mut rng);
        let original = serialize_compact(&tree);
        for template in TEMPLATES {
            let i = 1 + rng.below(sections);
            let src = template.replace("{i}", &i.to_string());
            let program = FluxProgram::parse(&src)
                .unwrap_or_else(|ds| panic!("template must parse: {src:?}: {ds:?}"));
            assert!(
                !program.check().is_empty(),
                "template must be statically rejected: {src:?}"
            );

            // Force the program past the checker; *something* dynamic
            // must stop it, and the document must survive untouched.
            let dynamic_reject = match program.compile_unchecked(&tree) {
                Err(_) => true, // lowering guard (F010/F011/F012)
                Ok(log) => {
                    if mutations::validate(&log, &tree).is_err() {
                        true // shadow-simulation validator
                    } else {
                        let mut scratch = tree.clone();
                        let mut scheme = Qed::new();
                        let mut labeling = Default::default();
                        let failed = mutations::apply_log(
                            &mut scratch,
                            &mut scheme,
                            &mut labeling,
                            &log,
                        )
                        .is_err();
                        assert_eq!(
                            serialize_compact(&scratch),
                            original,
                            "atomic apply must roll back on failure: {src:?}"
                        );
                        failed // atomic apply
                    }
                }
            };
            assert!(
                dynamic_reject,
                "statically rejected program was dynamically accepted: {src:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4. Walker ≡ evaluator.
// ---------------------------------------------------------------------

#[test]
fn resolver_matches_encoded_evaluator() {
    const PATHS: &[&str] = &[
        "/.",
        "/s",
        "//a",
        "//s/a",
        "//a/text()",
        "//*",
        "//b[1]",
        "//c//d",
        "//s[2]/a",
        "//d/text()",
    ];
    for seed in 0..8u64 {
        let tree = docs::random_tagged_tree(seed, 60, &["s", "a", "b", "c", "d"]);
        let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
        let resolver = Resolver::new(&tree);
        for path in PATHS {
            let expr = parse_xpath(path).expect("roster path parses");
            let walked: Vec<usize> = resolver
                .resolve(&expr, tree.root())
                .into_iter()
                .map(|id| {
                    doc.row_of_source(id)
                        .unwrap_or_else(|| panic!("{path}: walker hit unencoded node"))
                })
                .collect();
            let evaluated = expr.evaluate(&doc);
            assert_eq!(
                walked, evaluated,
                "seed {seed}, path {path}: walker and evaluator diverged"
            );
        }
    }
}
