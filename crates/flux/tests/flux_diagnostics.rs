//! Golden diagnostics + parser robustness for the flux DSL.
//!
//! The golden half pins the *exact* rendered form (`line:col: CODE
//! message`) of one representative program per failure class F001–F012
//! and F020 — spans, codes and wording are all part of the tool's
//! contract (editors and CI logs parse them), so any drift must be a
//! conscious diff in this file.
//!
//! The property half feeds the parser arbitrarily mutated source bytes
//! (overwrites, insertions, deletions of valid programs) through the
//! shrinking harness: the front end must always return diagnostics,
//! never panic — the lexer's char-boundary discipline is exactly what
//! this pins.

use xupd_flux::FluxProgram;
use xupd_testkit::prop::{any_u64, from_slice, vecs, Config};
use xupd_testkit::{prop_assert, props};
use xupd_xmldom::XmlTree;

/// The document the lowering-stage goldens (F010–F012, F020) compile
/// against.
fn fixture() -> XmlTree {
    xupd_xmldom::parse(r#"<r><s id="0"><a>t</a><b/></s><s id="1"><a>u</a></s><t/></r>"#)
        .expect("static fixture")
}

/// Every diagnostic the front end (parse + static check) reports for
/// `src`, rendered.
fn static_renders(src: &str) -> Vec<String> {
    match FluxProgram::parse(src) {
        Ok(p) => p.check().iter().map(|d| d.render()).collect(),
        Err(ds) => ds.iter().map(|d| d.render()).collect(),
    }
}

/// Every diagnostic the full compile pipeline reports for `src`
/// against the fixture document, rendered.
fn compile_renders(src: &str) -> Vec<String> {
    let program = match FluxProgram::parse(src) {
        Ok(p) => p,
        Err(ds) => return ds.iter().map(|d| d.render()).collect(),
    };
    match program.compile(&fixture()) {
        Ok(_) => Vec::new(),
        Err(ds) => ds.iter().map(|d| d.render()).collect(),
    }
}

// ---------------------------------------------------------------------
// Golden renders, one representative per failure class.
// ---------------------------------------------------------------------

#[test]
fn golden_static_diagnostics() {
    let goldens: &[(&str, &[&str])] = &[
        // F001: syntax — truncated statement and unknown keyword.
        ("delete", &["1:7: F001 expected a path"]),
        (
            "upsert <a/> into /r",
            &["1:1: F001 unknown statement keyword \"upsert\""],
        ),
        // F002: malformed XPath inside a path argument.
        ("delete /a[", &["1:8: F002 invalid path \"/a[\": missing ']'"]),
        // F003: malformed tree literal — unbalanced, then unparseable.
        ("insert <p><n> into /r", &["1:8: F003 unbalanced XML tree literal"]),
        (
            "insert <a b=/> into /r",
            &["1:8: F003 invalid tree literal: line 1, column 6: expected quote"],
        ),
        // F004: relative path outside a `for` body.
        (
            "delete ./x",
            &["1:8: F004 relative path \"./x\" is only allowed inside a `for` body"],
        ),
        // F005: shape — second line, pinning multi-line span tracking.
        (
            "insert <m/> into /r;\nset /r/s to \"x\"",
            &["2:5: F005 set target \"/r/s\" must end in a text() step"],
        ),
        // F006: write into a consumed subtree.
        (
            "delete /r/s;\nset /r/s/a/text() to \"v\"",
            &["2:5: F006 path \"/r/s/a/text()\" was consumed by an earlier `delete` statement"],
        ),
        // F007: double write to one text slot.
        (
            "set /r/s/text() to \"a\"; set /r/s/text() to \"b\"",
            &["1:29: F007 text slot \"/r/s/text()\" is already written by an earlier `set` statement"],
        ),
        // F008: move into the moved subtree.
        (
            "move /r/s into /r/s/x",
            &["1:16: F008 destination \"/r/s/x\" lies inside the moved subtree \"/r/s\""],
        ),
        // F009: root mutation.
        ("rename /. to z", &["1:8: F009 cannot rename the document root"]),
    ];
    for (src, want) in goldens {
        assert_eq!(static_renders(src), *want, "source: {src:?}");
    }
}

#[test]
fn golden_lowering_diagnostics() {
    let goldens: &[(&str, &[&str])] = &[
        // F010: strict match — a direct target matching nothing.
        ("delete /r/nope", &["1:8: F010 path \"/r/nope\" matched no node"]),
        // F011: kind guard — statically clean (the `.` anchor has no
        // text() step for the shape pass to see), dynamically a text
        // node cannot hold children.
        (
            "for /r/s[1]/a/text() do insert <m/> into . end",
            &["1:42: F011 insert destination \".\" cannot hold children"],
        ),
        // F012: ambiguous move destination.
        (
            "move /r/t into /r/s",
            &["1:16: F012 move destination \"/r/s\" is ambiguous (2 matches)"],
        ),
        // F020: statically invisible conflict (the `//s` delete is not
        // a literal path, so the sequence pass must let it through)
        // caught by the shadow-simulation validator.
        (
            "delete //s; set /r/s[1]/a/text() to \"v\"",
            &["1:1: F020 compiled log rejected by validator: conflicting writes: node n5 was already consumed by the batch"],
        ),
    ];
    for (src, want) in goldens {
        assert_eq!(compile_renders(src), *want, "source: {src:?}");
    }
}

#[test]
fn clean_programs_render_nothing() {
    assert!(static_renders("insert <m/> into /r/s; delete /r/t").is_empty());
    assert!(compile_renders("for /r/s do insert <m/> into . end").is_empty());
}

// ---------------------------------------------------------------------
// Robustness: the front end never panics, whatever the bytes.
// ---------------------------------------------------------------------

/// Valid programs the mutator starts from — every statement form, so
/// mutations explore every parser path.
const BASES: &[&str] = &[
    "insert <m><n>v</n></m> first into /r/s[2];",
    "delete /r/s; replace /r/t with <z>w</z>;",
    "rename /r/s to q; move /r/s/a after /r/t;",
    "set /r/s/a/text() to \"w\";",
    "for /r/s do insert <f/> into .; set ./a/text() to \"x\"; end",
    "# comment\ndelete /r/s[1]/@id;",
];

/// Apply one encoded edit to the byte buffer: overwrite, insert or
/// delete at a position derived from the edit value.
fn mutate(bytes: &mut Vec<u8>, edit: u64) {
    if bytes.is_empty() {
        bytes.push((edit % 256) as u8);
        return;
    }
    let pos = (edit as usize / 4) % bytes.len();
    let byte = ((edit >> 16) % 256) as u8;
    match edit % 3 {
        0 => bytes[pos] = byte,
        1 => bytes.insert(pos, byte),
        _ => {
            bytes.remove(pos);
        }
    }
}

props! {
    config = Config::with_cases(512);

    fn parser_never_panics_on_mutated_source(
        base in from_slice(BASES),
        edits in vecs(any_u64(), 0, 12),
    ) {
        let mut bytes = base.as_bytes().to_vec();
        for e in edits {
            mutate(&mut bytes, e);
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        // Any outcome is fine; panicking is not (the harness converts
        // panics into failures and shrinks the edit list).
        match FluxProgram::parse(&src) {
            Ok(p) => {
                let _ = p.check();
                let _ = p.compile(&fixture());
            }
            Err(ds) => prop_assert!(!ds.is_empty(), "error with no diagnostics"),
        }
    }
}
