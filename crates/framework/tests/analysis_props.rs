//! Property tests for the pairwise commutation oracle
//! (`op_pair_verdict`), on the hermetic `xupd-testkit` harness
//! (shrinking, seed-replayable).
//!
//! The oracle's contract is *structural*: `Commutes` promises that the
//! two single-op batches leave byte-identical documents and the same
//! per-op success pattern in either application order; `Conflicts`
//! promises a witness — some observable (bytes or success pattern)
//! genuinely diverges between the orders. Both directions are checked
//! here against randomly generated self-contained op pairs over random
//! trees. Labels are deliberately outside the pairwise contract (see
//! `framework::analysis`), so they are not compared.

use xupd_framework::analysis::{op_pair_verdict, PairVerdict};
use xupd_framework::mutations::{apply_log, LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_labelcore::LabelingScheme;
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::prop::{ints, Config};
use xupd_testkit::{prop_assert, prop_assume, props};
use xupd_workloads::docs;
use xupd_xmldom::{serialize_compact, NodeId, XmlTree};

/// Nodes an op may target or anchor on: everything except the document
/// node and the document element (whose deletion/sibling positions are
/// degenerate), restricted to elements and texts.
fn interior(tree: &XmlTree) -> Vec<NodeId> {
    let root = tree.root();
    let doc = tree.document_element();
    tree.ids_in_doc_order()
        .into_iter()
        .filter(|&id| id != root && Some(id) != doc)
        .filter(|&id| tree.kind(id).is_element() || tree.kind(id).is_text())
        .collect()
}

/// Decode one self-contained mutation from raw generator integers.
/// `slot` disambiguates the two ops of a pair (distinct `LogId`s and
/// names, so created material never coincides by accident).
fn decode_op(
    tree: &XmlTree,
    slot: u32,
    kind_tag: usize,
    sel: usize,
    place_tag: usize,
    anchor_sel: usize,
) -> Option<Mutation> {
    let pool = interior(tree);
    if pool.is_empty() {
        return None;
    }
    let target = pool[sel % pool.len()];
    let parents: Vec<NodeId> = {
        let mut v: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&id| tree.kind(id).is_element())
            .collect();
        if let Some(doc) = tree.document_element() {
            v.push(doc);
        }
        v
    };
    let place = match place_tag % 4 {
        0 | 1 if !parents.is_empty() => {
            let p = NodeRef::Node(parents[anchor_sel % parents.len()]);
            if place_tag % 4 == 0 {
                Place::FirstChildOf(p)
            } else {
                Place::LastChildOf(p)
            }
        }
        2 => Place::Before(NodeRef::Node(pool[anchor_sel % pool.len()])),
        _ => Place::After(NodeRef::Node(pool[anchor_sel % pool.len()])),
    };
    let tag = if slot == 0 { "pa" } else { "pb" };
    Some(match kind_tag {
        0 => Mutation::CreateElement {
            id: LogId(slot),
            name: format!("{tag}_el"),
            place,
        },
        1 => {
            let texts: Vec<NodeId> = pool
                .iter()
                .copied()
                .filter(|&id| tree.kind(id).is_text())
                .collect();
            if texts.is_empty() {
                return None;
            }
            Mutation::SetText {
                target: NodeRef::Node(texts[sel % texts.len()]),
                text: format!("{tag}_v{}", anchor_sel % 3),
            }
        }
        2 => Mutation::Delete {
            target: NodeRef::Node(target),
        },
        3 => Mutation::Replace {
            target: NodeRef::Node(target),
            id: LogId(slot),
            name: format!("{tag}_rep"),
        },
        _ => {
            if !tree.kind(target).is_element() {
                return None;
            }
            Mutation::MoveSubtree {
                target: NodeRef::Node(target),
                place,
            }
        }
    })
}

/// Apply `op` as its own single-op atomic batch: `true` on success,
/// `false` when the batch was rejected or rolled back (tree untouched
/// either way — pinned by the atomicity battery).
fn apply_one(tree: &mut XmlTree, scheme: &mut Qed, op: &Mutation) -> bool {
    let mut labeling = match scheme.label_tree(tree) {
        Ok(l) => l,
        Err(_) => return false,
    };
    let log = MutationLog::from(vec![op.clone()]);
    apply_log(tree, scheme, &mut labeling, &log).is_ok()
}

/// Run `first` then `second` from `base`, each as an atomic single-op
/// batch; failures roll back and the run continues. Returns the final
/// document bytes and the per-op success pattern.
fn run_order(base: &XmlTree, first: &Mutation, second: &Mutation) -> (String, [bool; 2]) {
    let mut tree = base.clone();
    let mut scheme = Qed::new();
    let ok1 = apply_one(&mut tree, &mut scheme, first);
    let ok2 = apply_one(&mut tree, &mut scheme, second);
    (serialize_compact(&tree), [ok1, ok2])
}

props! {
    config = Config::with_cases(128);

    /// `Commutes` is a proof obligation: both orders must leave
    /// byte-identical documents and the same success pattern.
    fn commuting_pairs_apply_identically_in_both_orders(
        seed in ints(0u64..5000),
        a_raw in (ints(0usize..5), ints(0usize..64), ints(0usize..4), ints(0usize..64)),
        b_raw in (ints(0usize..5), ints(0usize..64), ints(0usize..4), ints(0usize..64)),
    ) {
        let (a_kind, a_sel, a_place, a_anchor) = a_raw;
        let (b_kind, b_sel, b_place, b_anchor) = b_raw;
        let tree = docs::random_tree(seed, 14);
        let a = decode_op(&tree, 0, a_kind, a_sel, a_place, a_anchor);
        let b = decode_op(&tree, 1, b_kind, b_sel, b_place, b_anchor);
        prop_assume!(a.is_some() && b.is_some());
        let (a, b) = (a.expect("checked"), b.expect("checked"));
        let verdict = op_pair_verdict(&tree, &a, &b);
        prop_assume!(matches!(verdict, Ok(PairVerdict::Commutes)));

        let (bytes_ab, ok_ab) = run_order(&tree, &a, &b);
        let (bytes_ba, ok_ba) = run_order(&tree, &b, &a);
        prop_assert!(
            bytes_ab == bytes_ba,
            "Commutes but bytes diverge\n a = {a:?}\n b = {b:?}\n ab = {bytes_ab}\n ba = {bytes_ba}"
        );
        prop_assert!(
            ok_ab == [ok_ba[1], ok_ba[0]],
            "Commutes but success pattern diverges: ab {ok_ab:?} vs ba {ok_ba:?}\n a = {a:?}\n b = {b:?}"
        );
    }

    /// `Conflicts` is never a false alarm (for the move-free fragment):
    /// some witness — final bytes or the success pattern — genuinely
    /// differs between the two orders. Moves are excluded because two
    /// overlapping-extent moves can reassemble the same final document
    /// either way; the analyzer still (soundly) serializes them.
    fn conflicting_pairs_have_a_diverging_witness(
        seed in ints(5000u64..10000),
        a_raw in (ints(0usize..4), ints(0usize..64), ints(0usize..4), ints(0usize..64)),
        b_raw in (ints(0usize..4), ints(0usize..64), ints(0usize..4), ints(0usize..64)),
    ) {
        let (a_kind, a_sel, a_place, a_anchor) = a_raw;
        let (b_kind, b_sel, b_place, b_anchor) = b_raw;
        let tree = docs::random_tree(seed, 10);
        let a = decode_op(&tree, 0, a_kind, a_sel, a_place, a_anchor);
        let b = decode_op(&tree, 1, b_kind, b_sel, b_place, b_anchor);
        prop_assume!(a.is_some() && b.is_some());
        let (a, b) = (a.expect("checked"), b.expect("checked"));
        let verdict = op_pair_verdict(&tree, &a, &b);
        prop_assume!(matches!(verdict, Ok(PairVerdict::Conflicts(_))));

        let (bytes_ab, ok_ab) = run_order(&tree, &a, &b);
        let (bytes_ba, ok_ba) = run_order(&tree, &b, &a);
        let diverges = bytes_ab != bytes_ba || ok_ab != [ok_ba[1], ok_ba[0]];
        prop_assert!(
            diverges,
            "verdict {:?} but both orders agree (bytes {bytes_ab}, ok {ok_ab:?})\n a = {a:?}\n b = {b:?}",
            verdict
        );
    }
}
