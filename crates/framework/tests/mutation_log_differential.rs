//! Differential battery for the mutation-log batch API.
//!
//! For every registry scheme × several random scripts, the whole script
//! is translated into **one** [`MutationLog`] (`batch_of`) and applied
//! atomically (`apply_log_dyn`); the result must be indistinguishable
//! from the per-op `run_script_dyn` driver: identical final tree bytes,
//! identical label renderings, identical `DriveStats` totals. On top of
//! that, applying `invert(log)` must restore the pre-batch tree
//! byte-for-byte. Schemes are independent, so the battery fans out per
//! scheme on the `xupd-exec` pool and is `XUPD_THREADS`-invariant.
//!
//! `peak_label_bits` is deliberately excluded from the comparison: the
//! per-op driver checkpoints it every 25 *script ops* while the batch
//! driver checkpoints every 25 *mutations*, and one op can expand to
//! zero (skipped delete) or three (zigzag init) mutations. Every
//! monotonic total — inserts, deletes, relabeled, overflow_events, end
//! sizes — must still agree exactly.

use xupd_framework::driver::{run_script_dyn, DriveStats};
use xupd_framework::mutations::{apply_log_dyn, batch_of, invert};
use xupd_schemes::{registry, SchemeEntry};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::serialize_compact;

/// The stats fields both drivers must agree on (everything but peak).
#[derive(Debug, PartialEq)]
struct Totals {
    inserts: usize,
    deletes: usize,
    relabeled: u64,
    overflow_events: u64,
    end_mean_bits: f64,
    end_max_bits: u64,
}

impl From<DriveStats> for Totals {
    fn from(s: DriveStats) -> Self {
        Totals {
            inserts: s.inserts,
            deletes: s.deletes,
            relabeled: s.relabeled,
            overflow_events: s.overflow_events,
            end_mean_bits: s.end_mean_bits,
            end_max_bits: s.end_max_bits,
        }
    }
}

#[derive(Debug, PartialEq)]
struct Outcome {
    totals: Totals,
    labels: Vec<(usize, String)>,
    tree: String,
}

fn run_per_op(entry: &SchemeEntry, script: &Script, seed: u64, nodes: usize) -> Outcome {
    let mut session = entry.session();
    let mut tree = docs::random_tree(seed, nodes);
    session.label_tree(&tree).unwrap();
    let stats = run_script_dyn(&mut tree, session.as_mut(), script).unwrap();
    Outcome {
        totals: stats.into(),
        labels: session.labels_display(),
        tree: serialize_compact(&tree),
    }
}

fn run_batched(entry: &SchemeEntry, script: &Script, seed: u64, nodes: usize) -> Outcome {
    let mut session = entry.session();
    let mut tree = docs::random_tree(seed, nodes);
    session.label_tree(&tree).unwrap();
    let original = serialize_compact(&tree);

    let log = batch_of(script, &tree).unwrap();
    let undo = invert(&log, &tree).unwrap();
    let stats = apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap();
    let outcome = Outcome {
        totals: stats.into(),
        labels: session.labels_display(),
        tree: serialize_compact(&tree),
    };

    // undo restores the pre-batch document byte-for-byte (fresh arena
    // ids and labels are expected; the serialised document is not)
    apply_log_dyn(&mut tree, session.as_mut(), &undo).unwrap();
    assert_eq!(
        serialize_compact(&tree),
        original,
        "{}: invert did not restore the tree",
        entry.name()
    );
    outcome
}

fn diff_scripts(kind: ScriptKind, ops: usize, seed: u64) {
    let nodes = 90;
    let script = Script::generate(kind, ops, nodes, seed);
    let entries = registry();
    let outcomes = xupd_exec::par_map(&entries, |entry| {
        (
            entry.name(),
            run_batched(entry, &script, seed, nodes),
            run_per_op(entry, &script, seed, nodes),
        )
    });

    assert_eq!(outcomes.len(), 17, "whole roster covered");
    for (name, batched, per_op) in &outcomes {
        assert_eq!(
            batched.totals, per_op.totals,
            "{name}: drive totals diverged under {kind:?}"
        );
        assert_eq!(
            batched.labels, per_op.labels,
            "{name}: final labeling diverged under {kind:?}"
        );
        assert_eq!(
            batched.tree, per_op.tree,
            "{name}: final tree diverged under {kind:?}"
        );
    }
}

#[test]
fn batched_matches_per_op_random() {
    diff_scripts(ScriptKind::Random, 70, 101);
    diff_scripts(ScriptKind::Random, 70, 102);
}

#[test]
fn batched_matches_per_op_skewed() {
    diff_scripts(ScriptKind::Skewed, 60, 111);
}

#[test]
fn batched_matches_per_op_mixed_delete() {
    diff_scripts(ScriptKind::MixedDelete, 90, 121);
    diff_scripts(ScriptKind::MixedDelete, 90, 122);
}

#[test]
fn batched_matches_per_op_zigzag() {
    diff_scripts(ScriptKind::Zigzag, 60, 131);
}

#[test]
fn batched_matches_per_op_append_only() {
    diff_scripts(ScriptKind::AppendOnly, 50, 141);
}
