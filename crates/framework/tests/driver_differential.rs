//! Differential regression test for the incremental element pool.
//!
//! The production driver maintains the live-element pool incrementally
//! across ops. This test replays the same scripts through a reference
//! driver that recomputes the pool with a full preorder scan before every
//! op (the pre-optimisation behaviour, kept here as the executable
//! specification of the op-addressing semantics) and asserts that both
//! produce identical [`DriveStats`] and identical final labelings for
//! every Figure 7 scheme. Schemes are independent, so the battery fans
//! out per scheme on the `xupd-exec` pool.

use xupd_framework::driver::{run_script_dyn, DriveStats};
use xupd_labelcore::DynScheme;
use xupd_schemes::{registry_figure7, SchemeEntry};
use xupd_workloads::{docs, Script, ScriptOp};
use xupd_xmldom::{NodeId, NodeKind, TreeError, XmlTree};

/// The pre-optimisation driver: element pool rebuilt from scratch before
/// every op. Semantics must match `run_script_dyn` exactly.
fn run_script_reference(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    script: &Script,
) -> Result<DriveStats, TreeError> {
    const CHECKPOINT_EVERY: usize = 25;
    let mut stats = DriveStats::default();
    let mut zig: Option<(NodeId, NodeId)> = None;
    let mut zig_step = 0usize;

    let apply_insert = |tree: &XmlTree,
                            session: &mut dyn DynScheme,
                            node: NodeId,
                            stats: &mut DriveStats|
     -> Result<(), TreeError> {
        let report = session.on_insert(tree, node)?;
        stats.inserts += 1;
        stats.relabeled += report.relabeled.len() as u64;
        if report.overflowed {
            stats.overflow_events += 1;
        }
        Ok(())
    };

    for (op_idx, op) in script.ops.iter().enumerate() {
        let pool: Vec<NodeId> = tree
            // lint:allow(R6): the reference per-op-rebuild driver the incremental pool is differentially tested against
            .preorder()
            .filter(|&n| tree.kind(n).is_element())
            .collect();
        if pool.is_empty() {
            break;
        }
        let resolve = |i: usize| pool[i % pool.len()];
        match *op {
            ScriptOp::InsertBefore(i) => {
                let target = resolve(i);
                let node = tree.create(NodeKind::element("u"));
                if tree.parent(target) == Some(tree.root()) || tree.parent(target).is_none() {
                    // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                    tree.prepend_child(target, node)?;
                } else {
                    // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                    tree.insert_before(target, node)?;
                }
                apply_insert(tree, session, node, &mut stats)?;
            }
            ScriptOp::InsertAfter(i) if i == usize::MAX => {
                let (a, b) = match zig {
                    Some((a, b))
                        if tree.is_alive(a)
                            && tree.is_alive(b)
                            && tree.next_sibling(a) == Some(b) =>
                    {
                        (a, b)
                    }
                    _ => {
                        let base = resolve(pool.len() / 2);
                        let c1 = tree.create(NodeKind::element("u"));
                        // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                        tree.append_child(base, c1)?;
                        apply_insert(tree, session, c1, &mut stats)?;
                        let c2 = tree.create(NodeKind::element("u"));
                        // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                        tree.append_child(base, c2)?;
                        apply_insert(tree, session, c2, &mut stats)?;
                        (c1, c2)
                    }
                };
                let node = tree.create(NodeKind::element("u"));
                // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                tree.insert_after(a, node)?;
                apply_insert(tree, session, node, &mut stats)?;
                zig = Some(if zig_step % 2 == 0 { (a, node) } else { (node, b) });
                zig_step += 1;
            }
            ScriptOp::InsertAfter(i) => {
                let target = resolve(i);
                let node = tree.create(NodeKind::element("u"));
                if tree.parent(target) == Some(tree.root()) || tree.parent(target).is_none() {
                    // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                    tree.append_child(target, node)?;
                } else {
                    // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                    tree.insert_after(target, node)?;
                }
                apply_insert(tree, session, node, &mut stats)?;
            }
            ScriptOp::PrependChild(i) => {
                let target = resolve(i);
                let node = tree.create(NodeKind::element("u"));
                // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                tree.prepend_child(target, node)?;
                apply_insert(tree, session, node, &mut stats)?;
            }
            ScriptOp::AppendChild(i) => {
                let target = resolve(i);
                let node = tree.create(NodeKind::element("u"));
                // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                tree.append_child(target, node)?;
                apply_insert(tree, session, node, &mut stats)?;
            }
            ScriptOp::DeleteSubtree(i) => {
                let target = resolve(i);
                if Some(target) == tree.document_element() || pool.len() <= 2 {
                    continue;
                }
                session.on_delete(tree, target);
                // lint:allow(R8): the reference per-op driver the MutationLog batch path is differentially tested against
                tree.remove_subtree(target)?;
                stats.deletes += 1;
            }
        }
        if op_idx % CHECKPOINT_EVERY == 0 {
            stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
        }
    }
    stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
    stats.end_mean_bits = session.mean_bits();
    stats.end_max_bits = session.max_bits();
    Ok(stats)
}

/// One run's observable outcome: the drive evidence plus every final
/// label rendered to its display form.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: DriveStats,
    labels: Vec<(usize, String)>,
}

fn run_one(entry: &SchemeEntry, script: &Script, seed: u64, nodes: usize, incremental: bool) -> Outcome {
    let mut session = entry.session();
    let mut tree = docs::random_tree(seed, nodes);
    session.label_tree(&tree).unwrap();
    let stats = if incremental {
        run_script_dyn(&mut tree, session.as_mut(), script).unwrap()
    } else {
        run_script_reference(&mut tree, session.as_mut(), script).unwrap()
    };
    Outcome {
        stats,
        labels: session.labels_display(),
    }
}

fn diff_scripts(kind: xupd_workloads::ScriptKind, ops: usize, seed: u64) {
    let nodes = 110;
    let script = Script::generate(kind, ops, nodes, seed);
    let entries = registry_figure7();
    let outcomes = xupd_exec::par_map(&entries, |entry| {
        (
            entry.name(),
            run_one(entry, &script, seed, nodes, true),
            run_one(entry, &script, seed, nodes, false),
        )
    });

    assert_eq!(outcomes.len(), 12);
    for (name, incremental, reference) in &outcomes {
        assert_eq!(
            incremental.stats, reference.stats,
            "{name}: drive stats diverged under {kind:?}"
        );
        assert_eq!(
            incremental.labels, reference.labels,
            "{name}: final labeling diverged under {kind:?}"
        );
    }
}

#[test]
fn incremental_pool_matches_per_op_rebuild_random() {
    diff_scripts(xupd_workloads::ScriptKind::Random, 60, 11);
    diff_scripts(xupd_workloads::ScriptKind::Random, 60, 12);
}

#[test]
fn incremental_pool_matches_per_op_rebuild_skewed() {
    diff_scripts(xupd_workloads::ScriptKind::Skewed, 60, 21);
}

#[test]
fn incremental_pool_matches_per_op_rebuild_mixed_delete() {
    diff_scripts(xupd_workloads::ScriptKind::MixedDelete, 80, 31);
    diff_scripts(xupd_workloads::ScriptKind::MixedDelete, 80, 32);
}

#[test]
fn incremental_pool_matches_per_op_rebuild_zigzag() {
    diff_scripts(xupd_workloads::ScriptKind::Zigzag, 60, 41);
}
