//! Differential soundness suite for `framework::analysis`.
//!
//! Every certificate the analyzer issues is checked against sequential
//! in-order application across the whole 17-scheme roster:
//!
//! * [`apply_plan_dyn`] (skip-revalidation + redundant-write drops +
//!   canonical reorder when the scheme is order-independent) must match
//!   `apply_log_dyn` byte-for-byte: document bytes, doc-order labels,
//!   and work stats (`peak_label_bits` excepted — its checkpoints
//!   sample different instants, exactly as PR 6 established).
//! * [`apply_plan_coalesced_dyn`] (plus nil-component cancellation)
//!   must match on document bytes and labels; its work counters
//!   intentionally shrink — that is the certificate's point.
//! * [`par_apply_independent`] must give, for every shard, exactly what
//!   sequentially applying that component's sub-log to a fresh clone
//!   gives — for *every* scheme, order-independent or not.
//!
//! The suite also pins the capability claims themselves: the roster's
//! `order_independent` split is asserted, and the canonical order is
//! required to genuinely permute on a multi-component batch (a reorder
//! "certificate" that always echoes input order would be vacuous).

use std::collections::BTreeMap;

use xupd_framework::analysis::{analyze, apply_plan_coalesced_dyn, apply_plan_dyn, par_apply_independent};
use xupd_framework::driver::DriveStats;
use xupd_framework::mutations::{apply_log_dyn, batch_of, LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_labelcore::DynScheme;
use xupd_schemes::registry;
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{parse, serialize_compact, NodeId, NodeKind, XmlTree};

/// Labels rendered in document order (arena ids differ between runs
/// that create nodes in different orders, so id-order comparison would
/// be meaningless).
fn doc_order_labels(tree: &XmlTree, session: &dyn DynScheme) -> Vec<String> {
    let by_id: BTreeMap<usize, String> = session.labels_display().into_iter().collect();
    tree.ids_in_doc_order()
        .into_iter()
        .map(|n| by_id.get(&n.index()).cloned().unwrap_or_default())
        .collect()
}

fn assert_stats_eq_minus_peak(a: &DriveStats, b: &DriveStats, ctx: &str) {
    assert_eq!(a.inserts, b.inserts, "{ctx}: inserts");
    assert_eq!(a.deletes, b.deletes, "{ctx}: deletes");
    assert_eq!(a.relabeled, b.relabeled, "{ctx}: relabeled");
    assert_eq!(a.overflow_events, b.overflow_events, "{ctx}: overflow");
    assert_eq!(a.end_mean_bits, b.end_mean_bits, "{ctx}: end_mean_bits");
    assert_eq!(a.end_max_bits, b.end_max_bits, "{ctx}: end_max_bits");
}

struct Outcome {
    bytes: String,
    labels: Vec<String>,
    stats: DriveStats,
}

fn run_seq(
    factory: fn() -> Box<dyn DynScheme>,
    base: &XmlTree,
    log: &MutationLog,
) -> Outcome {
    let mut tree = base.clone();
    let mut session = factory();
    session.label_tree(&tree).unwrap();
    let stats = apply_log_dyn(&mut tree, session.as_mut(), log).unwrap();
    Outcome {
        bytes: serialize_compact(&tree),
        labels: doc_order_labels(&tree, session.as_ref()),
        stats,
    }
}

/// Run the full certificate battery for one (base, log) pair across
/// every scheme in the roster.
fn certificate_battery(base: &XmlTree, log: &MutationLog, ctx: &str) {
    let plan = analyze(log, base).unwrap();
    let entries = registry();
    assert_eq!(entries.len(), 17);
    let checked = xupd_exec::par_map(&entries, |entry| {
        let seq = run_seq(entry.factory, base, log);

        // apply_plan_dyn: byte-identical on every observable.
        let mut tree = base.clone();
        let mut session = (entry.factory)();
        session.label_tree(&tree).unwrap();
        let stats = apply_plan_dyn(&mut tree, session.as_mut(), log, &plan).unwrap();
        let name = entry.name();
        assert_eq!(seq.bytes, serialize_compact(&tree), "{ctx}/{name}: plan bytes");
        assert_eq!(
            seq.labels,
            doc_order_labels(&tree, session.as_ref()),
            "{ctx}/{name}: plan labels"
        );
        assert_stats_eq_minus_peak(&seq.stats, &stats, &format!("{ctx}/{name}: plan"));

        // apply_plan_coalesced_dyn: bytes and labels still identical;
        // work counters may legitimately shrink.
        let mut tree = base.clone();
        let mut session = (entry.factory)();
        session.label_tree(&tree).unwrap();
        let co_stats = apply_plan_coalesced_dyn(&mut tree, session.as_mut(), log, &plan).unwrap();
        assert_eq!(seq.bytes, serialize_compact(&tree), "{ctx}/{name}: coalesced bytes");
        assert_eq!(
            seq.labels,
            doc_order_labels(&tree, session.as_ref()),
            "{ctx}/{name}: coalesced labels"
        );
        assert!(
            co_stats.inserts <= seq.stats.inserts && co_stats.deletes <= seq.stats.deletes,
            "{ctx}/{name}: coalescing may only shed work"
        );

        // par_apply_independent: every shard byte-identical to solo
        // sequential application of its own sub-log.
        let shards = par_apply_independent(base, entry.factory, log, &plan).unwrap();
        assert_eq!(shards.len(), plan.components.len(), "{ctx}/{name}: shard count");
        let sublogs = plan.independent_sublogs(log).unwrap();
        for (shard, sub) in shards.iter().zip(&sublogs) {
            let solo = run_seq(entry.factory, base, sub);
            assert_eq!(solo.bytes, serialize_compact(&shard.tree), "{ctx}/{name}: shard bytes");
            let by_id: BTreeMap<usize, String> = shard.labels.iter().cloned().collect();
            let shard_labels: Vec<String> = shard
                .tree
                .ids_in_doc_order()
                .into_iter()
                .map(|n| by_id.get(&n.index()).cloned().unwrap_or_default())
                .collect();
            assert_eq!(solo.labels, shard_labels, "{ctx}/{name}: shard labels");
            assert_eq!(solo.stats, shard.stats, "{ctx}/{name}: shard stats");
        }
        name
    });
    assert_eq!(checked.len(), 17);
}

fn script_battery(kind: ScriptKind, ops: usize, seed: u64) {
    let nodes = 60;
    let tree = docs::random_tree(seed, nodes);
    let script = Script::generate(kind, ops, nodes, seed);
    let log = batch_of(&script, &tree).unwrap();
    certificate_battery(&tree, &log, &format!("{kind:?}/{seed}"));
}

#[test]
fn random_scripts_roundtrip_all_schemes() {
    script_battery(ScriptKind::Random, 40, 9101);
    script_battery(ScriptKind::Random, 40, 9102);
}

#[test]
fn delete_heavy_scripts_roundtrip_all_schemes() {
    script_battery(ScriptKind::MixedDelete, 60, 9201);
    script_battery(ScriptKind::MixedDelete, 60, 9202);
}

#[test]
fn append_scripts_roundtrip_all_schemes() {
    script_battery(ScriptKind::AppendOnly, 30, 9301);
}

// ---------------------------------------------------------------------
// Hand-built multi-component batch: certificates must be non-trivial.
// ---------------------------------------------------------------------

fn sections_doc() -> XmlTree {
    parse(concat!(
        "<r>",
        "<s><k>a</k><k>b</k></s>",
        "<s><k>c</k><k>d</k></s>",
        "<s><k>e</k><k>f</k></s>",
        "<s><k>g</k><k>h</k></s>",
        "</r>"
    ))
    .unwrap()
}

fn elems(t: &XmlTree, name: &str) -> Vec<NodeId> {
    t.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(t.kind(id), NodeKind::Element { name: e } if e == name))
        .collect()
}

fn texts(t: &XmlTree) -> Vec<NodeId> {
    t.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(t.kind(id), NodeKind::Text { .. }))
        .collect()
}

/// Disjoint-section batch with a redundant write and a cancelling
/// create+delete component.
fn sections_log(t: &XmlTree) -> MutationLog {
    let s = elems(t, "s");
    let k = elems(t, "k");
    let tx = texts(t);
    MutationLog::from(vec![
        // Section 3: text edit, then a no-op rewrite of section 0's
        // first text node ("a" -> "a", provably redundant).
        Mutation::SetText {
            target: NodeRef::Node(tx[6]),
            text: "G".into(),
        },
        Mutation::SetText {
            target: NodeRef::Node(tx[0]),
            text: "a".into(),
        },
        // Section 1: create under <s>, delete its first <k>.
        Mutation::CreateElement {
            id: LogId(0),
            name: "n".into(),
            place: Place::LastChildOf(NodeRef::Node(s[1])),
        },
        Mutation::Delete {
            target: NodeRef::Node(k[2]),
        },
        // Section 2: a scratch subtree that cancels to nothing.
        Mutation::CreateElement {
            id: LogId(1),
            name: "tmp".into(),
            place: Place::LastChildOf(NodeRef::Node(s[2])),
        },
        Mutation::CreateElement {
            id: LogId(2),
            name: "inner".into(),
            place: Place::FirstChildOf(NodeRef::New(LogId(1))),
        },
        Mutation::Delete {
            target: NodeRef::New(LogId(1)),
        },
        // Section 0: structural edit far from the no-op text write.
        Mutation::CreateElement {
            id: LogId(3),
            name: "m".into(),
            place: Place::FirstChildOf(NodeRef::Node(s[0])),
        },
    ])
}

#[test]
fn certificates_are_nontrivial_and_sound() {
    let t = sections_doc();
    let log = sections_log(&t);
    let plan = analyze(&log, &t).unwrap();

    // Non-trivial: several independent components, a genuine
    // permutation, a redundant write, and a nil component.
    assert!(plan.components.len() >= 4, "components: {:?}", plan.components);
    let identity: Vec<usize> = (0..log.len()).collect();
    assert_ne!(plan.canonical, identity, "canonical order must permute");
    assert_eq!(plan.redundant, vec![1]);
    assert_eq!(plan.nil_components.len(), 1);

    certificate_battery(&t, &log, "sections");
}

#[test]
fn roster_capability_split_is_pinned() {
    // The order-independent claims are scheme code; this differential
    // suite is what licenses them. Pin the exact split so a new or
    // changed scheme must consciously re-justify its claim here.
    let mut independent = Vec::new();
    let mut sensitive = Vec::new();
    let mut neutral = Vec::new();
    for entry in registry() {
        let session = entry.session();
        if session.order_independent() {
            independent.push(entry.name());
        } else {
            sensitive.push(entry.name());
        }
        if session.cancellation_neutral() {
            // the optimizer only consults the flag when both hold, so a
            // neutral-but-order-sensitive claim would be dead code
            assert!(
                session.order_independent(),
                "{}: cancellation_neutral without order_independent",
                entry.name()
            );
            neutral.push(entry.name());
        }
    }
    assert_eq!(
        sensitive,
        vec!["XPath Accelerator", "XRel", "QRS", "Prime"],
        "order-sensitive schemes"
    );
    assert_eq!(independent.len(), 13, "order-independent schemes");
    // Sector (interval respacing), DeweyID and DLN (sibling renumber on
    // tight inserts) are order-independent but NOT cancellation-neutral:
    // their insert path can rewrite surviving neighbours, so a cancelled
    // create+delete leaves observable residue.
    assert_eq!(
        neutral,
        vec![
            "Ordpath",
            "LSDX",
            "ImprovedBinary",
            "QED",
            "CDQS",
            "Vector",
            "CDBS",
            "Com-D",
            "DDE",
            "QED∘Containment",
        ],
        "cancellation-neutral schemes"
    );
}
