//! Differential soundness suite for `framework::querycache`.
//!
//! The incremental maintenance contract is absolute: after any absorbed
//! batch, every registered query's cached rows and strings must be
//! byte-identical to a from-scratch evaluation against the current
//! tree. The suite drives a standalone [`QueryCache`] through mixed
//! batch sequences (structural scripts, localized hand-built edits,
//! text-only rewrites, redundant writes, empty logs) across the whole
//! 17-scheme roster on the `xupd-exec` pool — each scheme computes its
//! own `effective` set from its own `cancellation_neutral` claim, so
//! the cache sees exactly what that scheme's optimizer would feed it.
//!
//! Beyond agreement, the suite pins that the classification lattice is
//! non-trivial (a fixed scenario must produce real counts of all three
//! classes — a cache that classified everything "dirty" would pass the
//! agreement check while delivering zero speedup) and, via the
//! shrinking property harness, that a deliberately corrupted
//! classification (forcing "unaffected" on an affected query) is
//! *caught* by the same byte-identity check — evidence the oracle has
//! teeth.

use xupd_encoding::{parse_xpath, EncodedDocument, XPathExpr};
use xupd_framework::analysis::analyze;
use xupd_framework::mutations::{apply_log_dyn, batch_of, LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_framework::querycache::{QueryCache, QueryClass};
use xupd_labelcore::{DynScheme, SchemeSession};
use xupd_schemes::prefix::qed::Qed;
use xupd_schemes::registry;
use xupd_testkit::prop::{self, Config, Outcome};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{NodeId, NodeKind, XmlTree};

/// The query roster: (expression, want_strings). Spans the lattice —
/// fully-named repair-safe paths, attribute steps, wildcard and text()
/// tests (not name-safe), positional predicates on child and descendant
/// axes, and upward/lateral axes that can never be repaired.
fn roster() -> Vec<(&'static str, bool)> {
    vec![
        ("//item", false),
        ("//item", true),
        ("/site/people//name", true),
        ("//person/name", false),
        ("//item/@id", false),
        ("/site/regions/*", false),
        ("//description/text()", true),
        ("//item[@id='item0_0']", true),
        ("/site/open_auctions/open_auction[2]", false),
        ("/site/descendant::item[3]", false),
        ("//name/following-sibling::*", false),
        ("//quantity/..", true),
    ]
}

fn parsed_roster() -> Vec<(XPathExpr, bool)> {
    roster()
        .into_iter()
        .map(|(e, ws)| (parse_xpath(e).unwrap(), ws))
        .collect()
}

/// From-scratch oracle: encode the current tree fresh and evaluate
/// every expression against it. Preorder rows are scheme-independent,
/// so any scheme works as the oracle encoding; strings come from the
/// same `string_value` the cache serves.
fn fresh_eval(exprs: &[(XPathExpr, bool)], tree: &XmlTree) -> Vec<(Vec<usize>, Vec<String>)> {
    let doc = EncodedDocument::encode(Qed::new(), tree).unwrap();
    let mut out = Vec::with_capacity(exprs.len());
    for (e, want_strings) in exprs {
        // lint:allow(R10): the differential oracle must pay full re-evaluation
        let rows = e.evaluate(&doc);
        let strings = if *want_strings {
            rows.iter().map(|&r| doc.string_value(r)).collect()
        } else {
            Vec::new()
        };
        out.push((rows, strings));
    }
    out
}

fn assert_cache_matches(cache: &QueryCache, exprs: &[(XPathExpr, bool)], tree: &XmlTree, ctx: &str) {
    let oracle = fresh_eval(exprs, tree);
    for (q, (rows, strings)) in oracle.iter().enumerate() {
        assert_eq!(cache.rows(q), rows.as_slice(), "{ctx}: query {q} rows");
        assert_eq!(cache.strings(q), strings.as_slice(), "{ctx}: query {q} strings");
    }
}

/// All alive text-node ids in document order.
fn text_ids(tree: &XmlTree) -> Vec<NodeId> {
    tree.ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(tree.kind(id), NodeKind::Text { .. }))
        .collect()
}

/// A text-only batch: rewrite every `stride`-th text node; when
/// `redundant`, write back the value already held (certified no-op).
fn text_log(tree: &XmlTree, stride: usize, redundant: bool) -> MutationLog {
    let ids = text_ids(tree);
    let ops: Vec<Mutation> = ids
        .iter()
        .step_by(stride.max(1))
        .map(|&id| {
            let text = if redundant {
                match tree.kind(id) {
                    NodeKind::Text { value } => value.clone(),
                    _ => String::new(),
                }
            } else {
                format!("rewritten-{}", id.index())
            };
            Mutation::SetText {
                target: NodeRef::Node(id),
                text,
            }
        })
        .collect();
    MutationLog::from(ops)
}

/// A localized structural batch: one new <item> (with a name leaf)
/// prepended inside the first <africa> region — touches one region
/// extent and nothing else, the shape repair is built for.
fn localized_log(tree: &XmlTree) -> MutationLog {
    let africa = tree
        .ids_in_doc_order()
        .into_iter()
        .find(|&id| matches!(tree.kind(id), NodeKind::Element { name } if name == "africa"))
        .unwrap();
    MutationLog::from(vec![
        Mutation::CreateElement {
            id: LogId(0),
            name: "item".to_string(),
            place: Place::FirstChildOf(NodeRef::Node(africa)),
        },
        Mutation::CreateElement {
            id: LogId(1),
            name: "name".to_string(),
            place: Place::FirstChildOf(NodeRef::New(LogId(0))),
        },
    ])
}

/// A tail edit: one new element inside the *last* open auction. Every
/// query whose results precede the auctions section keeps its rows at
/// stable preorder positions — the unaffected sweet spot.
fn tail_log(tree: &XmlTree) -> MutationLog {
    let last_auction = tree
        .ids_in_doc_order()
        .into_iter()
        .filter(|&id| matches!(tree.kind(id), NodeKind::Element { name } if name == "open_auction"))
        .last()
        .unwrap();
    MutationLog::from(vec![Mutation::CreateElement {
        id: LogId(0),
        name: "note".to_string(),
        place: Place::FirstChildOf(NodeRef::Node(last_auction)),
    }])
}

/// Drive one scheme through the full batch sequence, checking
/// byte-identity after every absorb. Returns the per-class tallies.
fn drive_scheme(
    session: &mut dyn DynScheme,
    base: &XmlTree,
    exprs: &[(XPathExpr, bool)],
    ctx: &str,
) -> (usize, usize, usize) {
    let mut tree = base.clone();
    session.label_tree(&tree).unwrap();
    let mut cache = QueryCache::new();
    for (e, ws) in exprs {
        cache.register(e, *ws, &tree).unwrap();
    }
    assert_cache_matches(&cache, exprs, &tree, &format!("{ctx}/initial"));

    let mut tally = (0usize, 0usize, 0usize);
    let mut round = 0usize;
    let mut absorb = |log: &MutationLog,
                      tree: &mut XmlTree,
                      session: &mut dyn DynScheme,
                      cache: &mut QueryCache,
                      tag: &str| {
        round += 1;
        let plan = analyze(log, tree).unwrap();
        let effective = plan.execution_order(false, session.cancellation_neutral());
        apply_log_dyn(tree, session, log).unwrap();
        let impact = cache.absorb(log, &plan, &effective, tree).unwrap();
        tally.0 += impact.unaffected;
        tally.1 += impact.repaired;
        tally.2 += impact.rebuilt;
        assert_cache_matches(cache, exprs, tree, &format!("{ctx}/round{round}-{tag}"));
    };

    // 1. localized structural edit (the repair sweet spot)
    absorb(&localized_log(&tree), &mut tree, session, &mut cache, "localized");
    // 2. text-only rewrite sweep
    absorb(&text_log(&tree, 3, false), &mut tree, session, &mut cache, "text");
    // 3. random structural script
    let script = Script::generate(ScriptKind::Random, 25, tree.len(), 4242);
    let log = batch_of(&script, &tree).unwrap();
    absorb(&log, &mut tree, session, &mut cache, "random");
    // 4. redundant text writes (zero effective ops)
    absorb(&text_log(&tree, 2, true), &mut tree, session, &mut cache, "redundant");
    // 5. empty batch
    absorb(&MutationLog::from(Vec::new()), &mut tree, session, &mut cache, "empty");
    // 6. delete-heavy script
    let script = Script::generate(ScriptKind::MixedDelete, 30, tree.len(), 4243);
    let log = batch_of(&script, &tree).unwrap();
    absorb(&log, &mut tree, session, &mut cache, "deletes");

    tally
}

#[test]
fn cached_results_match_fresh_eval_across_roster() {
    let base = docs::xmark_like(31, 72);
    let exprs = parsed_roster();
    let entries = registry();
    assert_eq!(entries.len(), 17);
    let tallies = xupd_exec::par_map(&entries, |entry| {
        let mut session = entry.session();
        let name = entry.name();
        drive_scheme(session.as_mut(), &base, &exprs, name)
    });
    assert_eq!(tallies.len(), 17);
    for (unaffected, repaired, rebuilt) in tallies {
        // every run must exercise the whole lattice, not degenerate to
        // one class
        assert!(unaffected > 0, "no unaffected outcomes");
        assert!(repaired > 0, "no repaired outcomes");
        assert!(rebuilt > 0, "no rebuilt outcomes");
    }
}

#[test]
fn classification_counts_are_pinned_on_fixed_scenario() {
    // One tail insert against the fixed document, Qed effective set:
    // the per-query classes are deterministic — pin them so a
    // regression that silently downgrades everything to "dirty" (still
    // correct, zero speedup) fails loudly. The edit sits in the last
    // auction, so queries over the earlier regions/people sections
    // keep position-stable rows.
    let base = docs::xmark_like(31, 72);
    let exprs = parsed_roster();
    let mut session: Box<dyn DynScheme> = Box::new(SchemeSession::new(Qed::new()));
    let mut tree = base.clone();
    session.label_tree(&tree).unwrap();
    let mut cache = QueryCache::new();
    for (e, ws) in &exprs {
        cache.register(e, *ws, &tree).unwrap();
    }
    let log = tail_log(&tree);
    let plan = analyze(&log, &tree).unwrap();
    let effective = plan.execution_order(false, session.cancellation_neutral());
    apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap();
    let impact = cache.absorb(&log, &plan, &effective, &tree).unwrap();
    assert!(!impact.text_only);
    assert!(
        impact.unaffected >= 2,
        "queries clear of the touched region must be kept: {impact:?}"
    );
    assert!(
        impact.repaired >= 3,
        "repair-safe queries over the touched region must be repaired: {impact:?}"
    );
    assert!(
        impact.rebuilt >= 2,
        "upward/lateral and subtree-positional queries must rebuild: {impact:?}"
    );
    assert_eq!(
        impact.classes.len(),
        exprs.len(),
        "one class per registered query"
    );
    // the lateral-axis and descendant-positional queries can never be
    // repaired
    let never_repair = [
        "/site/descendant::item[3]",
        "//name/following-sibling::*",
        "//quantity/..",
    ];
    for (q, (text, _)) in roster().iter().enumerate() {
        if never_repair.contains(text) {
            assert_ne!(
                impact.classes[q],
                QueryClass::Repaired,
                "{text} must not be classified repairable"
            );
        }
    }
    assert_cache_matches(&cache, &exprs, &tree, "pinned");

    // a text-only follow-up: rows never move, only strings refresh
    let log = text_log(&tree, 5, false);
    let plan = analyze(&log, &tree).unwrap();
    let effective = plan.execution_order(false, session.cancellation_neutral());
    apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap();
    let impact = cache.absorb(&log, &plan, &effective, &tree).unwrap();
    assert!(impact.text_only);
    assert_eq!(impact.rebuilt, 0, "text batches never rebuild: {impact:?}");
    assert!(impact.unaffected > 0);
    assert_cache_matches(&cache, &exprs, &tree, "pinned-text");
}

// ---------------------------------------------------------------------
// Corrupted classification must be caught by the byte-identity oracle.
// ---------------------------------------------------------------------

/// Force the "unaffected" class on `//item` (strings cached), then
/// apply an edit that inserts an item at a generated position. The
/// stale cache must disagree with fresh evaluation — if it doesn't,
/// the differential harness has no teeth and this property fails.
#[test]
fn corrupted_classification_is_caught() {
    let gen = prop::ints(0usize..4);
    prop::check(
        "querycache_corrupted_classification_is_caught",
        &Config::with_cases(24),
        &gen,
        |region_idx| {
            let tree0 = docs::xmark_like(77, 64);
            let regions: Vec<NodeId> = tree0
                .ids_in_doc_order()
                .into_iter()
                .filter(|&id| {
                    matches!(tree0.kind(id), NodeKind::Element { name }
                        if ["africa", "asia", "europe", "namerica"].contains(&name.as_str()))
                })
                .collect();
            let mut tree = tree0.clone();
            let mut session: Box<dyn DynScheme> = Box::new(SchemeSession::new(Qed::new()));
            session.label_tree(&tree).unwrap();
            let mut cache = QueryCache::new();
            let expr = parse_xpath("//item").unwrap();
            let q = cache.register(&expr, true, &tree).unwrap();
            let before = cache.rows(q).to_vec();

            // corrupt: this query now always claims "unaffected"
            cache.force_unaffected(q, true);

            let log = MutationLog::from(vec![Mutation::CreateElement {
                id: LogId(0),
                name: "item".to_string(),
                place: Place::FirstChildOf(NodeRef::Node(regions[region_idx])),
            }]);
            let plan = analyze(&log, &tree).unwrap();
            let effective = plan.execution_order(false, session.cancellation_neutral());
            apply_log_dyn(&mut tree, session.as_mut(), &log).unwrap();
            let impact = cache.absorb(&log, &plan, &effective, &tree).unwrap();
            if impact.classes[q] != QueryClass::Unaffected {
                return Outcome::Fail("forced class was not honored".to_string());
            }

            // the corrupted cache must now be observably wrong
            let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
            // oracle re-evaluation inside the corruption check
            let fresh = expr.evaluate(&doc);
            if fresh.len() != before.len() + 1 {
                return Outcome::Fail(format!(
                    "insert must grow //item: {} -> {}",
                    before.len(),
                    fresh.len()
                ));
            }
            if cache.rows(q) == fresh.as_slice() {
                return Outcome::Fail(
                    "corrupted classification went undetected: cached rows \
                     match fresh evaluation despite a skipped repair"
                        .to_string(),
                );
            }

            // un-corrupt and absorb a follow-up batch: the cache must
            // converge back to exactness via its own classification
            cache.force_unaffected(q, false);
            let log2 = text_log(&tree, 4, false);
            let plan2 = analyze(&log2, &tree).unwrap();
            let effective2 = plan2.execution_order(false, session.cancellation_neutral());
            apply_log_dyn(&mut tree, session.as_mut(), &log2).unwrap();
            // text batches keep the stale rows (by design: absorb
            // trusts prior state) — a refresh is the recovery path
            cache.absorb(&log2, &plan2, &effective2, &tree).unwrap();
            cache.refresh(&tree).unwrap();
            let doc = EncodedDocument::encode(Qed::new(), &tree).unwrap();
            // oracle re-evaluation after recovery
            let fresh = expr.evaluate(&doc);
            if cache.rows(q) != fresh.as_slice() {
                return Outcome::Fail("refresh did not restore exactness".to_string());
            }
            Outcome::Pass
        },
    );
}
