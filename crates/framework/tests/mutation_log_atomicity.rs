//! Atomicity fault-injection battery for `apply_log_dyn`.
//!
//! A [`FaultAfter`] session wrapper forwards every `DynScheme` call to a
//! real registry session but makes the k-th `on_insert` fail. Applying
//! a batch through it must leave the tree, the labelling, and the
//! [`ElementPool`] index byte-identical to their pre-batch state — for
//! every scheme in the roster and several fault positions, including
//! k = 0 (the very first insert fails). After the rollback the restored
//! session must still be fully usable: re-applying the same batch with
//! the fault disarmed has to match a control session that never faulted.

use std::any::Any;
use std::cmp::Ordering;

use xupd_framework::mutations::{apply_log_dyn, apply_log_dyn_with_pool, batch_of};
use xupd_framework::ElementPool;
use xupd_labelcore::{DynScheme, InsertReport, Relation, SchemeDescriptor, SchemeStats};
use xupd_schemes::registry;
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{serialize_compact, NodeId, TreeError, XmlTree};

/// Forwarding wrapper that fails the (`budget`+1)-th `on_insert`.
struct FaultAfter {
    inner: Box<dyn DynScheme>,
    /// Successful inserts remaining before the injected failure; `None`
    /// disarms the fault entirely.
    budget: Option<usize>,
}

impl DynScheme for FaultAfter {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn descriptor(&self) -> SchemeDescriptor {
        self.inner.descriptor()
    }
    fn label_tree(&mut self, tree: &XmlTree) -> Result<(), TreeError> {
        self.inner.label_tree(tree)
    }
    fn on_insert(&mut self, tree: &XmlTree, node: NodeId) -> Result<InsertReport, TreeError> {
        if let Some(left) = self.budget.as_mut() {
            if *left == 0 {
                return Err(TreeError::Invariant("injected mid-batch fault".to_string()));
            }
            *left -= 1;
        }
        self.inner.on_insert(tree, node)
    }
    fn on_delete(&mut self, tree: &XmlTree, node: NodeId) {
        self.inner.on_delete(tree, node);
    }
    fn cmp_nodes(&self, a: NodeId, b: NodeId) -> Result<Ordering, TreeError> {
        self.inner.cmp_nodes(a, b)
    }
    fn relation_nodes(
        &self,
        rel: Relation,
        a: NodeId,
        b: NodeId,
    ) -> Result<Option<bool>, TreeError> {
        self.inner.relation_nodes(rel, a, b)
    }
    fn level_node(&self, a: NodeId) -> Result<Option<u32>, TreeError> {
        self.inner.level_node(a)
    }
    fn stats(&self) -> &SchemeStats {
        self.inner.stats()
    }
    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
    fn overflow_audit_instance(&self) -> Option<Box<dyn DynScheme>> {
        self.inner.overflow_audit_instance()
    }
    fn labeled_len(&self) -> usize {
        self.inner.labeled_len()
    }
    fn total_bits(&self) -> u64 {
        self.inner.total_bits()
    }
    fn mean_bits(&self) -> f64 {
        self.inner.mean_bits()
    }
    fn max_bits(&self) -> u64 {
        self.inner.max_bits()
    }
    fn has_duplicate_labels(&self) -> bool {
        self.inner.has_duplicate_labels()
    }
    fn label_bits(&self, node: NodeId) -> Result<u64, TreeError> {
        self.inner.label_bits(node)
    }
    fn label_display(&self, node: NodeId) -> Result<String, TreeError> {
        self.inner.label_display(node)
    }
    fn labels_display(&self) -> Vec<(usize, String)> {
        self.inner.labels_display()
    }
    fn order_independent(&self) -> bool {
        self.inner.order_independent()
    }
    fn cancellation_neutral(&self) -> bool {
        self.inner.cancellation_neutral()
    }
    fn save_state(&self) -> Box<dyn Any> {
        self.inner.save_state()
    }
    fn restore_state(&mut self, state: Box<dyn Any>) -> bool {
        self.inner.restore_state(state)
    }
}

/// Every observable of the update state at one instant.
#[derive(Debug, PartialEq)]
struct Observables {
    tree: String,
    labels: Vec<(usize, String)>,
    pool: Vec<NodeId>,
}

fn observe(tree: &XmlTree, session: &dyn DynScheme, pool: &ElementPool) -> Observables {
    Observables {
        tree: serialize_compact(tree),
        labels: session.labels_display(),
        pool: pool.order().to_vec(),
    }
}

fn fault_battery(kind: ScriptKind, ops: usize, seed: u64, fault_at: usize) {
    let nodes = 60;
    let script = Script::generate(kind, ops, nodes, seed);
    let entries = registry();
    assert_eq!(entries.len(), 17, "whole roster covered");

    let checked = xupd_exec::par_map(&entries, |entry| {
        let mut tree = docs::random_tree(seed, nodes);
        let log = batch_of(&script, &tree).unwrap();
        let inserts = log
            .iter()
            .filter(|m| {
                use xupd_framework::mutations::Mutation;
                matches!(
                    m,
                    Mutation::CreateElement { .. }
                        | Mutation::CreateNode { .. }
                        | Mutation::Replace { .. }
                )
            })
            .count();
        assert!(
            fault_at < inserts,
            "{}: fault position {fault_at} beyond the {inserts} inserts",
            entry.name()
        );

        let mut session = FaultAfter {
            inner: entry.session(),
            budget: Some(fault_at),
        };
        session.label_tree(&tree).unwrap();
        let mut pool = ElementPool::build(&tree);
        let before = observe(&tree, &session, &pool);

        let err = apply_log_dyn_with_pool(&mut tree, &mut session, &mut pool, &log).unwrap_err();
        assert!(
            matches!(err, TreeError::Invariant(ref msg) if msg.contains("injected")),
            "{}: unexpected failure {err:?}",
            entry.name()
        );
        let after = observe(&tree, &session, &pool);
        assert_eq!(
            before,
            after,
            "{}: a failed batch left observable state behind",
            entry.name()
        );

        // the restored session is not just byte-identical but usable:
        // disarm the fault and the same batch must match a session that
        // never faulted
        session.budget = None;
        apply_log_dyn_with_pool(&mut tree, &mut session, &mut pool, &log).unwrap();

        let mut control_tree = docs::random_tree(seed, nodes);
        let mut control = entry.session();
        control.label_tree(&control_tree).unwrap();
        apply_log_dyn(&mut control_tree, control.as_mut(), &log).unwrap();
        assert_eq!(
            serialize_compact(&tree),
            serialize_compact(&control_tree),
            "{}: post-rollback replay diverged from control tree",
            entry.name()
        );
        assert_eq!(
            session.labels_display(),
            control.labels_display(),
            "{}: post-rollback replay diverged from control labels",
            entry.name()
        );
        entry.name()
    });
    assert_eq!(checked.len(), 17);
}

#[test]
fn first_insert_fault_rolls_back_every_scheme() {
    fault_battery(ScriptKind::Random, 40, 7001, 0);
}

#[test]
fn mid_batch_fault_rolls_back_every_scheme() {
    fault_battery(ScriptKind::Random, 40, 7002, 11);
}

#[test]
fn late_fault_rolls_back_every_scheme_under_deletes() {
    fault_battery(ScriptKind::MixedDelete, 60, 7003, 23);
}
