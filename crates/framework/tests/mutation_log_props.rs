//! Property tests for the mutation-log validator and codec, on the
//! hermetic `xupd-testkit` harness (shrinking, seed-replayable).
//!
//! The corruption properties start from a *well-formed* log (a script
//! translated by `batch_of`), break it in one specific way — dangling
//! `NodeId`, duplicate create, write-after-delete — and assert that
//! validation rejects it with exactly the right [`TreeError`] variant
//! and that atomic application leaves the tree and labelling untouched.
//! The codec property round-trips random (not necessarily well-formed)
//! logs through `serialize`/`deserialize`.

use xupd_framework::mutations::{
    apply_log, batch_of, deserialize, serialize, validate, LogId, Mutation, MutationLog, NodeRef,
    Place,
};
use xupd_labelcore::LabelingScheme;
use xupd_schemes::prefix::qed::Qed;
use xupd_testkit::prop::{from_slice, ints, map, vecs, Config, Gen};
use xupd_testkit::{prop_assert, prop_assert_eq, prop_assume, props};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{serialize_compact, NodeId, NodeKind, TreeError, XmlTree};

// ---------- generators ----------------------------------------------

const KINDS: [ScriptKind; 4] = [
    ScriptKind::Random,
    ScriptKind::Skewed,
    ScriptKind::MixedDelete,
    ScriptKind::AppendOnly,
];

/// A base document and a well-formed log over it.
fn well_formed(kind: ScriptKind, ops: usize, seed: u64) -> (XmlTree, MutationLog) {
    let tree = docs::random_tree(seed, 50);
    let script = Script::generate(kind, ops, 50, seed ^ 0xA5A5);
    let log = batch_of(&script, &tree).expect("driver scripts translate");
    (tree, log)
}

fn arb_ref() -> impl Gen<Value = NodeRef> {
    map((ints(0u32..64), ints(0u32..2)), |(v, tag)| {
        if tag == 0 {
            NodeRef::Node(NodeId::from_index(v as usize))
        } else {
            NodeRef::New(LogId(v))
        }
    })
}

fn arb_place() -> impl Gen<Value = Place> {
    map((arb_ref(), ints(0u32..4)), |(r, tag)| match tag {
        0 => Place::FirstChildOf(r),
        1 => Place::LastChildOf(r),
        2 => Place::Before(r),
        _ => Place::After(r),
    })
}

fn arb_kind() -> impl Gen<Value = NodeKind> {
    map(
        (ints(0u32..5), vecs(from_slice(&['a', 'b', 'ß', '中']), 0, 6)),
        |(tag, chars)| {
            let s: String = chars.into_iter().collect();
            match tag {
                0 => NodeKind::element(format!("e{s}")),
                1 => NodeKind::Attribute {
                    name: format!("a{s}"),
                    value: s.clone(),
                },
                2 => NodeKind::Text { value: s },
                3 => NodeKind::Comment { value: s },
                _ => NodeKind::Pi {
                    target: format!("p{s}"),
                    data: s.clone(),
                },
            }
        },
    )
}

/// One arbitrary mutation — codec coverage wants all seven variants,
/// well-formedness not required.
fn arb_mutation() -> impl Gen<Value = Mutation> {
    map(
        (
            ints(0u32..7),
            (arb_ref(), arb_place(), arb_kind()),
            (ints(0u32..64), vecs(ints(0u32..64), 0, 5)),
            vecs(from_slice(&['x', 'y', 'µ']), 0, 5),
        ),
        |(tag, (r, place, kind), (id, ids), chars)| {
            let name: String = chars.into_iter().collect();
            match tag {
                0 => Mutation::CreateElement {
                    id: LogId(id),
                    name,
                    place,
                },
                1 => Mutation::CreateNode {
                    id: LogId(id),
                    kind,
                    place,
                },
                2 => Mutation::SetText {
                    target: r,
                    text: name,
                },
                3 => Mutation::Replace {
                    target: r,
                    id: LogId(id),
                    name,
                },
                4 => Mutation::Delete { target: r },
                5 => Mutation::AppendChildren {
                    parent: r,
                    ids: ids.into_iter().map(LogId).collect(),
                    name,
                },
                _ => Mutation::MoveSubtree { target: r, place },
            }
        },
    )
}

// ---------- the reject-and-leave-untouched helper -------------------

/// Assert `log` is rejected with `expect_err` and that atomic
/// application changes nothing: same tree bytes, same labels.
fn assert_rejected(
    tree: &XmlTree,
    log: &MutationLog,
    check: impl Fn(&TreeError) -> bool,
) -> Result<(), String> {
    let err = match validate(log, tree) {
        Err(e) => e,
        Ok(()) => return Err("validator accepted a corrupted log".to_string()),
    };
    if !check(&err) {
        return Err(format!("wrong rejection variant: {err:?}"));
    }

    let mut applied = tree.clone();
    let mut scheme = Qed::new();
    let mut labeling = scheme.label_tree(&applied).expect("labelable");
    let before_tree = serialize_compact(&applied);
    let before_len = labeling.len();
    let apply_err = match apply_log(&mut applied, &mut scheme, &mut labeling, log) {
        Err(e) => e,
        Ok(_) => return Err("apply_log accepted a corrupted log".to_string()),
    };
    if apply_err != err {
        return Err(format!("validate/apply disagree: {err:?} vs {apply_err:?}"));
    }
    if serialize_compact(&applied) != before_tree {
        return Err("tree changed under a rejected batch".to_string());
    }
    if labeling.len() != before_len {
        return Err("labeling changed under a rejected batch".to_string());
    }
    Ok(())
}

props! {
    config = Config::with_cases(96);

    /// Retargeting any mutation at an out-of-arena `NodeId` is rejected
    /// as dangling, without touching the tree.
    fn dangling_node_id_is_rejected(
        kind in from_slice(&KINDS),
        ops in ints(1usize..40),
        seed in ints(0u64..1000),
        pick in ints(0usize..4096),
    ) {
        let (tree, log) = well_formed(kind, ops, seed);
        prop_assume!(!log.is_empty());
        let dead = NodeId::from_index(tree.id_bound() + 1 + pick % 37);
        let at = pick % log.len();
        let mut ops_vec: Vec<Mutation> = log.iter().cloned().collect();
        ops_vec[at] = match ops_vec[at].clone() {
            Mutation::CreateElement { id, name, .. } => Mutation::CreateElement {
                id, name, place: Place::LastChildOf(NodeRef::Node(dead)),
            },
            Mutation::Delete { .. } => Mutation::Delete { target: NodeRef::Node(dead) },
            other => {
                // scripts only emit creates and deletes; anything else
                // means the translation changed under us
                return xupd_testkit::prop::Outcome::Fail(format!("unexpected op {other:?}"));
            }
        };
        let corrupted = MutationLog::from(ops_vec);
        let outcome = assert_rejected(&tree, &corrupted, |e| *e == TreeError::DanglingNodeId(dead));
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Re-using an already-created `LogId` is rejected as a duplicate
    /// create, without touching the tree.
    fn duplicate_create_is_rejected(
        kind in from_slice(&KINDS),
        ops in ints(1usize..40),
        seed in ints(1000u64..2000),
    ) {
        let (tree, log) = well_formed(kind, ops, seed);
        let first_create = log.iter().find_map(|m| match m {
            Mutation::CreateElement { id, .. } => Some(*id),
            _ => None,
        });
        prop_assume!(first_create.is_some());
        let dup = first_create.expect("checked");
        let root = tree.document_element().expect("non-empty");
        let mut ops_vec: Vec<Mutation> = log.iter().cloned().collect();
        ops_vec.push(Mutation::CreateElement {
            id: dup,
            name: "dup".into(),
            place: Place::LastChildOf(NodeRef::Node(root)),
        });
        let corrupted = MutationLog::from(ops_vec);
        let outcome = assert_rejected(&tree, &corrupted, |e| *e == TreeError::DuplicateCreate(dup.0));
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Writing at (or under) a node the batch already deleted is
    /// rejected as a conflicting write, without touching the tree.
    fn write_after_delete_is_rejected(
        kind in from_slice(&KINDS),
        ops in ints(1usize..40),
        seed in ints(2000u64..3000),
        fresh in ints(900u32..1000),
    ) {
        let (tree, log) = well_formed(kind, ops, seed);
        let deleted = log.iter().find_map(|m| match m {
            Mutation::Delete { target: NodeRef::Node(n) } => Some(*n),
            _ => None,
        });
        prop_assume!(deleted.is_some());
        let victim = deleted.expect("checked");
        let mut ops_vec: Vec<Mutation> = log.iter().cloned().collect();
        ops_vec.push(Mutation::CreateElement {
            id: LogId(fresh),
            name: "late".into(),
            place: Place::LastChildOf(NodeRef::Node(victim)),
        });
        let corrupted = MutationLog::from(ops_vec);
        let outcome = assert_rejected(&tree, &corrupted, |e| *e == TreeError::ConflictingWrite(victim));
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// `deserialize(serialize(log)) == log` for random logs of every
    /// mutation shape — and the encoding is deterministic.
    fn codec_round_trips(log_ops in vecs(arb_mutation(), 0, 24)) {
        let log = MutationLog::from(log_ops);
        let bytes = serialize(&log);
        prop_assert_eq!(serialize(&log), bytes.clone(), "deterministic bytes");
        let back = match deserialize(&bytes) {
            Ok(l) => l,
            Err(e) => return xupd_testkit::prop::Outcome::Fail(format!("decode failed: {e:?}")),
        };
        prop_assert_eq!(back, log);
    }

    /// Well-formed driver translations always validate cleanly.
    fn driver_translations_validate(
        kind in from_slice(&KINDS),
        ops in ints(0usize..60),
        seed in ints(3000u64..4000),
    ) {
        let (tree, log) = well_formed(kind, ops, seed);
        prop_assert!(validate(&log, &tree).is_ok());
    }
}
