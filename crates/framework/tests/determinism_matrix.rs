//! Determinism of the parallel checker battery.
//!
//! The Figure 7 battery fans out one scheme per pool task; this suite
//! pins the contract that the worker count is unobservable in the
//! results: `measure_all` / `measure_figure7` outcomes — and the
//! rendered reports written to `results/figure7*.txt` — are identical
//! for 1, 2 and 8 workers. The explicit `*_threads` entry points are
//! used so the test does not mutate process environment (`XUPD_THREADS`
//! is read by concurrently running tests).

use xupd_framework::{measure_all_threads, measure_figure7_threads, Figure7Report};

#[test]
fn measure_figure7_is_identical_at_any_worker_count() {
    let baseline = measure_figure7_threads(1).unwrap();
    let baseline_render = Figure7Report::new(baseline.clone()).render();
    assert_eq!(baseline.len(), 12);
    for workers in [2, 8] {
        let got = measure_figure7_threads(workers).unwrap();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{got:?}"),
            "results diverged at {workers} workers"
        );
        assert_eq!(
            baseline_render,
            Figure7Report::new(got).render(),
            "figure7 render diverged at {workers} workers"
        );
    }
}

#[test]
fn measure_all_is_identical_at_any_worker_count() {
    let baseline = measure_all_threads(1).unwrap();
    let baseline_render = Figure7Report::new(baseline.clone()).render();
    assert_eq!(baseline.len(), 17);
    for workers in [2, 8] {
        let got = measure_all_threads(workers).unwrap();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{got:?}"),
            "results diverged at {workers} workers"
        );
        assert_eq!(
            baseline_render,
            Figure7Report::new(got).render(),
            "figure7_all render diverged at {workers} workers"
        );
    }
}
