//! Incremental XPath result maintenance: footprint-driven cache
//! invalidation instead of whole-snapshot discard.
//!
//! A [`QueryCache`] holds materialized result sets (preorder row
//! positions, plus string values where requested) for a registered set
//! of compiled XPath queries, and keeps them exact across
//! [`MutationLog`](crate::mutations::MutationLog) batches by *impact
//! analysis* instead of wholesale re-evaluation. Genevès, Layaïda and
//! Quint (arXiv 0811.4324) decide statically whether an evolution can
//! affect a query; here the same decision runs dynamically per batch,
//! by intersecting the batch's aggregate write footprint — the touched
//! extents, deleted/moved subtrees and relabel regions
//! [`analyze`](crate::analysis::analyze) already computes — with each
//! query's static [`AccessPattern`] (name tests resolved through the
//! [`NameIndex`] buckets, axis reach as extent intervals).
//!
//! Every registered query lands in one of three classes per batch:
//!
//! * **unaffected** — the cached rows and strings are provably still
//!   exact: the query's name tests never occur inside any touched
//!   extent (old or new coordinates), every cached row precedes the
//!   first touched row (so no preorder shift reaches it), and — when
//!   strings are cached — no cached result's subtree overlaps a
//!   touched extent or a surviving text write. Kept verbatim, zero
//!   work.
//! * **repairable** — the plan is downward-only with no positional
//!   predicate on a subtree-wide axis
//!   ([`AccessPattern::repair_safe`]): results outside the touched
//!   extents are membership-stable, so the old rows are remapped
//!   through their stable [`NodeId`]s, rows falling inside touched
//!   extents are dropped, and a scoped
//!   [`AccessPattern::evaluate_within`] over just the touched extents
//!   produces the splice. Strings are recomputed only for fresh rows
//!   and for kept rows whose subtree overlaps a touched extent or a
//!   text write.
//! * **dirty** — anything else (upward/lateral axes, touched coverage
//!   over half the document): full re-evaluation, the correct
//!   fallback.
//!
//! The cache evaluates against its own **shadow table**: an
//! [`EncodedDocument`] under a private unit-label scheme whose labels
//! are plain preorder positions. The streaming evaluator never reads
//! labels (axes run on the [`Topology`](xupd_encoding::Topology)
//! sidecar), so results are identical to evaluating the document's
//! real snapshot — but rebuilding the shadow after a structural batch
//! is one cheap O(n) pass regardless of how expensive the document's
//! actual labelling scheme is, and a text-only batch patches it in
//! place without any rebuild.
//!
//! Staleness safety: the cache only ever serves results derived from
//! the shadow table of the current tree. Updates that bypass the
//! mutation-log path (the raw script driver) mark the cache stale;
//! a stale cache refuses incremental maintenance and fully refreshes
//! on the next read. The differential suite
//! (`crates/framework/tests/querycache_differential.rs`) pins every
//! served result byte-identical to a fresh evaluation.

use crate::analysis::{AnalyzedPlan, PointRef};
use crate::mutations::{Mutation, MutationLog, NodeRef};
use std::cmp::Ordering;
use xupd_encoding::{row_in_extents, AccessPattern, EncodedDocument, NameIndex, XPathExpr};
use xupd_labelcore::{
    Compliance, EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

// ---------------------------------------------------------------------
// The shadow scheme
// ---------------------------------------------------------------------

/// Label of the shadow table: the node's preorder position. Never
/// consulted by the evaluator — it exists to satisfy the encoding
/// table's scheme parameter at near-zero cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ShadowLabel(u32);

impl Label for ShadowLabel {
    fn size_bits(&self) -> u64 {
        32
    }
    fn display(&self) -> String {
        self.0.to_string()
    }
}

/// The cache's private labelling scheme: plain preorder enumeration.
/// One O(n) pass per (re)build, no order codes, no prime products, no
/// bit strings — the whole point of the shadow table is that query
/// maintenance never pays the document's real label algebra.
#[derive(Debug, Clone, Default)]
struct ShadowScheme {
    stats: SchemeStats,
}

impl LabelingScheme for ShadowScheme {
    type Label = ShadowLabel;

    fn name(&self) -> &'static str {
        "Shadow(querycache)"
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Shadow(querycache)",
            citation: "[internal]",
            order: OrderKind::Global,
            encoding: EncodingRep::Fixed,
            declared: [Compliance::None; 8],
            in_figure7: false,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<ShadowLabel>, TreeError> {
        let mut l = Labeling::with_capacity_for(tree);
        for (i, id) in tree.ids_in_doc_order().into_iter().enumerate() {
            l.set(id, ShadowLabel(i as u32));
        }
        Ok(l)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<ShadowLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        // The cache never drives per-op inserts — it re-encodes the
        // shadow wholesale per structural batch — but the scheme
        // protocol must still hold for standalone use: renumber.
        if !tree.is_alive(node) {
            return Err(TreeError::DanglingNodeId(node));
        }
        for (i, id) in tree.ids_in_doc_order().into_iter().enumerate() {
            labeling.set(id, ShadowLabel(i as u32));
        }
        Ok(InsertReport::clean())
    }

    fn cmp_doc(&self, a: &ShadowLabel, b: &ShadowLabel) -> Ordering {
        a.cmp(b)
    }

    fn relation(&self, _rel: Relation, _a: &ShadowLabel, _b: &ShadowLabel) -> Option<bool> {
        None
    }

    fn level(&self, _a: &ShadowLabel) -> Option<u32> {
        None
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

// ---------------------------------------------------------------------
// Public observability types
// ---------------------------------------------------------------------

/// Identifier returned by [`QueryCache::register`]; stable for the
/// cache's lifetime.
pub type QueryId = usize;

/// What one batch did to one registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Cached rows and strings kept verbatim — zero work.
    Unaffected,
    /// Delta-repaired: remap survivors, splice a scoped re-evaluation
    /// of the touched extents.
    Repaired,
    /// Fully re-evaluated.
    Rebuilt,
}

/// Per-batch impact summary returned by [`QueryCache::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchImpact {
    /// The batch only rewrote pre-existing text nodes: the shadow was
    /// patched in place, no structural maintenance ran.
    pub text_only: bool,
    /// Queries kept verbatim.
    pub unaffected: usize,
    /// Queries delta-repaired.
    pub repaired: usize,
    /// Queries fully re-evaluated.
    pub rebuilt: usize,
    /// Cached rows dropped by repairs (deleted or re-derived).
    pub dropped_rows: u64,
    /// Rows spliced in by scoped re-evaluation.
    pub spliced_rows: u64,
    /// Per-query classification, indexed by [`QueryId`].
    pub classes: Vec<QueryClass>,
}

/// Cumulative cache counters, observable alongside the document's
/// `snapshot_rebuilds`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached reads served ([`QueryCache::hit`]).
    pub hits: u64,
    /// Batches absorbed incrementally.
    pub batches_absorbed: u64,
    /// Query×batch outcomes kept verbatim.
    pub unaffected: u64,
    /// Query×batch outcomes delta-repaired.
    pub repaired: u64,
    /// Query×batch outcomes fully re-evaluated (includes stale-refresh
    /// rebuilds).
    pub rebuilt: u64,
    /// Rows dropped across all repairs.
    pub repair_dropped_rows: u64,
    /// Rows spliced in across all repairs.
    pub repair_spliced_rows: u64,
    /// String values recomputed outside full rebuilds.
    pub string_patches: u64,
}

struct CachedQuery {
    pattern: AccessPattern,
    want_strings: bool,
    rows: Vec<usize>,
    /// Parallel to `rows` when `want_strings`, empty otherwise.
    strings: Vec<String>,
    /// Test seam: force the unaffected classification regardless of
    /// impact — exists so the differential suite can prove a
    /// misclassification is observable.
    force_unaffected: bool,
}

/// Materialized result sets for registered XPath queries, maintained
/// incrementally across mutation-log batches. See the module docs for
/// the classification lattice and the repair algorithm.
#[derive(Default)]
pub struct QueryCache {
    shadow: Option<EncodedDocument<ShadowScheme>>,
    queries: Vec<CachedQuery>,
    stats: CacheStats,
    stale: bool,
    last_impact: Option<BatchImpact>,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        QueryCache::default()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Impact summary of the most recently absorbed batch.
    pub fn last_impact(&self) -> Option<&BatchImpact> {
        self.last_impact.as_ref()
    }

    /// True when an un-analyzed update bypassed the cache and the next
    /// read must fully refresh.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Record that the tree changed outside the mutation-log path. The
    /// cache serves nothing until [`refresh`](Self::refresh) runs.
    pub fn mark_stale(&mut self) {
        self.stale = true;
    }

    /// Register a parsed query; the result set is materialized
    /// immediately against `tree`. With `want_strings`, XPath string
    /// values are cached alongside the rows.
    pub fn register(
        &mut self,
        expr: &XPathExpr,
        want_strings: bool,
        tree: &XmlTree,
    ) -> Result<QueryId, TreeError> {
        self.register_pattern(expr.access_pattern(), want_strings, tree)
    }

    /// Register a pre-compiled access pattern (the zero-reparse path).
    pub fn register_pattern(
        &mut self,
        pattern: AccessPattern,
        want_strings: bool,
        tree: &XmlTree,
    ) -> Result<QueryId, TreeError> {
        if self.stale {
            self.refresh(tree)?;
        }
        if self.shadow.is_none() {
            self.shadow = Some(EncodedDocument::encode(ShadowScheme::default(), tree)?);
        }
        let (rows, strings) = match &self.shadow {
            Some(shadow) => {
                let rows = pattern.evaluate(shadow);
                let strings = if want_strings {
                    rows.iter().map(|&r| shadow.string_value(r)).collect()
                } else {
                    Vec::new()
                };
                (rows, strings)
            }
            None => {
                return Err(TreeError::Invariant(
                    "query cache shadow table missing after build".to_string(),
                ))
            }
        };
        self.queries.push(CachedQuery {
            pattern,
            want_strings,
            rows,
            strings,
            force_unaffected: false,
        });
        Ok(self.queries.len() - 1)
    }

    /// The cached result rows of `q` (preorder positions into the
    /// current document), counting a cache hit.
    pub fn hit(&mut self, q: QueryId) -> &[usize] {
        self.stats.hits += 1;
        self.rows(q)
    }

    /// The cached result rows of `q` without counting a hit.
    pub fn rows(&self, q: QueryId) -> &[usize] {
        self.queries.get(q).map_or(&[], |c| c.rows.as_slice())
    }

    /// The cached string values of `q` (empty unless registered with
    /// `want_strings`).
    pub fn strings(&self, q: QueryId) -> &[String] {
        self.queries.get(q).map_or(&[], |c| c.strings.as_slice())
    }

    /// The compiled access pattern of `q`.
    pub fn pattern(&self, q: QueryId) -> Option<&AccessPattern> {
        self.queries.get(q).map(|c| &c.pattern)
    }

    /// Test seam: force `q` to classify as unaffected on every
    /// subsequent batch. Exists so the differential suite can prove
    /// that a deliberately corrupted classification is caught — never
    /// use outside tests.
    #[doc(hidden)]
    pub fn force_unaffected(&mut self, q: QueryId, on: bool) {
        if let Some(c) = self.queries.get_mut(q) {
            c.force_unaffected = on;
        }
    }

    /// Rebuild the shadow table and every result set from scratch
    /// against `tree`, clearing staleness. The heavy-handed fallback —
    /// [`absorb`](Self::absorb) is the incremental path.
    pub fn refresh(&mut self, tree: &XmlTree) -> Result<(), TreeError> {
        let shadow = EncodedDocument::encode(ShadowScheme::default(), tree)?;
        for q in &mut self.queries {
            rebuild_query(q, &shadow, &mut self.stats);
        }
        self.shadow = Some(shadow);
        self.stale = false;
        Ok(())
    }

    /// Absorb one applied batch: classify every registered query
    /// against the batch's write footprint and do the minimum
    /// maintenance its class allows.
    ///
    /// `plan` must be the [`analyze`](crate::analysis::analyze) result
    /// of `log` against the *pre-batch* tree, `effective` the op
    /// indices that actually executed
    /// (`plan.execution_order(false, scheme.cancellation_neutral())`),
    /// and `tree` the *post-batch* tree. A stale cache refreshes fully
    /// instead.
    pub fn absorb(
        &mut self,
        log: &MutationLog,
        plan: &AnalyzedPlan,
        effective: &[usize],
        tree: &XmlTree,
    ) -> Result<BatchImpact, TreeError> {
        let n = self.queries.len();
        if n == 0 {
            // Nothing to maintain; drop the shadow so a later
            // registration re-encodes against the current tree.
            self.shadow = None;
            let impact = BatchImpact::default();
            self.last_impact = Some(impact.clone());
            return Ok(impact);
        }
        if self.stale || self.shadow.is_none() {
            self.refresh(tree)?;
            let impact = BatchImpact {
                rebuilt: n,
                classes: vec![QueryClass::Rebuilt; n],
                ..BatchImpact::default()
            };
            self.last_impact = Some(impact.clone());
            return Ok(impact);
        }
        self.stats.batches_absorbed += 1;
        if effective.is_empty() {
            // Zero effective ops: nothing observable changed.
            self.stats.unaffected += n as u64;
            let impact = BatchImpact {
                text_only: true,
                unaffected: n,
                classes: vec![QueryClass::Unaffected; n],
                ..BatchImpact::default()
            };
            self.last_impact = Some(impact.clone());
            return Ok(impact);
        }
        let ops: Vec<&Mutation> = log.iter().collect();
        let text_only = effective.iter().all(|&i| {
            matches!(
                ops.get(i),
                Some(Mutation::SetText {
                    target: NodeRef::Node(_),
                    ..
                })
            )
        });
        let impact = if text_only {
            self.absorb_text(&ops, effective)?
        } else {
            self.absorb_structural(plan, effective, tree)?
        };
        self.last_impact = Some(impact.clone());
        Ok(impact)
    }

    /// Text-only fast path: patch the shadow rows in place (topology,
    /// name buckets and row positions are all untouched by text
    /// writes), then refresh only the cached strings whose result
    /// subtree contains a written row.
    fn absorb_text(
        &mut self,
        ops: &[&Mutation],
        effective: &[usize],
    ) -> Result<BatchImpact, TreeError> {
        let shadow = match self.shadow.as_mut() {
            Some(s) => s,
            None => {
                return Err(TreeError::Invariant(
                    "text absorb without a shadow table".to_string(),
                ))
            }
        };
        let mut touched: Vec<usize> = Vec::with_capacity(effective.len());
        for &i in effective {
            if let Some(Mutation::SetText { target, text }) = ops.get(i) {
                if let NodeRef::Node(id) = target {
                    match shadow.row_of_source(*id) {
                        Some(row) => {
                            shadow.patch_text(row, text)?;
                            touched.push(row);
                        }
                        None => {
                            return Err(TreeError::Invariant(
                                "text write target missing from shadow table".to_string(),
                            ))
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        let shadow = match self.shadow.as_ref() {
            Some(s) => s,
            None => {
                return Err(TreeError::Invariant(
                    "shadow table vanished mid-absorb".to_string(),
                ))
            }
        };
        let mut impact = BatchImpact {
            text_only: true,
            ..BatchImpact::default()
        };
        for q in &mut self.queries {
            if q.force_unaffected || !q.want_strings {
                impact.unaffected += 1;
                impact.classes.push(QueryClass::Unaffected);
                self.stats.unaffected += 1;
                continue;
            }
            // Result indices whose subtree contains a written row: the
            // containing results are exactly the ancestors-or-self of
            // each written row, probed against the sorted result set.
            let mut refresh: Vec<usize> = Vec::new();
            for &t in &touched {
                let mut cur = Some(t);
                while let Some(p) = cur {
                    if let Ok(k) = q.rows.binary_search(&p) {
                        refresh.push(k);
                    }
                    cur = shadow.topology().parent(p);
                }
            }
            refresh.sort_unstable();
            refresh.dedup();
            if refresh.is_empty() {
                impact.unaffected += 1;
                impact.classes.push(QueryClass::Unaffected);
                self.stats.unaffected += 1;
            } else {
                for &k in &refresh {
                    q.strings[k] = shadow.string_value(q.rows[k]);
                }
                self.stats.string_patches += refresh.len() as u64;
                self.stats.repaired += 1;
                impact.repaired += 1;
                impact.classes.push(QueryClass::Repaired);
            }
        }
        Ok(impact)
    }

    /// Structural path: re-encode the shadow (one cheap preorder
    /// pass), derive the touched extents in both coordinate systems,
    /// and classify every query.
    fn absorb_structural(
        &mut self,
        plan: &AnalyzedPlan,
        effective: &[usize],
        tree: &XmlTree,
    ) -> Result<BatchImpact, TreeError> {
        let old = match self.shadow.take() {
            Some(s) => s,
            None => {
                return Err(TreeError::Invariant(
                    "structural absorb without a shadow table".to_string(),
                ))
            }
        };
        let new = EncodedDocument::encode(ShadowScheme::default(), tree)?;

        // Aggregate write footprint of the effective ops, old
        // coordinates: relabel regions (each = the extent of the node
        // whose child list changes, so every sibling ripple is inside),
        // deleted subtrees, moved subtrees.
        let mut old_raw: Vec<(usize, usize)> = Vec::new();
        for &i in effective {
            if let Some(fp) = plan.footprints.get(i) {
                for e in fp
                    .regions
                    .iter()
                    .chain(fp.deleted_extents.iter())
                    .chain(fp.moved_extents.iter())
                {
                    old_raw.push((e.start as usize, e.end as usize));
                }
            }
        }
        // New coordinates: map each touched subtree root through its
        // stable NodeId and take its extent in the new encoding (a
        // region can only grow or shrink around the same root; deleted
        // roots simply vanish).
        let mut new_raw: Vec<(usize, usize)> = old_raw
            .iter()
            .filter_map(|&(s, _)| {
                let id = old.source_id(s);
                new.row_of_source(id)
                    .map(|r| (r, new.topology().extent(r)))
            })
            .collect();
        let old_roots: Vec<usize> = old_raw.iter().map(|&(s, _)| s).collect();
        let new_roots: Vec<usize> = new_raw.iter().map(|&(s, _)| s).collect();
        let touched_old = merge_intervals(&mut old_raw);
        let touched_new = merge_intervals(&mut new_raw);

        // Pre-existing text rows written by the batch, new coordinates
        // (created text nodes already live inside touched extents).
        let mut text_new: Vec<usize> = Vec::new();
        for &i in effective {
            if let Some(fp) = plan.footprints.get(i) {
                for tw in &fp.text_writes {
                    if let PointRef::Pre(row) = tw {
                        let id = old.source_id(*row as usize);
                        if let Some(r) = new.row_of_source(id) {
                            text_new.push(r);
                        }
                    }
                }
            }
        }
        text_new.sort_unstable();
        text_new.dedup();

        // First preorder row any structural effect can reach: the
        // prefix before it is bit-identical in both coordinate systems.
        let t_min = touched_old
            .first()
            .map(|&(s, _)| s)
            .into_iter()
            .chain(touched_new.first().map(|&(s, _)| s))
            .min();
        let no_touch = touched_old.is_empty() && touched_new.is_empty();
        let cover_old: usize = touched_old.iter().map(|&(s, e)| e - s).sum();
        let cover_new: usize = touched_new.iter().map(|&(s, e)| e - s).sum();
        let dirty_all =
            2 * cover_old >= old.len().max(1) || 2 * cover_new >= new.len().max(1);

        let mut impact = BatchImpact::default();
        for q in &mut self.queries {
            if q.force_unaffected {
                impact.unaffected += 1;
                impact.classes.push(QueryClass::Unaffected);
                self.stats.unaffected += 1;
                continue;
            }
            // --- unaffected? ---
            let name_safe = no_touch
                || (q.pattern.fully_named()
                    && q.pattern.element_names().iter().all(|n| {
                        bucket_clear(old.name_index(), n, &touched_old, false)
                            && bucket_clear(new.name_index(), n, &touched_new, false)
                    })
                    && q.pattern.attribute_names().iter().all(|n| {
                        bucket_clear(old.name_index(), n, &touched_old, true)
                            && bucket_clear(new.name_index(), n, &touched_new, true)
                    }));
            let pos_stable = match t_min {
                None => true,
                Some(t) => q.rows.last().map_or(true, |&r| r < t),
            };
            let strings_ok = !q.want_strings
                || (!ancestor_hit(&old, &old_roots, &q.rows)
                    && !ancestor_hit(&new, &new_roots, &q.rows)
                    && !text_hit(&new, &text_new, &q.rows));
            if name_safe && pos_stable && strings_ok {
                impact.unaffected += 1;
                impact.classes.push(QueryClass::Unaffected);
                self.stats.unaffected += 1;
                continue;
            }
            // --- repairable? ---
            if no_touch {
                // No structural footprint at all (defensive: text
                // writes folded into a structural batch) — rows are
                // stable, only strings need refreshing.
                let patched = refresh_strings(q, &new, &text_new);
                self.stats.string_patches += patched;
                self.stats.repaired += 1;
                impact.repaired += 1;
                impact.classes.push(QueryClass::Repaired);
                continue;
            }
            if q.pattern.repair_safe() && !dirty_all {
                let (dropped, spliced, patched) =
                    repair_query(q, &old, &new, &touched_new, &text_new);
                self.stats.repaired += 1;
                self.stats.repair_dropped_rows += dropped;
                self.stats.repair_spliced_rows += spliced;
                self.stats.string_patches += patched;
                impact.repaired += 1;
                impact.dropped_rows += dropped;
                impact.spliced_rows += spliced;
                impact.classes.push(QueryClass::Repaired);
                continue;
            }
            // --- dirty: full re-evaluation ---
            rebuild_query(q, &new, &mut self.stats);
            impact.rebuilt += 1;
            impact.classes.push(QueryClass::Rebuilt);
        }
        self.shadow = Some(new);
        Ok(impact)
    }
}

/// Merge possibly-overlapping intervals into a sorted disjoint cover.
fn merge_intervals(raw: &mut Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    raw.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
    for &(s, e) in raw.iter() {
        if s >= e {
            continue;
        }
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Is the `name` bucket empty inside every touched extent?
fn bucket_clear(index: &NameIndex, name: &str, extents: &[(usize, usize)], attr: bool) -> bool {
    extents.iter().all(|&(s, e)| {
        if attr {
            index.attributes_in_range(name, s, e).is_empty()
        } else {
            index.elements_in_range(name, s, e).is_empty()
        }
    })
}

/// Does any strict ancestor of a touched root appear in the sorted
/// result set? (Such a result's string value spans the touched
/// subtree.)
fn ancestor_hit(doc: &EncodedDocument<ShadowScheme>, roots: &[usize], rows: &[usize]) -> bool {
    let topo = doc.topology();
    roots.iter().any(|&root| {
        let mut cur = topo.parent(root);
        while let Some(p) = cur {
            if rows.binary_search(&p).is_ok() {
                return true;
            }
            cur = topo.parent(p);
        }
        false
    })
}

/// Does any written text row sit inside (or at) a cached result's
/// subtree? Equivalently: is any ancestor-or-self of a written row a
/// cached result?
fn text_hit(doc: &EncodedDocument<ShadowScheme>, text_rows: &[usize], rows: &[usize]) -> bool {
    let topo = doc.topology();
    text_rows.iter().any(|&t| {
        let mut cur = Some(t);
        while let Some(p) = cur {
            if rows.binary_search(&p).is_ok() {
                return true;
            }
            cur = topo.parent(p);
        }
        false
    })
}

/// Refresh the strings of results whose subtree contains a written text
/// row; rows are untouched. Returns the number recomputed.
fn refresh_strings(
    q: &mut CachedQuery,
    doc: &EncodedDocument<ShadowScheme>,
    text_rows: &[usize],
) -> u64 {
    if !q.want_strings {
        return 0;
    }
    let topo = doc.topology();
    let mut refresh: Vec<usize> = Vec::new();
    for &t in text_rows {
        let mut cur = Some(t);
        while let Some(p) = cur {
            if let Ok(k) = q.rows.binary_search(&p) {
                refresh.push(k);
            }
            cur = topo.parent(p);
        }
    }
    refresh.sort_unstable();
    refresh.dedup();
    for &k in &refresh {
        q.strings[k] = doc.string_value(q.rows[k]);
    }
    refresh.len() as u64
}

/// The delta repair: remap surviving rows through their stable node
/// ids, drop rows that died or fell inside a touched extent, splice in
/// a scoped re-evaluation of exactly the touched extents, and refresh
/// only the strings the batch can have changed. Returns
/// `(dropped, spliced, strings_patched)`.
fn repair_query(
    q: &mut CachedQuery,
    old: &EncodedDocument<ShadowScheme>,
    new: &EncodedDocument<ShadowScheme>,
    touched_new: &[(usize, usize)],
    text_new: &[usize],
) -> (u64, u64, u64) {
    // (new_row, old result index for string reuse); survivors outside
    // the touched extents keep their relative order, so this stays
    // sorted.
    let mut kept: Vec<(usize, Option<usize>)> = Vec::with_capacity(q.rows.len());
    let mut dropped = 0u64;
    for (i, &r) in q.rows.iter().enumerate() {
        let id = old.source_id(r);
        match new.row_of_source(id) {
            None => dropped += 1,
            Some(nr) if row_in_extents(touched_new, nr) => dropped += 1,
            Some(nr) => kept.push((nr, Some(i))),
        }
    }
    let fresh = q.pattern.evaluate_within(new, touched_new);
    let spliced = fresh.len() as u64;

    let mut merged: Vec<(usize, Option<usize>)> = Vec::with_capacity(kept.len() + fresh.len());
    {
        let mut a = kept.into_iter().peekable();
        let mut b = fresh.into_iter().peekable();
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (Some((ra, _)), Some(rb)) => {
                    if ra < rb {
                        merged.push((ra, a.next().and_then(|(_, s)| s)));
                    } else {
                        merged.push((rb, None));
                        b.next();
                    }
                }
                (Some((ra, _)), None) => {
                    merged.push((ra, a.next().and_then(|(_, s)| s)));
                }
                (None, Some(rb)) => {
                    merged.push((rb, None));
                    b.next();
                }
                (None, None) => break,
            }
        }
    }

    let mut patched = 0u64;
    if q.want_strings {
        let topo = new.topology();
        let mut strings = Vec::with_capacity(merged.len());
        for &(nr, src) in &merged {
            let reusable = match src {
                Some(i) => {
                    // A kept row's cached string survives unless its
                    // subtree overlaps a touched extent or contains a
                    // written text row.
                    let end = topo.extent(nr);
                    let k = text_new.partition_point(|&t| t < nr);
                    let text_inside = k < text_new.len() && text_new[k] < end;
                    if topo.subtree_intersects(nr, touched_new) || text_inside {
                        None
                    } else {
                        Some(i)
                    }
                }
                None => None,
            };
            match reusable {
                Some(i) => strings.push(std::mem::take(&mut q.strings[i])),
                None => {
                    patched += 1;
                    strings.push(new.string_value(nr));
                }
            }
        }
        q.strings = strings;
    }
    q.rows = merged.iter().map(|&(r, _)| r).collect();
    (dropped, spliced, patched)
}

/// Full re-evaluation of one query against `doc`.
fn rebuild_query(
    q: &mut CachedQuery,
    doc: &EncodedDocument<ShadowScheme>,
    stats: &mut CacheStats,
) {
    q.rows = q.pattern.evaluate(doc);
    if q.want_strings {
        q.strings = q.rows.iter().map(|&r| doc.string_value(r)).collect();
    }
    stats.rebuilt += 1;
}
