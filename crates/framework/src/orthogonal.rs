//! A live demonstration of the §5.1 *Orthogonal Labelling Scheme*
//! property: "the labelling scheme may be applied to and used in
//! conjunction with existing containment schemes, prefix schemes and
//! prime number based schemes".
//!
//! Orthogonality is a design property, not a workload-measurable one —
//! what *can* be demonstrated is composition: an order-code algebra that
//! plugs into a host scheme of a different family. [`OrderCode`] is that
//! pluggable algebra (implemented by QED's quaternary codes and the
//! Vector codes — exactly the schemes Figure 7 marks `F`), and
//! [`CodedContainment`] is a containment host whose begin/end *positions*
//! are order codes instead of integers: insertions splice new positions
//! between existing ones with no gaps and no relabelling, fixing the
//! containment family's biggest weakness.
//!
//! The measured matrix's *Orthogonal* cell is `F` exactly when the
//! scheme's code algebra has an [`OrderCode`] implementation here — i.e.
//! when the composition genuinely exists in this codebase, not merely on
//! paper.

use std::cmp::Ordering;
use xupd_labelcore::quaternary::{qinsert, QCode};
use xupd_labelcore::VectorCode;
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A host-independent, totally ordered, infinitely splittable position
/// code — the algebra a scheme must expose to be *orthogonal*.
pub trait OrderCode: Clone + Eq + std::fmt::Debug {
    /// A position strictly between `left` and `right` (absent bounds mean
    /// the open ends of the position space). Must always succeed for
    /// overflow-free algebras; `None` models encoding exhaustion.
    fn between(left: Option<&Self>, right: Option<&Self>) -> Option<Self>;

    /// Total order of positions.
    fn cmp_code(&self, other: &Self) -> Ordering;

    /// `n` fresh positions in ascending order for bulk labelling, or
    /// `None` when the algebra's encoding space is exhausted. The default
    /// chains [`OrderCode::between`]; algebras with compact bulk
    /// generators override it.
    fn bulk(n: usize) -> Option<Vec<Self>> {
        let mut out: Vec<Self> = Vec::with_capacity(n);
        for _ in 0..n {
            let next = Self::between(out.last(), None)?;
            out.push(next);
        }
        Some(out)
    }
}

impl OrderCode for QCode {
    fn between(left: Option<&QCode>, right: Option<&QCode>) -> Option<QCode> {
        Some(qinsert(left, right))
    }

    fn cmp_code(&self, other: &QCode) -> Ordering {
        self.cmp(other)
    }

    fn bulk(n: usize) -> Option<Vec<QCode>> {
        let mut stats = xupd_labelcore::SchemeStats::default();
        Some(xupd_labelcore::quaternary::bulk_cdqs(n, &mut stats))
    }
}

impl OrderCode for VectorCode {
    fn between(left: Option<&VectorCode>, right: Option<&VectorCode>) -> Option<VectorCode> {
        let l = left.copied().unwrap_or(VectorCode::LOW);
        let r = right.copied().unwrap_or(VectorCode::HIGH);
        l.mediant(&r)
    }

    fn cmp_code(&self, other: &VectorCode) -> Ordering {
        self.cmp_gradient(other)
    }

    fn bulk(n: usize) -> Option<Vec<VectorCode>> {
        // gradients 1, 2, …, n
        Some((1..=n as u64).map(|k| VectorCode::new(1, k)).collect())
    }
}

/// A containment (begin/end) labelling whose positions are order codes:
/// the composition §4 describes ("orthogonal to the different
/// classifications … they may be applied to and used in conjunction with
/// existing containment schemes").
#[derive(Debug, Clone)]
pub struct CodedContainment<C: OrderCode> {
    labels: Vec<Option<(C, C)>>,
}

impl<C: OrderCode> CodedContainment<C> {
    /// Label every node of `tree` with `(begin, end)` order codes by one
    /// depth-first pass, drawing positions from the algebra's bulk
    /// generator (2 positions per node: its begin and end). Errors when
    /// the algebra cannot produce enough positions.
    pub fn label(tree: &XmlTree) -> Result<Self, TreeError> {
        let mut labels: Vec<Option<(C, C)>> = vec![None; tree.id_bound()];
        let mut positions = C::bulk(2 * tree.len())
            .ok_or_else(|| TreeError::Invariant("order-code algebra exhausted in bulk".into()))?
            .into_iter();
        let mut begins: Vec<(NodeId, C)> = Vec::new();
        Self::walk(tree, tree.root(), &mut positions, &mut begins, &mut labels)?;
        debug_assert!(begins.is_empty());
        Ok(CodedContainment { labels })
    }

    fn walk(
        tree: &XmlTree,
        node: NodeId,
        positions: &mut impl Iterator<Item = C>,
        begins: &mut Vec<(NodeId, C)>,
        labels: &mut Vec<Option<(C, C)>>,
    ) -> Result<(), TreeError> {
        let begin = positions
            .next()
            .ok_or_else(|| TreeError::Invariant("position stream exhausted".into()))?;
        begins.push((node, begin));
        for child in tree.children(node) {
            Self::walk(tree, child, positions, begins, labels)?;
        }
        let (id, begin) = begins
            .pop()
            .ok_or_else(|| TreeError::Invariant("unbalanced begin/end walk".into()))?;
        debug_assert_eq!(id, node);
        let end = positions
            .next()
            .ok_or_else(|| TreeError::Invariant("position stream exhausted".into()))?;
        labels[node.index()] = Some((begin, end));
        Ok(())
    }

    /// The `(begin, end)` codes of `node`.
    pub fn get(&self, node: NodeId) -> Option<&(C, C)> {
        self.labels.get(node.index()).and_then(|s| s.as_ref())
    }

    /// Containment ancestor test over order codes.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        match (self.get(a), self.get(b)) {
            (Some((ab, ae)), Some((bb, be))) => {
                ab.cmp_code(bb) == Ordering::Less && be.cmp_code(ae) == Ordering::Less
            }
            _ => false,
        }
    }

    /// Document-order comparison by begin code.
    pub fn cmp_doc(&self, a: NodeId, b: NodeId) -> Ordering {
        match (self.get(a), self.get(b)) {
            (Some((ab, _)), Some((bb, _))) => ab.cmp_code(bb),
            _ => Ordering::Equal,
        }
    }

    /// Splice `(begin, end)` codes for a node newly attached to `tree` —
    /// between its neighbours' codes, with **no relabelling**: the
    /// composition inherits the order-code algebra's persistence, which
    /// is the practical payoff of orthogonality. Errors when the node is
    /// detached, a neighbour is unlabelled, or the algebra's encoding
    /// space is exhausted.
    pub fn insert(&mut self, tree: &XmlTree, node: NodeId) -> Result<(), TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let req = |labels: &Self, n: NodeId| {
            labels.get(n).cloned().ok_or(TreeError::Unlabeled(n))
        };
        let left = match tree.prev_sibling(node) {
            Some(s) => req(self, s)?.1,
            None => req(self, parent)?.0,
        };
        let right = match tree.next_sibling(node) {
            Some(s) => Some(req(self, s)?.0),
            None => Some(req(self, parent)?.1),
        };
        let exhausted = || TreeError::Invariant("order-code algebra exhausted".into());
        let begin = C::between(Some(&left), right.as_ref()).ok_or_else(exhausted)?;
        let end = C::between(Some(&begin), right.as_ref()).ok_or_else(exhausted)?;
        if self.labels.len() <= node.index() {
            self.labels.resize(node.index() + 1, None);
        }
        self.labels[node.index()] = Some((begin, end));
        Ok(())
    }
}

/// Which roster schemes expose an [`OrderCode`] algebra — the measured
/// *Orthogonal* verdict. QED, CDQS (the quaternary algebra) and Vector:
/// exactly Figure 7's `F` entries — plus QED∘Containment, which *is* the
/// composition the property promises.
pub fn has_order_code_algebra(scheme_name: &str) -> bool {
    matches!(scheme_name, "QED" | "CDQS" | "Vector" | "QED∘Containment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_workloads::docs;
    use xupd_xmldom::NodeKind;

    fn check_host<C: OrderCode>() {
        let mut tree = docs::random_tree(5, 150);
        let mut host: CodedContainment<C> = CodedContainment::label(&tree).unwrap();
        // containment semantics match tree ground truth
        let all = tree.ids_in_doc_order();
        for &u in &all {
            for &v in &all {
                if u != v {
                    assert_eq!(host.is_ancestor(u, v), tree.is_ancestor(u, v));
                }
            }
        }
        // 100 insertions splice in with no relabelling and stay correct
        let pool: Vec<_> = docs::element_pool(&tree);
        for (i, &target) in pool.iter().take(100).enumerate() {
            let node = tree.create(NodeKind::element("x"));
            if i % 2 == 0 {
                tree.prepend_child(target, node).unwrap();
            } else {
                tree.append_child(target, node).unwrap();
            }
            host.insert(&tree, node).unwrap();
        }
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(host.cmp_doc(w[0], w[1]), Ordering::Less);
        }
        for &u in order.iter().step_by(7) {
            for &v in order.iter().step_by(11) {
                if u != v {
                    assert_eq!(host.is_ancestor(u, v), tree.is_ancestor(u, v));
                }
            }
        }
    }

    #[test]
    fn qed_codes_compose_with_a_containment_host() {
        check_host::<QCode>();
    }

    #[test]
    fn vector_codes_compose_with_a_containment_host() {
        check_host::<VectorCode>();
    }

    #[test]
    fn orthogonal_roster_matches_figure7() {
        for name in ["QED", "CDQS", "Vector"] {
            assert!(has_order_code_algebra(name));
        }
        for name in ["DeweyID", "Ordpath", "ImprovedBinary", "XRel", "LSDX"] {
            assert!(!has_order_code_algebra(name));
        }
    }
}
