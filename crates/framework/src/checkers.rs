//! Empirical property checkers: one measured verdict per §5.1 property.
//!
//! Where the paper's Figure 7 records each scheme's *declared*
//! characteristics, these checkers drive real workloads through the
//! implementations and grade what actually happens. The grading rules are
//! deliberately simple and fully documented, so every verdict is
//! reconstructible from the evidence:
//!
//! | Property | Rule |
//! |---|---|
//! | Persistent Labels | `F` iff zero relabels across the standard battery (random / uniform / skewed / mixed-delete, 150–200 ops each) |
//! | XPath Evaluations | `F` = ancestor, parent and sibling all answered and correct; `P` = a subset; `N` = none. Any *wrong* answer is recorded as a soundness finding |
//! | Level Encoding | `F` iff level answered and always equal to true depth; `N` otherwise |
//! | Overflow Problem | `F` iff zero overflow events *and* zero relabels across the adversarial battery (600-op skew, 300-op zigzag, 300-op append) run on the scheme's tightened audit instance when it has one |
//! | Orthogonal | `F` iff the scheme's code algebra composes with the containment host in [`crate::orthogonal`] |
//! | Compact Encoding | graded from measured size evidence: `F` ≤ 0.5 bits per skewed insert and bulk mean ≤ 192 bits; `P` ≤ 1 bit/insert; `N` otherwise (see EXPERIMENTS.md for why this column is the hardest to reconstruct) |
//! | Division Computation | `F` iff the instrumented division counter stays zero |
//! | Recursive Labelling | `F` iff the instrumented recursion counter stays zero |
//!
//! The checkers grade the **raw label algebra** (`scheme.relation`,
//! `scheme.cmp_doc`, `scheme.level` — see [`crate::verify`]) and never
//! route through the encoding layer's `Topology` sidecar
//! (`xupd-encoding`), which answers every structural question in O(1)
//! regardless of the scheme. Figure 7's *XPath Evaluations* column is a
//! property of the labels; grading it through the topology index would
//! make every scheme look `F`. The encoding keeps the label path
//! available as `EncodedDocument::is_ancestor_via_labels` (and the
//! `*_via_labels` reference axes), and a differential property suite in
//! `crates/encoding/tests/topology_props.rs` pins the two paths
//! equivalent for all twelve schemes.

use crate::driver::{run_script_dyn, DriveStats};
use crate::orthogonal::has_order_code_algebra;
use crate::verify::{verify_dyn, VerifyOutcome};
use xupd_labelcore::{Compliance, DynScheme, LabelingScheme, Property, SchemeSession, SchemeStats};
use xupd_workloads::{docs, Script, ScriptKind};
use xupd_xmldom::{TreeError, XmlTree};

/// Raw evidence backing a measured row.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// Total relabels across the standard battery.
    pub standard_relabels: u64,
    /// Overflow events + relabels across the adversarial battery.
    pub adversarial_overflows: u64,
    /// Relabels across the adversarial battery.
    pub adversarial_relabels: u64,
    /// Division operations across everything.
    pub divisions: u64,
    /// Recursive labelling calls across everything.
    pub recursive_calls: u64,
    /// Mean label size after bulk-labelling the reference document.
    pub bulk_mean_bits: f64,
    /// Label-bit growth per insertion at the skew site.
    pub skew_bits_per_insert: f64,
    /// Largest label observed anywhere (bits).
    pub peak_bits: u64,
    /// Combined invariant verification across workloads.
    pub verification: VerifyOutcome,
}

/// A measured compliance row.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Scheme name.
    pub name: &'static str,
    /// Measured compliance in [`Property::ALL`] order.
    pub cells: [Compliance; 8],
    /// The evidence behind the verdicts.
    pub evidence: Evidence,
    /// Human-readable findings (soundness violations, notable events).
    pub notes: Vec<String>,
}

impl Measured {
    /// Measured compliance for one property.
    pub fn cell(&self, p: Property) -> Compliance {
        // `Property::ALL` lists the variants in declaration order, so the
        // discriminant is the column index (asserted by the labelcore
        // `property_all_has_stable_order` test).
        self.cells[p as usize]
    }
}

/// Standard battery sizing.
const STANDARD_DOC_NODES: usize = 300;
const STANDARD_OPS: usize = 150;
/// Adversarial battery sizing (chosen to exceed the default encoding
/// budgets: 255-bit length fields, 32-bit CDBS cells, f64 mantissa, u64
/// vector components under zigzag).
const ADVERSARIAL_SKEW_OPS: usize = 600;
const ADVERSARIAL_ZIGZAG_OPS: usize = 300;
const ADVERSARIAL_APPEND_OPS: usize = 300;

fn drive(
    session: &mut dyn DynScheme,
    base: &XmlTree,
    kind: ScriptKind,
    ops: usize,
    seed: u64,
    verification: &mut VerifyOutcome,
) -> Result<(DriveStats, SchemeStats), TreeError> {
    session.reset_stats();
    let mut tree = base.clone();
    session.label_tree(&tree)?;
    let script = Script::generate(kind, ops, tree.len(), seed);
    let stats = run_script_dyn(&mut tree, session, &script)?;
    verification.absorb(&verify_dyn(&tree, session, 300, seed ^ 0xabc)?);
    Ok((stats, session.stats().clone()))
}

/// Run the full checker battery against `scheme` and grade the eight
/// properties.
pub fn measure_scheme<S: LabelingScheme + Clone + 'static>(scheme: S) -> Result<Measured, TreeError> {
    measure_session(&mut SchemeSession::new(scheme))
}

/// Object-safe [`measure_scheme`]: the battery itself, written once
/// against [`DynScheme`] sessions so the registry's parallel fan-out and
/// the typed API grade identically.
pub fn measure_session(session: &mut dyn DynScheme) -> Result<Measured, TreeError> {
    let name = session.name();
    let mut ev = Evidence::default();
    let mut notes = Vec::new();

    // ---- standard battery: persistence, relations, level, counters ----
    let base = docs::random_tree(0xD0C, STANDARD_DOC_NODES);
    for (i, kind) in [
        ScriptKind::Random,
        ScriptKind::Uniform,
        ScriptKind::Skewed,
        ScriptKind::MixedDelete,
    ]
    .into_iter()
    .enumerate()
    {
        let (ds, ss) = drive(
            session,
            &base,
            kind,
            STANDARD_OPS,
            100 + i as u64,
            &mut ev.verification,
        )?;
        ev.standard_relabels += ds.relabeled;
        ev.divisions += ss.divisions;
        ev.recursive_calls += ss.recursive_calls;
    }

    // ---- size battery: bulk mean + skew growth -----------------------
    {
        session.reset_stats();
        let bulk_doc = docs::random_tree(0xB16, 2000);
        session.label_tree(&bulk_doc)?;
        ev.bulk_mean_bits = session.mean_bits();
        ev.divisions += session.stats().divisions;
        ev.recursive_calls += session.stats().recursive_calls;
        ev.peak_bits = ev.peak_bits.max(session.max_bits());
    }
    for kind in [ScriptKind::Skewed, ScriptKind::PrependStorm] {
        session.reset_stats();
        let mut tree = docs::wide(40);
        session.label_tree(&tree)?;
        let before_max = session.max_bits();
        let script = Script::generate(kind, 300, tree.len(), 7);
        let ds = run_script_dyn(&mut tree, session, &script)?;
        ev.divisions += session.stats().divisions;
        ev.peak_bits = ev.peak_bits.max(ds.peak_label_bits);
        let growth =
            (ds.peak_label_bits.saturating_sub(before_max)) as f64 / ds.inserts.max(1) as f64;
        ev.skew_bits_per_insert = ev.skew_bits_per_insert.max(growth);
    }

    // ---- adversarial battery on the audit instance -------------------
    {
        let mut audit = session.overflow_audit_instance();
        let target: &mut dyn DynScheme = match audit.as_deref_mut() {
            Some(a) => a,
            None => session,
        };
        let small = docs::wide(20);
        let mut sink = VerifyOutcome::default();
        for (kind, ops, seed) in [
            (ScriptKind::Skewed, ADVERSARIAL_SKEW_OPS, 201),
            (ScriptKind::PrependStorm, ADVERSARIAL_SKEW_OPS, 204),
            (ScriptKind::Zigzag, ADVERSARIAL_ZIGZAG_OPS, 202),
            (ScriptKind::AppendOnly, ADVERSARIAL_APPEND_OPS, 203),
        ] {
            let (ds, _) = drive(target, &small, kind, ops, seed, &mut sink)?;
            ev.adversarial_overflows += ds.overflow_events;
            ev.adversarial_relabels += ds.relabeled;
        }
        // Adversarial runs must stay sound even when they overflow.
        if !sink.is_sound() {
            notes.push(format!(
                "adversarial battery soundness violations: {} order, dup={}",
                sink.order_violations, sink.duplicate_labels
            ));
        }
    }

    // ---- grade -------------------------------------------------------
    let v = &ev.verification;
    if !v.is_sound() {
        notes.push(format!(
            "standard battery soundness violations: {} order violations, duplicates={}, \
             relation mismatches (anc/par/sib) = {}/{}/{}",
            v.order_violations,
            v.duplicate_labels,
            v.ancestor.mismatches,
            v.parent.mismatches,
            v.sibling.mismatches
        ));
    }

    let persistent = grade_bool(ev.standard_relabels == 0);
    let relations_supported = [&v.ancestor, &v.parent, &v.sibling]
        .iter()
        .filter(|r| r.supported && r.mismatches == 0)
        .count();
    let xpath = match relations_supported {
        3 => Compliance::Full,
        0 => Compliance::None,
        _ => Compliance::Partial,
    };
    let level = grade_bool(v.level == Some(0));
    let overflow = grade_bool(ev.adversarial_overflows == 0 && ev.adversarial_relabels == 0);
    let orthogonal = grade_bool(has_order_code_algebra(name));
    let compact = if ev.skew_bits_per_insert <= 0.5 && ev.bulk_mean_bits <= 192.0 {
        Compliance::Full
    } else if ev.skew_bits_per_insert <= 1.0 && ev.bulk_mean_bits <= 512.0 {
        Compliance::Partial
    } else {
        Compliance::None
    };
    let division = grade_bool(ev.divisions == 0);
    let recursion = grade_bool(ev.recursive_calls == 0);

    Ok(Measured {
        name,
        cells: [
            persistent, xpath, level, overflow, orthogonal, compact, division, recursion,
        ],
        evidence: ev,
        notes,
    })
}

fn grade_bool(full: bool) -> Compliance {
    if full {
        Compliance::Full
    } else {
        Compliance::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_schemes::vector::VectorScheme;

    #[test]
    fn qed_measures_like_its_figure7_row() {
        let m = measure_scheme(Qed::new()).unwrap();
        assert_eq!(m.cell(Property::PersistentLabels), Compliance::Full);
        assert_eq!(m.cell(Property::XPathEvaluations), Compliance::Full);
        assert_eq!(m.cell(Property::LevelEncoding), Compliance::Full);
        assert_eq!(m.cell(Property::OverflowFree), Compliance::Full);
        assert_eq!(m.cell(Property::Orthogonal), Compliance::Full);
        assert_eq!(m.cell(Property::NoDivision), Compliance::None);
        assert_eq!(m.cell(Property::NonRecursive), Compliance::None);
        assert_eq!(m.cell(Property::CompactEncoding), Compliance::None);
        assert!(m.notes.is_empty(), "{:?}", m.notes);
    }

    #[test]
    fn dewey_measures_like_its_figure7_row() {
        let m = measure_scheme(DeweyId::new()).unwrap();
        assert_eq!(m.cell(Property::PersistentLabels), Compliance::None);
        assert_eq!(m.cell(Property::XPathEvaluations), Compliance::Full);
        assert_eq!(m.cell(Property::LevelEncoding), Compliance::Full);
        assert_eq!(m.cell(Property::OverflowFree), Compliance::None);
        assert_eq!(m.cell(Property::Orthogonal), Compliance::None);
        assert_eq!(m.cell(Property::NoDivision), Compliance::Full);
        assert_eq!(m.cell(Property::NonRecursive), Compliance::Full);
    }

    #[test]
    fn vector_overflow_divergence_is_measured() {
        // The paper (§4) doubts Vector's overflow-freedom; the zigzag
        // probe vindicates the doubt.
        let m = measure_scheme(VectorScheme::new()).unwrap();
        assert_eq!(m.cell(Property::OverflowFree), Compliance::None);
        assert_eq!(m.cell(Property::PersistentLabels), Compliance::Full);
        assert_eq!(m.cell(Property::NoDivision), Compliance::Full);
    }
}
