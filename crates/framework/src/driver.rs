//! Replays update scripts against a labelling scheme, collecting the
//! evidence the property checkers grade.

use crate::mutations::{LogBindings, LogId, Mutation, MutationLog, NodeRef, Place};
use xupd_labelcore::{DynScheme, Labeling, LabelingScheme, SessionMut};
use xupd_workloads::{Script, ScriptOp};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Evidence accumulated while driving one script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriveStats {
    /// Nodes inserted.
    pub inserts: usize,
    /// Subtrees deleted.
    pub deletes: usize,
    /// Existing nodes whose labels the scheme changed.
    pub relabeled: u64,
    /// §4 overflow events the scheme reported.
    pub overflow_events: u64,
    /// Largest single-label size (bits) observed at any checkpoint —
    /// catches pre-renumbering peaks that the end state hides.
    pub peak_label_bits: u64,
    /// Mean label size (bits) at the end of the script.
    pub end_mean_bits: f64,
    /// Largest single-label size at the end of the script.
    pub end_max_bits: u64,
}

/// How often (in ops) the driver scans label sizes for the peak metric.
pub(crate) const CHECKPOINT_EVERY: usize = 25;

/// The live element nodes of a tree in document order, maintained
/// **incrementally** across script ops.
///
/// The driver resolves every op index against this pool. Rebuilding it
/// with a full preorder scan per op made replay O(ops·n); instead, each
/// insert splices the new leaf next to its document-order predecessor
/// element, and each delete drains the subtree's contiguous run — both
/// proportional to the affected suffix, with plain pointer walks and
/// `u32`-sized bookkeeping instead of a fresh allocation per op.
///
/// Batch application ([`crate::mutations::apply_log_dyn_with_pool`])
/// amortises further: the pool is left untouched while the batch runs
/// and [`ElementPool::rebuild`] restores it with **one** full scan per
/// batch instead of one suffix rewrite per op.
#[derive(Debug, Clone)]
pub struct ElementPool {
    /// Live elements in document order.
    order: Vec<NodeId>,
    /// `NodeId` index → position in `order`. Meaningful only for ids
    /// currently present in `order` (node ids are never reused).
    pos: Vec<u32>,
}

impl ElementPool {
    /// One full scan at script start — the last one.
    pub fn build(tree: &XmlTree) -> Self {
        let order: Vec<NodeId> = tree
            .preorder()
            .filter(|&n| tree.kind(n).is_element())
            .collect();
        let mut pos = vec![0u32; tree.id_bound()];
        for (i, &n) in order.iter().enumerate() {
            pos[n.index()] = i as u32;
        }
        ElementPool { order, pos }
    }

    /// Discard the incrementally maintained state and rescan — the
    /// once-per-batch path.
    pub fn rebuild(&mut self, tree: &XmlTree) {
        *self = Self::build(tree);
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the tree holds no element at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Live elements in document order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The op-index addressing rule: modulo the live pool size.
    pub fn resolve(&self, i: usize) -> NodeId {
        self.order[i % self.order.len()]
    }

    /// The nearest element preceding `node` in document order: a preorder
    /// predecessor pointer walk (previous sibling's deepest last
    /// descendant, else parent), skipping non-element nodes.
    fn prev_element(tree: &XmlTree, node: NodeId) -> Option<NodeId> {
        let mut cur = node;
        loop {
            cur = match tree.prev_sibling(cur) {
                Some(mut p) => {
                    while let Some(last) = tree.last_child(p) {
                        p = last;
                    }
                    p
                }
                None => tree.parent(cur)?,
            };
            if tree.kind(cur).is_element() {
                return Some(cur);
            }
        }
    }

    /// Register a freshly attached element leaf. Its pool position is one
    /// past its document-order predecessor element (or 0 when none —
    /// possible only for a first document element).
    pub fn insert_new(&mut self, tree: &XmlTree, node: NodeId) {
        let at = match Self::prev_element(tree, node) {
            Some(prev) => self.pos[prev.index()] as usize + 1,
            None => 0,
        };
        self.order.insert(at, node);
        if self.pos.len() <= node.index() {
            self.pos.resize(node.index() + 1, 0);
        }
        for j in at..self.order.len() {
            self.pos[self.order[j].index()] = j as u32;
        }
    }

    /// Unregister the still-attached subtree rooted at element `node`:
    /// in the element-filtered preorder its elements form one contiguous
    /// run starting at `node`'s own position.
    pub fn remove_subtree(&mut self, tree: &XmlTree, node: NodeId) {
        let at = self.pos[node.index()] as usize;
        let doomed = tree
            .preorder_from(node)
            .filter(|&n| tree.kind(n).is_element())
            .count();
        self.order.drain(at..at + doomed);
        for j in at..self.order.len() {
            self.pos[self.order[j].index()] = j as u32;
        }
    }
}

/// Replay `script` against `scheme`/`labeling`/`tree`.
///
/// Index resolution: each op's index addresses the element pool (live
/// element nodes in document order) modulo its size. Deletions skip the
/// document element and never shrink the pool below two elements.
/// [`ScriptOp::InsertAfter`] with index `usize::MAX` is the zigzag
/// pattern: the driver maintains an adjacent pair and alternately
/// tightens its left and right ends.
pub fn run_script<S: LabelingScheme + Clone + 'static>(
    tree: &mut XmlTree,
    scheme: &mut S,
    labeling: &mut Labeling<S::Label>,
    script: &Script,
) -> Result<DriveStats, TreeError> {
    run_script_dyn(tree, &mut SessionMut::new(scheme, labeling), script)
}

/// Object-safe [`run_script`]: the implementation, written once against
/// [`DynScheme`] so the registry battery and the typed API replay the
/// exact same op semantics.
///
/// Since the mutation-log port, each script op is translated into a
/// one-op [`MutationLog`] and applied through the same
/// [`crate::mutations`] machinery as [`crate::mutations::apply_log_dyn`]
/// — per-op application (each op addresses the pool the previous op left
/// behind) is simply batch size 1, which keeps the historical semantics
/// and the `results/*` goldens untouched. The per-op path performs no
/// validation or snapshotting: the driver only emits ops it has already
/// resolved against live pool targets, and atomicity is the *batch*
/// API's contract.
pub fn run_script_dyn(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    script: &Script,
) -> Result<DriveStats, TreeError> {
    let mut stats = DriveStats::default();
    let mut zig: Option<(NodeId, NodeId)> = None;
    let mut zig_step = 0usize;
    let mut pool = ElementPool::build(tree);
    // One mutation buffer and one binding table, reused across ops: the
    // hot path allocates only what the ops themselves require.
    let mut batch = MutationLog::new();
    let mut binds = LogBindings::default();

    for (op_idx, op) in script.ops.iter().enumerate() {
        if pool.is_empty() {
            break;
        }
        batch.clear();
        binds.clear();
        // (zig pair after this op, zig_step increments) resolved from the
        // batch bindings once the mutations have been applied.
        let mut zig_plan: Option<(Option<(NodeId, NodeId)>, bool)> = None;
        match *op {
            ScriptOp::InsertBefore(i) => {
                let target = pool.resolve(i);
                let place = if tree.parent(target) == Some(tree.root())
                    || tree.parent(target).is_none()
                {
                    Place::FirstChildOf(NodeRef::Node(target))
                } else {
                    Place::Before(NodeRef::Node(target))
                };
                batch.push(Mutation::CreateElement {
                    id: LogId(0),
                    name: "u".to_string(),
                    place,
                });
            }
            ScriptOp::InsertAfter(i) if i == usize::MAX => {
                // zigzag: insert between an adjacent pair, alternately
                // keeping the new node as the pair's right or left end.
                match zig {
                    Some((a, b))
                        if tree.is_alive(a)
                            && tree.is_alive(b)
                            && tree.next_sibling(a) == Some(b) =>
                    {
                        batch.push(Mutation::CreateElement {
                            id: LogId(0),
                            name: "u".to_string(),
                            place: Place::After(NodeRef::Node(a)),
                        });
                        zig_plan = Some((Some((a, b)), false));
                    }
                    _ => {
                        let base = pool.resolve(pool.len() / 2);
                        batch.push(Mutation::CreateElement {
                            id: LogId(0),
                            name: "u".to_string(),
                            place: Place::LastChildOf(NodeRef::Node(base)),
                        });
                        batch.push(Mutation::CreateElement {
                            id: LogId(1),
                            name: "u".to_string(),
                            place: Place::LastChildOf(NodeRef::Node(base)),
                        });
                        batch.push(Mutation::CreateElement {
                            id: LogId(2),
                            name: "u".to_string(),
                            place: Place::After(NodeRef::New(LogId(0))),
                        });
                        zig_plan = Some((None, true));
                    }
                }
            }
            ScriptOp::InsertAfter(i) => {
                let target = pool.resolve(i);
                let place = if tree.parent(target) == Some(tree.root())
                    || tree.parent(target).is_none()
                {
                    Place::LastChildOf(NodeRef::Node(target))
                } else {
                    Place::After(NodeRef::Node(target))
                };
                batch.push(Mutation::CreateElement {
                    id: LogId(0),
                    name: "u".to_string(),
                    place,
                });
            }
            ScriptOp::PrependChild(i) => {
                batch.push(Mutation::CreateElement {
                    id: LogId(0),
                    name: "u".to_string(),
                    place: Place::FirstChildOf(NodeRef::Node(pool.resolve(i))),
                });
            }
            ScriptOp::AppendChild(i) => {
                batch.push(Mutation::CreateElement {
                    id: LogId(0),
                    name: "u".to_string(),
                    place: Place::LastChildOf(NodeRef::Node(pool.resolve(i))),
                });
            }
            ScriptOp::DeleteSubtree(i) => {
                let target = pool.resolve(i);
                if Some(target) == tree.document_element() || pool.len() <= 2 {
                    continue;
                }
                batch.push(Mutation::Delete {
                    target: NodeRef::Node(target),
                });
            }
        }
        for m in batch.iter() {
            crate::mutations::apply_mutation_dyn(
                tree,
                Some(&mut *session),
                Some(&mut pool),
                &mut binds,
                m,
                &mut stats,
            )?;
        }
        if let Some((pair, init)) = zig_plan {
            let (a, b, node) = if init {
                (binds.node(LogId(0))?, binds.node(LogId(1))?, binds.node(LogId(2))?)
            } else {
                let (a, b) = pair.ok_or(TreeError::Invariant(
                    "zigzag pair missing".to_string(),
                ))?;
                (a, b, binds.node(LogId(0))?)
            };
            zig = Some(if zig_step % 2 == 0 { (a, node) } else { (node, b) });
            zig_step += 1;
        }
        if op_idx % CHECKPOINT_EVERY == 0 {
            stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
        }
    }
    stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
    stats.end_mean_bits = session.mean_bits();
    stats.end_max_bits = session.max_bits();
    Ok(stats)
}

/// Label a freshly grafted **subtree** (the paper's third structural
/// update class, §1/§3.1.2: "Subtree insertions may be serialised as a
/// sequence of nodes and inserted individually"): `root` and all its
/// descendants are already attached to `tree`; each is labelled in
/// preorder through the scheme's ordinary single-node insertion path.
/// Returns the accumulated insert evidence.
pub fn graft_subtree<S: LabelingScheme + Clone + 'static>(
    tree: &XmlTree,
    scheme: &mut S,
    labeling: &mut Labeling<S::Label>,
    root: NodeId,
) -> Result<DriveStats, TreeError> {
    graft_subtree_dyn(tree, &mut SessionMut::new(scheme, labeling), root)
}

/// Object-safe [`graft_subtree`].
pub fn graft_subtree_dyn(
    tree: &XmlTree,
    session: &mut dyn DynScheme,
    root: NodeId,
) -> Result<DriveStats, TreeError> {
    let mut stats = DriveStats::default();
    for node in tree.preorder_from(root) {
        apply_insert_dyn(tree, session, node, &mut stats)?;
    }
    stats.peak_label_bits = session.max_bits();
    stats.end_mean_bits = session.mean_bits();
    stats.end_max_bits = session.max_bits();
    Ok(stats)
}

/// Move a subtree: detach `root` from its current position, re-attach it
/// with `attach`, and relabel it through the scheme's insertion path.
/// Labelling-wise a move is a delete followed by a subtree insertion —
/// which is exactly how XQuery Update expresses it — so persistent
/// schemes keep every *other* label untouched, while the moved nodes
/// necessarily get fresh labels (their positions changed).
pub fn move_subtree<S: LabelingScheme + Clone + 'static>(
    tree: &mut XmlTree,
    scheme: &mut S,
    labeling: &mut Labeling<S::Label>,
    root: NodeId,
    attach: impl FnOnce(&mut XmlTree, NodeId),
) -> Result<DriveStats, TreeError> {
    scheme.on_delete(tree, labeling, root);
    tree.detach(root)?;
    attach(tree, root);
    graft_subtree(tree, scheme, labeling, root)
}

pub(crate) fn apply_insert_dyn(
    tree: &XmlTree,
    session: &mut dyn DynScheme,
    node: NodeId,
    stats: &mut DriveStats,
) -> Result<(), TreeError> {
    let report = session.on_insert(tree, node)?;
    stats.inserts += 1;
    stats.relabeled += report.relabeled.len() as u64;
    if report.overflowed {
        stats.overflow_events += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, Script, ScriptKind};

    #[test]
    fn random_script_drives_cleanly_for_qed() {
        let mut tree = docs::random_tree(1, 100);
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(ScriptKind::Random, 150, 100, 2);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        assert_eq!(stats.inserts, 150);
        assert_eq!(stats.relabeled, 0);
        assert_eq!(stats.overflow_events, 0);
        tree.validate().unwrap();
        assert_eq!(labeling.len(), tree.len());
    }

    #[test]
    fn skewed_script_relabels_for_dewey() {
        let mut tree = docs::wide(20);
        let mut scheme = DeweyId::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(ScriptKind::Skewed, 50, 20, 3);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        assert!(stats.relabeled > 0, "skewed inserts renumber for DeweyID");
    }

    #[test]
    fn mixed_delete_keeps_labeling_in_sync() {
        let mut tree = docs::random_tree(4, 120);
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(ScriptKind::MixedDelete, 200, 120, 5);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        assert!(stats.deletes > 0);
        tree.validate().unwrap();
        assert_eq!(labeling.len(), tree.len(), "one label per live node");
    }

    #[test]
    fn zigzag_initialises_and_runs() {
        let mut tree = docs::wide(10);
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(ScriptKind::Zigzag, 60, 10, 6);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        assert!(stats.inserts >= 60);
        assert_eq!(labeling.len(), tree.len());
    }

    #[test]
    fn graft_labels_a_whole_subtree_in_document_order() {
        use xupd_xmldom::TreeBuilder;
        let mut tree = docs::book();
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();

        // build a detached appendix subtree, then graft it under <book>
        let sub = TreeBuilder::new()
            .open("appendix")
            .leaf("section", "errata")
            .leaf("section", "index")
            .close()
            .finish();
        // copy the subtree into the main tree (serialised as a sequence
        // of nodes, exactly as §3.1.2 describes)
        let book = tree.document_element().unwrap();
        let sub_root_src = sub.document_element().unwrap();
        let appendix = clone_into(&sub, sub_root_src, &mut tree);
        tree.append_child(book, appendix).unwrap();

        let stats = graft_subtree(&tree, &mut scheme, &mut labeling, appendix).unwrap();
        assert_eq!(stats.inserts, sub.subtree_size(sub_root_src));
        assert_eq!(stats.relabeled, 0, "QED grafts persist too");
        assert_eq!(labeling.len(), tree.len());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                std::cmp::Ordering::Less
            );
        }

        fn clone_into(src: &XmlTree, node: NodeId, dst: &mut XmlTree) -> NodeId {
            let copy = dst.create(src.kind(node).clone());
            for child in src.children(node) {
                let c = clone_into(src, child, dst);
                dst.append_child(copy, c).expect("fresh node is detached");
            }
            copy
        }
    }

    #[test]
    fn move_subtree_keeps_other_labels_for_persistent_schemes() {
        let mut tree = docs::book();
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let publisher = tree
            .preorder()
            .find(|&n| tree.kind(n).name() == Some("publisher"))
            .unwrap();
        let title = tree
            .preorder()
            .find(|&n| tree.kind(n).name() == Some("title"))
            .unwrap();
        let untouched: Vec<_> = tree
            .ids_in_doc_order()
            .into_iter()
            .filter(|&n| !tree.is_ancestor(publisher, n) && n != publisher)
            .map(|n| (n, labeling.req(n).unwrap().clone()))
            .collect();
        // move <publisher> to sit before <title>
        let stats = move_subtree(&mut tree, &mut scheme, &mut labeling, publisher, |t, r| {
            t.insert_before(title, r).expect("live anchor");
        }).unwrap();
        assert_eq!(stats.inserts, tree.subtree_size(publisher));
        assert_eq!(stats.relabeled, 0, "no bystander relabels");
        for (n, old) in untouched {
            assert_eq!(labeling.req(n).unwrap(), &old, "bystander label changed");
        }
        // order + structure intact
        tree.validate().unwrap();
        assert_eq!(labeling.len(), tree.len());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                std::cmp::Ordering::Less
            );
        }
        // publisher is now the first child of book
        let book = tree.document_element().unwrap();
        assert_eq!(tree.first_child(book), Some(publisher));
    }

    #[test]
    fn graft_relabels_followers_for_dewey() {
        use xupd_xmldom::NodeKind;
        let mut tree = docs::wide(5);
        let mut scheme = DeweyId::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let first = tree.first_child(root_elem).unwrap();
        // graft a two-node subtree before the first child
        let sub_root = tree.create(NodeKind::element("g"));
        let sub_leaf = tree.create(NodeKind::element("gl"));
        tree.append_child(sub_root, sub_leaf).unwrap();
        tree.insert_before(first, sub_root).unwrap();
        let stats = graft_subtree(&tree, &mut scheme, &mut labeling, sub_root).unwrap();
        assert_eq!(stats.inserts, 2);
        assert!(stats.relabeled > 0, "following siblings renumbered");
    }

    #[test]
    fn peak_captures_pre_renumber_sizes() {
        use xupd_schemes::prefix::improved_binary::ImprovedBinary;
        let mut tree = docs::wide(5);
        let mut scheme = ImprovedBinary::with_max_code_bits(64);
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let script = Script::generate(ScriptKind::Skewed, 200, 5, 7);
        let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
        assert!(stats.overflow_events > 0);
        assert!(
            stats.peak_label_bits > stats.end_max_bits / 2,
            "peak {} retains the pre-renumber spike (end {})",
            stats.peak_label_bits,
            stats.end_max_bits
        );
    }
}
