//! Declared-vs-measured agreement reporting — the reproduction's
//! headline artifact (EXPERIMENTS.md row F7).

use crate::checkers::Measured;
use crate::matrix::{measured_matrix, EvaluationMatrix, MatrixRow};
use std::fmt::Write;
use xupd_labelcore::{Compliance, Property, SchemeDescriptor};

/// A single declared-vs-measured disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Scheme name.
    pub scheme: &'static str,
    /// The property on which the verdicts differ.
    pub property: Property,
    /// The paper's Figure 7 letter.
    pub declared: Compliance,
    /// This reproduction's measured letter.
    pub measured: Compliance,
}

/// The full declared-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct Figure7Report {
    results: Vec<(SchemeDescriptor, Measured)>,
}

impl Figure7Report {
    /// Build from checker results (see [`crate::matrix::measure_figure7`]).
    pub fn new(results: Vec<(SchemeDescriptor, Measured)>) -> Self {
        Figure7Report { results }
    }

    /// The underlying per-scheme results.
    pub fn results(&self) -> &[(SchemeDescriptor, Measured)] {
        &self.results
    }

    /// The declared matrix restricted to the compared schemes.
    pub fn declared(&self) -> EvaluationMatrix {
        EvaluationMatrix {
            title: "Declared (paper Figure 7)".to_string(),
            rows: self
                .results
                .iter()
                .map(|(d, _)| MatrixRow {
                    cells: d.declared,
                    descriptor: d.clone(),
                })
                .collect(),
        }
    }

    /// The measured matrix.
    pub fn measured(&self) -> EvaluationMatrix {
        measured_matrix(&self.results)
    }

    /// Every cell where measured ≠ declared.
    pub fn divergences(&self) -> Vec<Divergence> {
        let mut out = Vec::new();
        for (d, m) in &self.results {
            for (i, &p) in Property::ALL.iter().enumerate() {
                if d.declared[i] != m.cells[i] {
                    out.push(Divergence {
                        scheme: d.name,
                        property: p,
                        declared: d.declared[i],
                        measured: m.cells[i],
                    });
                }
            }
        }
        out
    }

    /// Agreement ratio over all graded cells.
    pub fn agreement(&self) -> (usize, usize) {
        let total = self.results.len() * Property::ALL.len();
        let agree = total - self.divergences().len();
        (agree, total)
    }

    /// Soundness findings (order violations, duplicate labels, wrong
    /// relation answers) per scheme — the framework's "is the scheme even
    /// usable" output; LSDX's uniqueness failures surface here.
    pub fn soundness_findings(&self) -> Vec<(&'static str, Vec<String>)> {
        self.results
            .iter()
            .filter(|(_, m)| !m.notes.is_empty())
            .map(|(d, m)| (d.name, m.notes.clone()))
            .collect()
    }

    /// Render the full report: both matrices, the ranking, divergences
    /// and soundness findings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.declared().render());
        out.push('\n');
        out.push_str(&self.measured().render());
        out.push('\n');

        let (agree, total) = self.agreement();
        let _ = writeln!(out, "Agreement: {agree}/{total} graded cells");

        let divs = self.divergences();
        if divs.is_empty() {
            out.push_str("No divergences.\n");
        } else {
            out.push_str("Divergences (declared → measured):\n");
            for d in &divs {
                let _ = writeln!(
                    out,
                    "  {:<18} {:<20} {} → {}",
                    d.scheme,
                    d.property.column_header(),
                    d.declared,
                    d.measured
                );
            }
        }

        out.push_str("\nRanking by measured score (§5.2 analysis; unsound schemes\n");
        out.push_str("disqualified, as the paper disqualifies LSDX in §3.1.2):\n");
        let unsound: Vec<&str> = self
            .results
            .iter()
            .filter(|(_, m)| !m.notes.is_empty())
            .map(|(d, _)| d.name)
            .collect();
        for (name, score) in self.measured().ranking() {
            if unsound.contains(&name) {
                let _ = writeln!(
                    out,
                    "   -  {name} (disqualified: uniqueness/order violations)"
                );
            } else {
                let _ = writeln!(out, "  {score:>2}  {name}");
            }
        }

        let findings = self.soundness_findings();
        if !findings.is_empty() {
            out.push_str("\nSoundness findings:\n");
            for (name, notes) in findings {
                for n in notes {
                    let _ = writeln!(out, "  {name}: {n}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::measure_scheme;
    use xupd_schemes::prefix::cdqs::Cdqs;
    use xupd_schemes::prefix::qed::Qed;

    fn small_report() -> Figure7Report {
        let qed = Qed::new();
        let cdqs = Cdqs::new();
        let results = vec![
            (
                xupd_labelcore::LabelingScheme::descriptor(&qed),
                measure_scheme(qed).unwrap(),
            ),
            (
                xupd_labelcore::LabelingScheme::descriptor(&cdqs),
                measure_scheme(cdqs).unwrap(),
            ),
        ];
        Figure7Report::new(results)
    }

    #[test]
    fn qed_family_report_agreement() {
        let r = small_report();
        let (agree, total) = r.agreement();
        assert_eq!(total, 16);
        // QED agrees on everything; CDQS's sole divergence is Compact
        // (declared F, measured from skewed growth).
        let divs = r.divergences();
        assert!(agree >= 15, "{divs:?}");
        for d in divs {
            assert_eq!(d.scheme, "CDQS");
            assert_eq!(d.property, Property::CompactEncoding);
        }
    }

    #[test]
    fn render_includes_agreement_line() {
        let r = small_report();
        let s = r.render();
        assert!(s.contains("Agreement:"), "{s}");
        assert!(s.contains("Ranking"), "{s}");
    }
}
