//! Invariant verification against tree ground truth.
//!
//! Definition 1 requires unique, order-bearing labels; the *XPath
//! Evaluations* and *Level Encoding* properties additionally require that
//! relation and depth answers derived from labels alone are *correct*.
//! These verifiers compare a live labelling with the
//! [`XmlTree`] ground truth.
//!
//! Everything here interrogates the scheme's label algebra directly
//! (`scheme.relation(rel, lx, ly)` over label pairs) — deliberately
//! *not* the `Topology` sidecar the encoding layer uses to accelerate
//! queries. The framework measures what the **labels** can answer;
//! structural indexes would answer everything and mask the difference
//! Figure 7 exists to show.

use std::cmp::Ordering;
use xupd_testkit::TestRng;
use xupd_labelcore::{DynScheme, Labeling, LabelingScheme, Relation};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Per-relation verification outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelationCheck {
    /// The scheme answered (returned `Some`) for at least one pair.
    pub supported: bool,
    /// Number of answers disagreeing with tree ground truth.
    pub mismatches: usize,
    /// Pairs checked.
    pub checked: usize,
}

/// Whole-labelling verification outcome.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Consecutive document-order pairs whose labels do not compare
    /// `Less` — must be zero for a sound scheme.
    pub order_violations: usize,
    /// Two live nodes share a label (the LSDX failure mode).
    pub duplicate_labels: bool,
    /// Ancestor-descendant relation check.
    pub ancestor: RelationCheck,
    /// Parent-child relation check.
    pub parent: RelationCheck,
    /// Sibling relation check.
    pub sibling: RelationCheck,
    /// Level support: `Some(mismatches)` when the scheme answers level
    /// queries, `None` when unsupported.
    pub level: Option<usize>,
}

impl VerifyOutcome {
    /// No order violations, no duplicates, no wrong relation or level
    /// answers (unsupported is fine — wrong is not).
    pub fn is_sound(&self) -> bool {
        self.order_violations == 0
            && !self.duplicate_labels
            && self.ancestor.mismatches == 0
            && self.parent.mismatches == 0
            && self.sibling.mismatches == 0
            && self.level.unwrap_or(0) == 0
    }

    /// Merge another outcome (from a different workload) into this one.
    pub fn absorb(&mut self, other: &VerifyOutcome) {
        self.order_violations += other.order_violations;
        self.duplicate_labels |= other.duplicate_labels;
        for (a, b) in [
            (&mut self.ancestor, &other.ancestor),
            (&mut self.parent, &other.parent),
            (&mut self.sibling, &other.sibling),
        ] {
            a.supported |= b.supported;
            a.mismatches += b.mismatches;
            a.checked += b.checked;
        }
        self.level = match (self.level, other.level) {
            (Some(a), Some(b)) => Some(a + b),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
    }
}

/// Verify a labelling: full document-order scan, duplicate detection, and
/// `sample_pairs` random node pairs for each relation plus level checks.
///
/// Errors with [`TreeError::Unlabeled`] when a live node has no label —
/// a broken labelling that the soundness counters cannot meaningfully
/// grade.
pub fn verify<S: LabelingScheme>(
    tree: &XmlTree,
    scheme: &S,
    labeling: &Labeling<S::Label>,
    sample_pairs: usize,
    seed: u64,
) -> Result<VerifyOutcome, TreeError> {
    verify_core(
        tree,
        sample_pairs,
        seed,
        &|a, b| Ok(scheme.cmp_doc(labeling.req(a)?, labeling.req(b)?)),
        &|rel, a, b| Ok(scheme.relation(rel, labeling.req(a)?, labeling.req(b)?)),
        &|a| Ok(scheme.level(labeling.req(a)?)),
        &|| labeling.find_duplicate().is_some(),
    )
}

/// Object-safe [`verify`] over a [`DynScheme`] session.
pub fn verify_dyn(
    tree: &XmlTree,
    session: &dyn DynScheme,
    sample_pairs: usize,
    seed: u64,
) -> Result<VerifyOutcome, TreeError> {
    verify_core(
        tree,
        sample_pairs,
        seed,
        &|a, b| session.cmp_nodes(a, b),
        &|rel, a, b| session.relation_nodes(rel, a, b),
        &|a| session.level_node(a),
        &|| session.has_duplicate_labels(),
    )
}

/// The one verification algorithm. The typed and object-safe fronts both
/// funnel here, parameterised only by how a node resolves to its
/// scheme-algebra answers, so the two paths can never grade differently.
#[allow(clippy::too_many_arguments)]
fn verify_core(
    tree: &XmlTree,
    sample_pairs: usize,
    seed: u64,
    cmp: &dyn Fn(NodeId, NodeId) -> Result<Ordering, TreeError>,
    relation: &dyn Fn(Relation, NodeId, NodeId) -> Result<Option<bool>, TreeError>,
    level: &dyn Fn(NodeId) -> Result<Option<u32>, TreeError>,
    has_duplicate: &dyn Fn() -> bool,
) -> Result<VerifyOutcome, TreeError> {
    let mut out = VerifyOutcome::default();
    let order = tree.ids_in_doc_order();

    for w in order.windows(2) {
        if cmp(w[0], w[1])? != Ordering::Less {
            out.order_violations += 1;
        }
    }
    out.duplicate_labels = has_duplicate();

    let mut rng = TestRng::seed_from_u64(seed ^ 0xfeed);
    let mut level_mismatches: Option<usize> = None;
    for _ in 0..sample_pairs {
        let x = order[rng.gen_range(0..order.len())];
        let y = order[rng.gen_range(0..order.len())];
        if x == y {
            continue;
        }
        let truths = [
            (Relation::AncestorDescendant, tree.is_ancestor(x, y)),
            (Relation::ParentChild, tree.parent(y) == Some(x)),
            (
                Relation::Sibling,
                tree.parent(x).is_some() && tree.parent(x) == tree.parent(y),
            ),
        ];
        for (rel, truth) in truths {
            let check = match rel {
                Relation::AncestorDescendant => &mut out.ancestor,
                Relation::ParentChild => &mut out.parent,
                Relation::Sibling => &mut out.sibling,
            };
            if let Some(ans) = relation(rel, x, y)? {
                check.supported = true;
                check.checked += 1;
                if ans != truth {
                    check.mismatches += 1;
                }
            }
        }
        if let Some(lv) = level(x)? {
            let slot = level_mismatches.get_or_insert(0);
            if lv != tree.depth(x) {
                *slot += 1;
            }
        }
    }
    out.level = level_mismatches;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::containment::sector::Sector;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_workloads::docs;

    #[test]
    fn dewey_verifies_fully_sound() {
        let tree = docs::random_tree(2, 200);
        let mut scheme = DeweyId::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let v = verify(&tree, &scheme, &labeling, 400, 1).unwrap();
        assert!(v.is_sound(), "{v:?}");
        assert!(v.ancestor.supported && v.parent.supported && v.sibling.supported);
        assert_eq!(v.level, Some(0));
    }

    #[test]
    fn sector_reports_partial_support() {
        let tree = docs::random_tree(3, 200);
        let mut scheme = Sector::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let v = verify(&tree, &scheme, &labeling, 400, 2).unwrap();
        assert!(v.is_sound(), "{v:?}");
        assert!(v.ancestor.supported);
        assert!(!v.parent.supported);
        assert!(!v.sibling.supported);
        assert_eq!(v.level, None);
    }

    #[test]
    fn absorb_combines_outcomes() {
        let mut a = VerifyOutcome::default();
        let mut b = VerifyOutcome::default();
        b.order_violations = 2;
        b.ancestor.supported = true;
        b.ancestor.checked = 10;
        b.level = Some(1);
        a.absorb(&b);
        assert_eq!(a.order_violations, 2);
        assert!(a.ancestor.supported);
        assert_eq!(a.level, Some(1));
        assert!(!a.is_sound());
    }
}
