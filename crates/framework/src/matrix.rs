//! The Figure 7 evaluation matrix: declared (transcribed from the paper)
//! and measured (from the [`crate::checkers`] battery), with rendering.

use crate::checkers::{measure_session, Measured};
use xupd_labelcore::{Compliance, SchemeDescriptor};
use xupd_schemes::{registry, registry_figure7, SchemeEntry};
use xupd_xmldom::TreeError;

/// One matrix row: descriptive columns plus eight graded cells.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Scheme descriptor (name, citation, order kind, encoding rep,
    /// declared cells).
    pub descriptor: SchemeDescriptor,
    /// The graded cells this row displays (declared or measured).
    pub cells: [Compliance; 8],
}

impl MatrixRow {
    /// §5.2 score: sum of compliance scores over the eight cells.
    pub fn score(&self) -> u32 {
        self.cells.iter().map(|c| c.score()).sum()
    }
}

/// A rendered evaluation matrix.
#[derive(Debug, Clone)]
pub struct EvaluationMatrix {
    /// Matrix title (shown in the rendering).
    pub title: String,
    /// Rows in paper order.
    pub rows: Vec<MatrixRow>,
}

impl EvaluationMatrix {
    /// Render as an aligned ASCII table in the paper's column order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let headers = [
            "Labelling Scheme",
            "Doc. Order",
            "Enc. Rep.",
            "Persistent",
            "XPath Eval.",
            "Level Enc.",
            "Overflow",
            "Orthogonal",
            "Compact",
            "Division",
            "Recursion",
        ];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let mut body: Vec<Vec<String>> = Vec::new();
        for row in &self.rows {
            let d = &row.descriptor;
            let mut cols = vec![
                format!("{} {}", d.name, d.citation),
                d.order.to_string(),
                d.encoding.to_string(),
            ];
            cols.extend(row.cells.iter().map(|c| c.to_string()));
            for (i, c) in cols.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
            body.push(cols);
        }
        let fmt_row = |cols: &[String]| -> String {
            cols.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let header_cols: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        out.push_str(&fmt_row(&header_cols));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for cols in &body {
            out.push_str(&fmt_row(cols));
            out.push('\n');
        }
        out
    }

    /// Schemes ranked by §5.2 score, best first (the paper's "CDQS
    /// satisfies the greater number of properties" analysis).
    pub fn ranking(&self) -> Vec<(&'static str, u32)> {
        let mut v: Vec<(&'static str, u32)> = self
            .rows
            .iter()
            .map(|r| (r.descriptor.name, r.score()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

fn declared_matrix(entries: &[SchemeEntry], title: &str) -> EvaluationMatrix {
    EvaluationMatrix {
        title: title.to_string(),
        rows: entries
            .iter()
            .map(|e| MatrixRow {
                cells: e.descriptor.declared,
                descriptor: e.descriptor.clone(),
            })
            .collect(),
    }
}

/// The paper's Figure 7, transcribed: twelve rows of declared compliance.
pub fn declared_figure7() -> EvaluationMatrix {
    declared_matrix(
        &registry_figure7(),
        "Figure 7 — declared evaluation framework (transcribed from the paper)",
    )
}

/// Declared rows for the full roster (Figure 7 + §6 extensions).
pub fn declared_all() -> EvaluationMatrix {
    declared_matrix(
        &registry(),
        "Declared evaluation framework (Figure 7 roster + §6 extensions)",
    )
}

/// Run the checker battery over `entries` on `workers` pool threads
/// (schemes are independent, so the fan-out is per entry). Results come
/// back in roster order regardless of worker count, and **every**
/// failing scheme's error is reported — unlike the retired visitor
/// collector, which parked only the first.
pub fn measure_entries_threads(
    entries: Vec<SchemeEntry>,
    workers: usize,
) -> (
    Vec<(SchemeDescriptor, Measured)>,
    Vec<(SchemeDescriptor, TreeError)>,
) {
    let outcomes = xupd_exec::par_map_with(workers, &entries, |entry| {
        let mut session = entry.session();
        measure_session(session.as_mut())
    });
    let mut results = Vec::new();
    let mut errors = Vec::new();
    for (entry, outcome) in entries.into_iter().zip(outcomes) {
        match outcome {
            Ok(m) => results.push((entry.descriptor, m)),
            Err(e) => errors.push((entry.descriptor, e)),
        }
    }
    (results, errors)
}

fn first_error_or(
    (results, mut errors): (
        Vec<(SchemeDescriptor, Measured)>,
        Vec<(SchemeDescriptor, TreeError)>,
    ),
) -> Result<Vec<(SchemeDescriptor, Measured)>, TreeError> {
    if errors.is_empty() {
        Ok(results)
    } else {
        Err(errors.remove(0).1)
    }
}

/// Run the checker battery over the twelve Figure 7 schemes, in
/// parallel on the [`xupd_exec`] pool.
pub fn measure_figure7() -> Result<Vec<(SchemeDescriptor, Measured)>, TreeError> {
    measure_figure7_threads(xupd_exec::worker_count())
}

/// [`measure_figure7`] with an explicit worker count.
pub fn measure_figure7_threads(
    workers: usize,
) -> Result<Vec<(SchemeDescriptor, Measured)>, TreeError> {
    first_error_or(measure_entries_threads(registry_figure7(), workers))
}

/// Run the checker battery over the full roster, in parallel on the
/// [`xupd_exec`] pool.
pub fn measure_all() -> Result<Vec<(SchemeDescriptor, Measured)>, TreeError> {
    measure_all_threads(xupd_exec::worker_count())
}

/// [`measure_all`] with an explicit worker count.
pub fn measure_all_threads(
    workers: usize,
) -> Result<Vec<(SchemeDescriptor, Measured)>, TreeError> {
    first_error_or(measure_entries_threads(registry(), workers))
}

/// Build the measured matrix from checker results.
pub fn measured_matrix(results: &[(SchemeDescriptor, Measured)]) -> EvaluationMatrix {
    EvaluationMatrix {
        title: "Measured evaluation framework (this reproduction's checker battery)".to_string(),
        rows: results
            .iter()
            .map(|(d, m)| MatrixRow {
                descriptor: d.clone(),
                cells: m.cells,
            })
            .collect(),
    }
}

/// The paper's Figure 7 letters, verbatim, keyed by scheme name — the
/// golden transcription the descriptor tables are tested against.
pub const FIGURE7_GOLDEN: [(&str, &str, &str, &str); 12] = [
    ("XPath Accelerator", "Global", "Fixed", "NPFNNFFF"),
    ("XRel", "Global", "Fixed", "NPFNNFFF"),
    ("Sector", "Hybrid", "Fixed", "NPNNNPFN"),
    ("QRS", "Global", "Fixed", "NPNNNPFF"),
    ("DeweyID", "Hybrid", "Variable", "NFFNNNFF"),
    ("Ordpath", "Hybrid", "Variable", "FFFNNNNF"),
    ("DLN", "Hybrid", "Fixed", "NFFNNNFF"),
    ("LSDX", "Hybrid", "Variable", "NFFNNNFF"),
    ("ImprovedBinary", "Hybrid", "Variable", "FFFNNNNN"),
    ("QED", "Hybrid", "Variable", "FFFFFNNN"),
    ("CDQS", "Hybrid", "Variable", "FFFFFFNN"),
    ("Vector", "Hybrid", "Variable", "FPNFFFFN"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_matrix_matches_the_papers_figure7_verbatim() {
        let m = declared_figure7();
        assert_eq!(m.rows.len(), 12);
        for (row, (name, order, enc, letters)) in m.rows.iter().zip(FIGURE7_GOLDEN) {
            let d = &row.descriptor;
            assert_eq!(d.name, name);
            assert_eq!(d.order.to_string(), order, "{name}");
            assert_eq!(d.encoding.to_string(), enc, "{name}");
            let got: String = row.cells.iter().map(|c| c.letter()).collect();
            assert_eq!(got, letters, "{name}");
            assert!(d.in_figure7);
        }
    }

    #[test]
    fn cdqs_tops_the_declared_ranking() {
        // §5.2: "the CDQS labelling scheme satisfies the greater number
        // of properties and thus, may be considered … most generic".
        let m = declared_figure7();
        let ranking = m.ranking();
        assert_eq!(ranking[0].0, "CDQS");
    }

    #[test]
    fn figure7_row_uniqueness_claim_checked() {
        // §5.2 claims "No two labelling schemes share the same
        // properties" — but on the paper's own table two pairs are
        // letter-for-letter identical: XPath Accelerator ≡ XRel and
        // DeweyID ≡ LSDX (DLN matches them on letters but differs in the
        // Encoding column). This test pins down that reproduction
        // finding; see EXPERIMENTS.md (F7 notes).
        let m = declared_figure7();
        let mut identical = Vec::new();
        for (i, a) in m.rows.iter().enumerate() {
            for b in m.rows.iter().skip(i + 1) {
                let same = a.cells == b.cells
                    && a.descriptor.order == b.descriptor.order
                    && a.descriptor.encoding == b.descriptor.encoding;
                if same {
                    identical.push((a.descriptor.name, b.descriptor.name));
                }
            }
        }
        assert_eq!(
            identical,
            vec![("XPath Accelerator", "XRel"), ("DeweyID", "LSDX")],
            "the paper's uniqueness claim holds except for these two pairs"
        );
    }

    #[test]
    fn render_contains_all_scheme_names() {
        let m = declared_figure7();
        let s = m.render();
        for (name, ..) in FIGURE7_GOLDEN {
            assert!(s.contains(name), "{name} missing from rendering");
        }
    }

    #[test]
    fn declared_all_extends_roster() {
        let m = declared_all();
        assert_eq!(m.rows.len(), 17);
        assert_eq!(
            m.rows.iter().filter(|r| r.descriptor.in_figure7).count(),
            12
        );
    }
}
